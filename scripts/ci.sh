#!/usr/bin/env bash
# Tier-1 CI gate, run fully offline. The workspace has no external
# dependencies (see DESIGN.md §5), so CARGO_NET_OFFLINE=true must never
# cause a failure — if it does, a crates.io dependency crept back in.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "CI gate passed."
