#!/usr/bin/env bash
# Tier-1 CI gate, run fully offline. The workspace has no external
# dependencies (see DESIGN.md §5), so CARGO_NET_OFFLINE=true must never
# cause a failure — if it does, a crates.io dependency crept back in.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

# The huge-object region's own test module gates merges explicitly
# (extent-table invariants, routing, recovery, repair, transactions).
echo "== cargo test -p poseidon huge (huge-region module)"
cargo test -p poseidon -q huge

# Fuzzers gate merges too, with fixed seeds for determinism: a bounded
# crash-point sweep, and the same sweep with uncorrectable media errors
# interleaved (every case must end in a clean recovery with accurate
# quarantine accounting or a typed MediaError — never a panic). The
# workload mixes huge allocations/frees, huge+micro spanning
# transactions, and cached-path churn bursts in with the small ops, and
# the harness checks the extent-table invariant plus the cache-residency
# invariant (cache-held blocks stay media-FREE) after every power cycle.
echo "== crashfuzz --iters 50 --tx (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 50 --tx --seed 314159

echo "== crashfuzz --iters 50 --tx --poison (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 50 --tx --poison --seed 314159

echo "== crashfuzz --iters 40 --tx --poison (fixed seed, huge-heavy)"
cargo run --release --bin crashfuzz -- --iters 40 --tx --poison --seed 271828

echo "== crashfuzz --iters 50 (fixed seed, cached-path sweep)"
cargo run --release --bin crashfuzz -- --iters 50 --seed 161803

# Online self-healing gates: live-fault cases (poison armed while the
# heap serves, scrubber ticking concurrently; every case must end with
# balanced quarantine accounting, a poison-free cache, no poisoned
# block handed out, and verdicts that survive a crash), plus the
# quarantine-vs-frontend race and bulk-fault integration tests.
echo "== crashfuzz --iters 40 --poison-live (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 40 --poison-live --seed 314159

echo "== cargo test online_ (live self-healing integration)"
cargo test -q --test robustness online_

# Online-growth gates: the layout-epoch commit must be crash-atomic at
# every mutation event (fixed-seed fuzz sweeps, with and without media
# faults interleaved), and the growth integration tests cover the
# 256 MiB -> 4 GiB concurrent-serving scenario, the post-grow TooLarge
# regression, the v1 -> v2 reopen migration, and torn-epoch repair.
echo "== crashfuzz --iters 50 --grow (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 50 --grow --seed 314159

echo "== crashfuzz --iters 40 --grow --poison (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 40 --grow --poison --seed 271828

echo "== cargo test --test growth (online-growth integration)"
cargo test -q --test growth

echo "== pfsck tool tests"
cargo test -q --test pfsck_tool

# KV service soak gate: the traffic-shaped regression test. Mixed
# zipfian traffic from 4 client threads over 4 FAST-FAIR shards on one
# uncached heap, with a kill-and-resume (reopen must verify every
# acknowledged key in O(metadata) time) and live media poison (service
# must degrade, heal by rewrite, and keep the quarantine books
# balanced) injected mid-run. The binary panics on any lost key,
# corrupt value, out-of-order scan, failed recovery, or accounting
# imbalance — fixed seed for determinism.
echo "== kvserve soak gate (fixed seed, kill+poison)"
cargo run --release -q -p bench --bin kvserve -- \
    --threads 4 --shards 4 --keys 4000 --ops 4000 --seed 424242 \
    --events kill,poison

# The KV service contract suite: arbitrary-point kill-and-resume
# (acknowledged inserts survive any crash point), reopen-latency
# scaling (16x the data bytes at equal block count must leave reopen
# flat), and a full soak riding out kill + poison + grow in one run.
echo "== cargo test --test service (KV service contract)"
cargo test -q --test service

# Maintenance-engine gates: the unit/integration tests for the budgeted
# incremental defragmenter (budget ceilings, cursor persistence,
# fragmentation accounting, trigger policy, engine-on-vs-off soak
# comparison), then fixed-seed crash sweeps over a pre-fragmented heap
# where the crash lands at maintenance-unit commit points — block
# accounting and extent tiling must audit clean after every recovery,
# and a post-recovery convergence loop must drive coalescing debt to
# exactly zero. The grow arm exercises the superblock undo area's
# re-driven rollback as well.
echo "== cargo test --workspace maint (maintenance engine)"
cargo test --workspace -q maint

echo "== crashfuzz --iters 50 --maint (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 50 --maint --seed 314159

echo "== crashfuzz --iters 40 --maint --poison (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 40 --maint --poison --seed 271828

echo "== crashfuzz --iters 40 --maint --grow (fixed seed)"
cargo run --release --bin crashfuzz -- --iters 40 --maint --grow --seed 161803

echo "CI gate passed."
