//! `pfsck` — inspect, check, and repair a Poseidon pool image.
//!
//! A `fsck`-style utility for pool files written by
//! [`PmemDevice::save`]: loads the image, runs crash recovery, audits
//! every sub-heap's structural invariants, and prints a report. With
//! `--repair`, an offline [`poseidon::repair`] pass first scrubs
//! poisoned metadata lines and rebuilds what they destroyed (directory
//! entries, sub-heap headers, tombstoned table entries, truncated logs,
//! free lists), then the repaired image is written back in place.
//!
//! ```text
//! pfsck [--verbose] [--defrag] [--repair] <pool-file>
//! ```
//!
//! Exit code 0 = clean (possibly after replaying crash logs or
//! repairing media damage), 1 = the image is corrupt or the root object
//! is lost to an uncorrectable media error, 2 = usage error.

use std::process::ExitCode;
use std::sync::Arc;

use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};

fn main() -> ExitCode {
    let mut verbose = false;
    let mut defrag = false;
    let mut repair = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--defrag" => defrag = true,
            "--repair" => repair = true,
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("pfsck: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: pfsck [--verbose] [--defrag] [--repair] <pool-file>");
        return ExitCode::from(2);
    };

    let dev = match PmemDevice::load(&path, DeviceConfig::new(0)) {
        Ok(dev) => Arc::new(dev),
        Err(e) => {
            eprintln!("pfsck: cannot load {path}: {e}");
            return ExitCode::from(1);
        }
    };
    println!("pool     : {path}");
    println!("capacity : {} MiB ({} MiB resident)", dev.capacity() >> 20, dev.resident_bytes() >> 20);
    if dev.poisoned_lines() > 0 {
        println!("media    : {} uncorrectable cache lines reported by scrub", dev.poisoned_lines());
    }

    if repair {
        match poseidon::repair(&dev) {
            Ok(report) => {
                if report.damage_found() {
                    println!(
                        "repair   : {} lines scrubbed, {} dir entries + {} headers rebuilt, \
                         {} table entries tombstoned, {} logs truncated, {} micro slots reset",
                        report.lines_scrubbed,
                        report.directory_entries_rebuilt,
                        report.headers_rebuilt,
                        report.entries_tombstoned,
                        report.undo_logs_truncated,
                        report.micro_slots_reset,
                    );
                    println!(
                        "repair   : {} blocks ({} KiB) quarantined, {} blocks released from quarantine",
                        report.blocks_quarantined,
                        report.bytes_quarantined >> 10,
                        report.blocks_released,
                    );
                    if report.epochs_truncated > 0 {
                        println!(
                            "repair   : {} torn trailing layout epoch(s) truncated — pool reverts \
                             to its last committed geometry",
                            report.epochs_truncated
                        );
                    }
                    if report.level_sums_mismatched > 0 {
                        println!(
                            "repair   : {} hash-table levels had lost records (identity checksum mismatch)",
                            report.level_sums_mismatched
                        );
                    }
                    if report.huge_header_rebuilt
                        || report.huge_slots_dropped > 0
                        || report.huge_bytes_quarantined > 0
                    {
                        println!(
                            "repair   : huge region — header rebuilt: {}, {} extent slots dropped, \
                             {} KiB quarantined",
                            report.huge_header_rebuilt,
                            report.huge_slots_dropped,
                            report.huge_bytes_quarantined >> 10,
                        );
                    }
                } else {
                    println!(
                        "repair   : no media damage found ({} sub-heaps checked)",
                        report.subheaps_repaired
                    );
                }
            }
            Err(e) => {
                eprintln!("pfsck: REPAIR FAILED (root object lost?): {e}");
                return ExitCode::from(1);
            }
        }
    }

    let heap = match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
        Ok(heap) => heap,
        Err(e) => {
            eprintln!("pfsck: not a loadable Poseidon heap: {e}");
            return ExitCode::from(1);
        }
    };
    let layout = heap.layout().clone();
    println!("heap id  : {:#018x}", heap.heap_id());
    println!(
        "geometry : {} sub-heaps x ({} KiB metadata + {} MiB user), level-0 table {} entries",
        layout.num_subheaps(),
        layout.meta_size >> 10,
        layout.user_size >> 20,
        layout.c0
    );
    if layout.huge_data_size() > 0 {
        println!(
            "geometry : huge region {} MiB (objects beyond the {} MiB sub-heap cap)",
            layout.huge_data_size() >> 20,
            layout.max_alloc() >> 20
        );
    }
    println!("epochs   : {} committed layout epoch(s)", layout.epoch_count());
    for (i, epoch) in layout.epochs().enumerate() {
        let grown = if i == 0 { "creation" } else { "growth" };
        println!(
            "epoch {i:>3}: {grown:>8} @ {:#x}, +{} MiB (total {} MiB), sub-heaps {}..{}, \
             huge band {} MiB",
            epoch.base,
            (epoch.capacity - epoch.base) >> 20,
            epoch.capacity >> 20,
            epoch.first_subheap,
            epoch.first_subheap + epoch.num_subheaps,
            epoch.huge_size >> 20,
        );
    }
    let report = heap.last_recovery();
    if report.crash_detected() {
        println!(
            "recovery : CRASH DETECTED — superblock undo: {}, sub-heap undos: {}, huge undo: {}, \
             tx allocations reverted: {}",
            report.superblock_undo_replayed,
            report.subheap_undos_replayed,
            report.huge_undo_replayed,
            report.tx_allocations_reverted
        );
    } else {
        println!("recovery : clean shutdown (no logs to replay)");
    }
    if report.media_damage_detected() {
        println!(
            "media    : DAMAGE CONTAINED — {} sub-heaps quarantined wholesale, {} blocks ({} KiB) quarantined",
            report.subheaps_quarantined,
            report.blocks_quarantined,
            report.bytes_quarantined >> 10,
        );
        if report.huge_region_quarantined {
            println!("media    : huge region frozen wholesale — run pfsck --repair to rebuild it");
        } else if report.huge_extents_quarantined > 0 {
            println!(
                "media    : {} huge extents ({} KiB) quarantined",
                report.huge_extents_quarantined,
                report.huge_bytes_quarantined >> 10
            );
        }
    }
    // The live health census, independent of what *this* load found:
    // verdicts condemned online in an earlier session persist in the
    // directory and must show up even when recovery saw no new damage.
    let health = heap.health();
    let quarantined = heap.quarantined_subheaps();
    if !quarantined.is_empty() {
        println!("health   : frozen sub-heaps {quarantined:?} — run pfsck --repair to rebuild them");
    }
    if health.huge_region_quarantined {
        println!("health   : huge region frozen — run pfsck --repair to rebuild it");
    }
    if health.poisoned_lines > 0 {
        println!(
            "health   : {} poisoned lines outstanding ({} free blocks quarantined by this load)",
            health.poisoned_lines, report.blocks_quarantined
        );
    }
    if quarantined.is_empty() && !health.huge_region_quarantined && health.poisoned_lines == 0 {
        println!("health   : all units serving, no outstanding media damage");
    }
    match heap.root() {
        Ok(root) if !root.is_null() => println!("root     : {root}"),
        Ok(_) => println!("root     : (null)"),
        Err(e) => {
            eprintln!("pfsck: unreadable root pointer: {e}");
            return ExitCode::from(1);
        }
    }

    if defrag {
        match heap.defragment() {
            Ok(merges) => println!("defrag   : {merges} buddy merges performed"),
            Err(e) => {
                eprintln!("pfsck: defragmentation failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    let audits = match heap.audit() {
        Ok(audits) => audits,
        Err(e) => {
            eprintln!("pfsck: STRUCTURAL CORRUPTION: {e}");
            return ExitCode::from(1);
        }
    };
    let mut total_alloc = 0;
    let mut total_free = 0;
    let mut total_quarantined = 0;
    for (sub, audit) in &audits {
        total_alloc += audit.alloc_bytes;
        total_free += audit.free_bytes;
        total_quarantined += audit.quarantined_bytes;
        println!(
            "subheap {sub:>3}: {:>7} blocks ({:>6} allocated), {:>8} KiB live, {:>8} KiB free, \
             {} levels, {:>5} tombstones, fragmentation {:>5.1}%",
            audit.blocks,
            audit.alloc_blocks,
            audit.alloc_bytes >> 10,
            audit.free_bytes >> 10,
            audit.active_levels,
            audit.tombstones,
            100.0 * audit.fragmentation()
        );
        if audit.quarantined_blocks > 0 {
            println!(
                "             {} blocks ({} KiB) quarantined after media errors",
                audit.quarantined_blocks,
                audit.quarantined_bytes >> 10
            );
        }
        if verbose {
            for (class, &count) in audit.free_by_class.iter().enumerate() {
                if count > 0 {
                    println!("             class {class:>2} ({:>9} B): {count} free", 32u64 << class);
                }
            }
        }
    }
    match heap.huge_audit() {
        Ok(Some(huge)) => {
            println!(
                "huge     : {:>7} extents ({:>6} allocated), {:>8} KiB live, {:>8} KiB free, \
                 largest free {} KiB",
                huge.free_extents + huge.alloc_extents + huge.quarantined_extents,
                huge.alloc_extents,
                huge.alloc_bytes >> 10,
                huge.free_bytes >> 10,
                huge.largest_free >> 10,
            );
            if huge.quarantined_extents > 0 {
                println!(
                    "             {} extents ({} KiB) quarantined after media errors",
                    huge.quarantined_extents,
                    huge.quarantined_bytes >> 10
                );
            }
            total_alloc += huge.alloc_bytes;
            total_free += huge.free_bytes;
            total_quarantined += huge.quarantined_bytes;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("pfsck: STRUCTURAL CORRUPTION in the huge region: {e}");
            return ExitCode::from(1);
        }
    }
    let quarantine_note = if total_quarantined > 0 {
        format!(", {} KiB quarantined", total_quarantined >> 10)
    } else {
        String::new()
    };
    println!(
        "summary  : {} sub-heaps audited, {} KiB allocated, {} KiB free{quarantine_note} — OK",
        audits.len(),
        total_alloc >> 10,
        total_free >> 10
    );

    if repair {
        if let Err(e) = heap.close() {
            eprintln!("pfsck: cannot close repaired heap: {e}");
            return ExitCode::from(1);
        }
        if let Err(e) = dev.save(&path) {
            eprintln!("pfsck: cannot write repaired image back to {path}: {e}");
            return ExitCode::from(1);
        }
        println!("written  : repaired image saved to {path}");
    }
    ExitCode::SUCCESS
}
