//! `crashfuzz` — randomized crash-recovery fuzzing for the Poseidon stack.
//!
//! Each iteration drives a random allocator workload (plus optional `ptx`
//! transactions), injects a device crash at a random mutation event, in
//! strict or adversarial mode, recovers, and audits every structural
//! invariant. Any failure prints the reproducing seed.
//!
//! ```text
//! crashfuzz [--iters N] [--seed S] [--tx]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};
use ptx::{PtxError, PtxPool};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn main() -> ExitCode {
    let mut iters = 200u64;
    let mut seed = 0x5EED_F00Du64;
    let mut with_tx = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--tx" => with_tx = true,
            other => {
                eprintln!("crashfuzz: unknown argument {other}");
                eprintln!("usage: crashfuzz [--iters N] [--seed S] [--tx]");
                return ExitCode::from(2);
            }
        }
    }
    println!("crashfuzz: {iters} iterations, seed {seed}, tx={with_tx}");
    let mut rng = Rng(seed | 1);
    for iteration in 0..iters {
        let case_seed = rng.next();
        if let Err(why) = run_case(case_seed, with_tx) {
            eprintln!("crashfuzz: FAILURE at iteration {iteration}, case seed {case_seed}: {why}");
            return ExitCode::from(1);
        }
        if iteration % 25 == 24 {
            println!("  {}/{iters} cases clean", iteration + 1);
        }
    }
    println!("crashfuzz: all {iters} cases recovered cleanly");
    ExitCode::SUCCESS
}

fn run_case(case_seed: u64, with_tx: bool) -> Result<(), String> {
    let mut rng = Rng(case_seed | 1);
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = Arc::new(
        PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1 + rng.below(3) as u16))
            .map_err(|e| format!("create: {e}"))?,
    );
    let pool =
        if with_tx { Some(PtxPool::create(heap.clone()).map_err(|e| format!("pool: {e}"))?) } else { None };

    // Random workload with a random crash point.
    dev.arm_crash_after(rng.below(500));
    let mut live: Vec<NvmPtr> = Vec::new();
    'workload: for _ in 0..rng.below(80) + 10 {
        match rng.below(10) {
            0..=4 => match heap.alloc(1 + rng.below(8192)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            5..=6 => {
                if !live.is_empty() {
                    let index = rng.below(live.len() as u64) as usize;
                    let p = live.swap_remove(index);
                    if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                        break 'workload;
                    }
                }
            }
            7 => {
                // tx_alloc, randomly committed.
                let commit = rng.below(2) == 0;
                match heap.tx_alloc(1 + rng.below(512), commit) {
                    Ok(p) if commit => live.push(p),
                    Ok(_) => {}
                    Err(PoseidonError::Device(_)) => break 'workload,
                    Err(_) => {
                        let _ = heap.tx_abort();
                    }
                }
            }
            _ => {
                if let Some(pool) = &pool {
                    let result = pool.run(|tx| {
                        let a = tx.alloc(1 + rng.below(256))?;
                        tx.write_pod(a, 0, &case_seed)?;
                        if rng.below(3) == 0 {
                            return Err(PtxError::Aborted("fuzz abort".into()));
                        }
                        tx.set_root(a)?;
                        Ok(())
                    });
                    if matches!(result, Err(PtxError::Heap(PoseidonError::Device(_)))) {
                        break 'workload;
                    }
                }
            }
        }
    }
    dev.disarm_crash();
    drop(pool);
    drop(heap);

    // Power-cycle (half strict, half adversarial) and recover.
    let mode = if rng.below(2) == 0 { CrashMode::Strict } else { CrashMode::Adversarial };
    dev.simulate_crash(mode, rng.next());
    let heap =
        Arc::new(PoseidonHeap::load(dev.clone(), HeapConfig::new()).map_err(|e| format!("load: {e}"))?);
    heap.audit().map_err(|e| format!("audit: {e}"))?;
    if with_tx && !heap.root().map_err(|e| format!("root: {e}"))?.is_null() {
        let pool = PtxPool::open(heap.clone()).map_err(|e| format!("ptx open: {e}"))?;
        let _ = pool.recovery_report();
    }
    // The recovered heap must still serve allocations.
    let p = heap.alloc(64).map_err(|e| format!("post-recovery alloc: {e}"))?;
    heap.free(p).map_err(|e| format!("post-recovery free: {e}"))?;
    Ok(())
}
