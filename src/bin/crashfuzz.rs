//! `crashfuzz` — randomized crash-recovery fuzzing for the Poseidon stack.
//!
//! Each iteration drives a random allocator workload — small-block
//! alloc/free (through the transient magazine cache), cached-path churn
//! bursts, huge-path (extent allocator) alloc/free, transactional
//! allocation both below and beyond the sub-heap cap, plus optional
//! `ptx` transactions — injects a device crash at a random mutation
//! event, in strict or adversarial mode, recovers, and audits every
//! structural invariant, including the huge region's extent-table
//! tiling and the cache-residency invariant (every block the DRAM
//! cache held at the crash must still be media-FREE after recovery). With `--poison`, uncorrectable media errors are armed
//! alongside the crash point: every case must then end in either a
//! successful load whose quarantine accounting matches the audit (and
//! whose fresh allocations never overlap a poisoned line), or a clean
//! typed `MediaError` — never a panic, never silent reuse of poisoned
//! blocks. Any failure prints the reproducing seed.
//!
//! With `--poison-live`, no crash is armed at all: poison strikes
//! repeatedly *while the heap is serving*, exercising the online
//! self-healing path (undo-logged abort, live quarantine, allocation
//! failover, budgeted scrubber ticks). Every case must end with
//! quarantine accounting that balances, no poisoned block re-allocated,
//! the cache purged of every condemned sub-heap's blocks, and the
//! quarantine verdicts surviving a crash + reload.
//!
//! With `--grow`, online pool growths interleave with the workload on a
//! growable device while the crash is armed: the layout-epoch commit is
//! the atomicity point under test. After the power cycle the recovered
//! epoch chain must contain every growth that reported success — plus
//! at most the one in flight — the pool must audit clean on the
//! recovered geometry, and it must keep serving *and keep growing*.
//! Composes with `--poison`.
//!
//! With `--maint`, the heap is pre-fragmented and budgeted maintenance
//! steps (`maint_step`) interleave with the traffic while the crash is
//! armed, so the power cut lands at every maintenance-unit commit point
//! — mid buddy merge, mid table shrink, mid cache trim. After recovery
//! the block accounting and extent tiling must audit clean (no block
//! both coalesced and live), and driving maintenance to convergence on
//! the recovered heap must retire every remaining mergeable pair.
//! Composes with `--poison` and `--grow`.
//!
//! ```text
//! crashfuzz [--iters N] [--seed S] [--tx] [--poison] [--poison-live] [--grow] [--maint]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};
use ptx::{PtxError, PtxPool};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn main() -> ExitCode {
    let mut iters = 200u64;
    let mut seed = 0x5EED_F00Du64;
    let mut with_tx = false;
    let mut with_poison = false;
    let mut poison_live = false;
    let mut with_grow = false;
    let mut with_maint = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--tx" => with_tx = true,
            "--poison" => with_poison = true,
            "--poison-live" => poison_live = true,
            "--grow" => with_grow = true,
            "--maint" => with_maint = true,
            other => {
                eprintln!("crashfuzz: unknown argument {other}");
                eprintln!(
                    "usage: crashfuzz [--iters N] [--seed S] [--tx] [--poison] [--poison-live] \
                     [--grow] [--maint]"
                );
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "crashfuzz: {iters} iterations, seed {seed}, tx={with_tx}, poison={with_poison}, \
         live={poison_live}, grow={with_grow}, maint={with_maint}"
    );
    let mut rng = Rng(seed | 1);
    let mut media_failures = 0u64;
    for iteration in 0..iters {
        let case_seed = rng.next();
        let result = if poison_live {
            run_live_case(case_seed)
        } else if with_maint {
            run_maint_case(case_seed, with_poison, with_grow)
        } else if with_grow {
            run_grow_case(case_seed, with_poison)
        } else {
            run_case(case_seed, with_tx, with_poison)
        };
        match result {
            Ok(outcome) => {
                if matches!(outcome, CaseOutcome::TypedMediaFailure) {
                    media_failures += 1;
                }
            }
            Err(why) => {
                eprintln!("crashfuzz: FAILURE at iteration {iteration}, case seed {case_seed}: {why}");
                return ExitCode::from(1);
            }
        }
        if iteration % 25 == 24 {
            println!("  {}/{iters} cases clean", iteration + 1);
        }
    }
    if poison_live {
        println!("crashfuzz: all {iters} live-poison cases self-healed cleanly");
    } else if with_maint {
        println!(
            "crashfuzz: all {iters} maintenance cases recovered cleanly \
             ({media_failures} ended in a typed media error)"
        );
    } else if with_grow {
        println!(
            "crashfuzz: all {iters} grow cases recovered to a consistent epoch chain \
             ({media_failures} ended in a typed media error)"
        );
    } else if with_poison {
        println!(
            "crashfuzz: all {iters} cases handled cleanly ({media_failures} ended in a typed media error)"
        );
    } else {
        println!("crashfuzz: all {iters} cases recovered cleanly");
    }
    ExitCode::SUCCESS
}

/// How a fuzz case ended: full recovery, or a *typed* media-error failure
/// (acceptable under `--poison` when the poison landed on state the heap
/// cannot rebuild online, e.g. the superblock).
enum CaseOutcome {
    Recovered,
    TypedMediaFailure,
}

/// The batched-persistence ordering invariant (see `poseidon::undo`'s
/// module docs): log entries are fenced durable *before* any target
/// store of the operation is issued. So if the crash tore the entry
/// chain — fewer entries survived to media than were logged — the fence
/// cannot have run, and every logged target must still hold its logged
/// pre-image.
fn check_undo_ordering(
    dev: &PmemDevice,
    layout: &poseidon::HeapLayout,
    logged: &[Option<Vec<poseidon::fuzz::UndoChainEntry>>],
) -> Result<(), String> {
    let surviving = poseidon::fuzz::undo_chains(dev, layout);
    for (area, (before, after)) in logged.iter().zip(&surviving).enumerate() {
        let (Some(before), Some(after)) = (before, after) else { continue };
        // Survivors are a validated prefix of the logged chain; an equal
        // length means every entry made it (nothing to conclude), and a
        // chain already empty pre-crash means no operation was in flight.
        if before.is_empty() || after.len() >= before.len() {
            continue;
        }
        // Compare each target against the *first* entry covering it —
        // later same-target entries log intermediate staged values.
        let mut claimed: Vec<(u64, u64)> = Vec::new();
        for entry in before {
            let (start, end) = (entry.target, entry.target + entry.old.len() as u64);
            if claimed.iter().any(|&(s, e)| start < e && s < end) {
                continue;
            }
            claimed.push((start, end));
            let mut now = vec![0u8; entry.old.len()];
            if dev.read(entry.target, &mut now).is_err() {
                continue; // target line itself poisoned: unreadable
            }
            if now != entry.old {
                return Err(format!(
                    "undo area {area}: crash tore the log ({} of {} entries survived) \
                     yet target {:#x} was mutated before its entry was durable",
                    after.len(),
                    before.len(),
                    entry.target
                ));
            }
        }
    }
    Ok(())
}

/// One `--poison-live` case: poison fires repeatedly *during* live
/// operations with no crash armed, so every uncorrectable error must be
/// absorbed online. Ends by checking the self-healing invariants and
/// that the quarantine verdicts survive a power cycle.
fn run_live_case(case_seed: u64) -> Result<CaseOutcome, String> {
    let mut rng = Rng(case_seed | 1);
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_media_faults(true)));
    let heap = Arc::new(
        PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2 + rng.below(3) as u16))
            .map_err(|e| format!("create: {e}"))?,
    );
    let max_alloc = heap.layout().max_alloc();

    // Several poison salvos, each landing mid-operation somewhere in the
    // workload. Device errors are impossible without an armed crash, so
    // any `Device` escape is a self-healing bug, as is a panic.
    let mut live: Vec<NvmPtr> = Vec::new();
    for round in 0..4u64 {
        dev.arm_poison_after(1 + rng.below(150), rng.next() ^ round);
        for _ in 0..rng.below(120) + 30 {
            match rng.below(10) {
                0..=4 => match heap.alloc(1 + rng.below(8192)) {
                    Ok(p) => live.push(p),
                    Err(PoseidonError::Device(e)) => return Err(format!("live alloc: device error {e}")),
                    Err(_) => {}
                },
                5..=6 => {
                    if !live.is_empty() {
                        let index = rng.below(live.len() as u64) as usize;
                        let p = live.swap_remove(index);
                        if let Err(PoseidonError::Device(e)) = heap.free(p) {
                            return Err(format!("live free: device error {e}"));
                        }
                    }
                }
                7 => {
                    let commit = rng.below(2) == 0;
                    match heap.tx_alloc(1 + rng.below(512), commit) {
                        Ok(p) if commit => live.push(p),
                        Ok(_) => {}
                        Err(PoseidonError::Device(e)) => return Err(format!("live tx: device error {e}")),
                        Err(_) => {
                            let _ = heap.tx_abort();
                        }
                    }
                }
                8 => match heap.alloc(max_alloc + 1 + rng.below(2 << 20)) {
                    Ok(p) => live.push(p),
                    Err(PoseidonError::Device(e)) => return Err(format!("live huge: device error {e}")),
                    Err(_) => {}
                },
                _ => {
                    // Budgeted scrubber tick: promotes latent poison to
                    // quarantine before a user thread trips on it.
                    heap.scrub_step(1 + rng.below(8) as usize).map_err(|e| format!("scrub_step: {e}"))?;
                }
            }
        }
        dev.disarm_poison();
    }

    // A full scrub pass drains whatever poison the workload never touched.
    let units = heap.layout().num_subheaps() as usize + 1;
    heap.scrub_step(2 * units).map_err(|e| format!("final scrub: {e}"))?;

    // Invariant 1 — quarantine accounting balances: the health report's
    // frozen count is the live set, every counted media error was
    // attributed, and the structural audit of the surviving sub-heaps
    // (which re-derives quarantined blocks from the tables) passes.
    let health = heap.health();
    let frozen = heap.quarantined_subheaps();
    if health.quarantined_subheaps as usize != frozen.len() {
        return Err(format!(
            "health reports {} quarantined sub-heaps, live set has {}",
            health.quarantined_subheaps,
            frozen.len()
        ));
    }
    heap.audit().map_err(|e| format!("post-workload audit: {e}"))?;

    // Invariant 2 — the cache holds nothing from a condemned sub-heap.
    for &(sub, offset) in &heap.cache_snapshot() {
        if frozen.contains(&sub) {
            return Err(format!(
                "cache still holds block (sub {sub}, offset {offset:#x}) of a condemned sub-heap"
            ));
        }
    }

    // Invariant 3 — no poisoned block is ever handed out again.
    for _ in 0..32 {
        let size = 1 + rng.below(4096);
        match heap.alloc(size) {
            Ok(p) => {
                let raw = heap.raw_offset(p).map_err(|e| format!("raw_offset: {e}"))?;
                for range in dev.scrub() {
                    if range.overlaps(raw, size) {
                        return Err(format!(
                            "post-heal allocation at {raw:#x} overlaps poisoned line at {:#x}",
                            range.offset
                        ));
                    }
                }
                live.push(p);
            }
            Err(PoseidonError::AllFailed { .. }) if frozen.len() == heap.layout().num_subheaps() as usize => {
                break;
            }
            Err(PoseidonError::NoSpace { .. } | PoseidonError::MediaError { .. }) => {}
            Err(e) => return Err(format!("post-heal alloc: {e}")),
        }
    }

    // Invariant 4 — the verdicts are persistent: a crash + reload sees
    // exactly the same frozen set, and the heap still audits clean.
    drop(heap);
    dev.simulate_crash(
        if rng.below(2) == 0 { CrashMode::Strict } else { CrashMode::Adversarial },
        rng.next(),
    );
    let heap = match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
        Ok(heap) => heap,
        Err(PoseidonError::MediaError { .. }) => return Ok(CaseOutcome::TypedMediaFailure),
        Err(e) => return Err(format!("reload: {e}")),
    };
    let refrozen = heap.quarantined_subheaps();
    for sub in &frozen {
        if !refrozen.contains(sub) {
            return Err(format!("sub-heap {sub} lost its quarantine verdict across the power cycle"));
        }
    }
    heap.audit().map_err(|e| format!("post-reload audit: {e}"))?;
    Ok(CaseOutcome::Recovered)
}

/// One `--grow` case: online growths interleave with small, cached, and
/// huge allocator traffic on a growable device while a crash is armed at
/// a random mutation event. The single two-fence epoch commit is the
/// atomicity point under test: after the power cycle the recovered chain
/// must hold every growth that reported success plus at most the one in
/// flight (rolled back by the superblock undo replay or completed by
/// recovery, never half-applied), the pool must audit clean on whichever
/// geometry it recovered to, and it must keep serving and keep growing.
fn run_grow_case(case_seed: u64, with_poison: bool) -> Result<CaseOutcome, String> {
    let mut rng = Rng(case_seed | 1);
    let dev = Arc::new(PmemDevice::new(
        DeviceConfig::new(24 << 20).growable_to(256 << 20).with_media_faults(with_poison),
    ));
    let heap = Arc::new(
        PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1 + rng.below(2) as u16))
            .map_err(|e| format!("create: {e}"))?,
    );
    let max_alloc = heap.layout().max_alloc();

    dev.arm_crash_after(rng.below(600));
    if with_poison {
        dev.arm_poison_after(1 + rng.below(400), rng.next());
    }
    // Growths that returned Ok: their epochs are durably committed and
    // must survive the power cycle verbatim.
    let mut grows_ok = 0usize;
    let mut live: Vec<NvmPtr> = Vec::new();
    'workload: for _ in 0..rng.below(100) + 20 {
        match rng.below(12) {
            0..=4 => match heap.alloc(1 + rng.below(8192)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            5..=6 => {
                if !live.is_empty() {
                    let index = rng.below(live.len() as u64) as usize;
                    let p = live.swap_remove(index);
                    if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                        break 'workload;
                    }
                }
            }
            7..=8 => match heap.alloc(max_alloc + 1 + rng.below(4 << 20)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            9 => {
                // Cached-path churn so magazines are mid-flight when a
                // growth re-homes them.
                let size = 1 + rng.below(4096);
                for _ in 0..rng.below(12) + 1 {
                    match heap.alloc(size) {
                        Ok(p) => {
                            if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                                break 'workload;
                            }
                        }
                        Err(PoseidonError::Device(_)) => break 'workload,
                        Err(_) => break,
                    }
                }
            }
            _ => {
                // Online growth: random MiB-granular step, clamped to the
                // device ceiling. Small steps extend only the huge band;
                // larger ones materialise whole sub-heaps.
                let target = (heap.layout().capacity() + ((1 + rng.below(48)) << 20)).min(dev.max_capacity());
                if target <= heap.layout().capacity() {
                    continue; // already at the ceiling
                }
                match heap.grow(target) {
                    Ok(report) => {
                        if report.new_capacity != target {
                            return Err(format!(
                                "grow reported capacity {} for a grow to {target}",
                                report.new_capacity
                            ));
                        }
                        grows_ok += 1;
                    }
                    Err(PoseidonError::Device(_)) => break 'workload,
                    Err(PoseidonError::BadGeometry(_)) => {} // step too small for a band page
                    Err(PoseidonError::MediaError { .. }) if with_poison => {}
                    Err(e) => return Err(format!("grow: {e}")),
                }
            }
        }
    }
    dev.disarm_crash();
    dev.disarm_poison();
    let layout = heap.layout().clone();
    drop(heap);

    let logged_chains = poseidon::fuzz::undo_chains(&dev, &layout);
    let mode = if rng.below(2) == 0 { CrashMode::Strict } else { CrashMode::Adversarial };
    dev.simulate_crash(mode, rng.next());
    check_undo_ordering(&dev, &layout, &logged_chains)?;

    let heap = match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
        Ok(heap) => Arc::new(heap),
        Err(PoseidonError::MediaError { .. }) if with_poison => return Ok(CaseOutcome::TypedMediaFailure),
        Err(e) => return Err(format!("load: {e}")),
    };

    // Epoch-chain consistency: every acknowledged growth survived, at
    // most one unacknowledged growth (the one in flight at the crash)
    // may have reached its commit point, and the recovered layout fits
    // the device (which may be longer — growing the device is durable
    // before the epoch commit, by design).
    let chain = heap.layout().epoch_count();
    let expected_min = 1 + grows_ok;
    if chain < expected_min {
        return Err(format!(
            "epoch chain has {chain} epochs after recovery but {grows_ok} growths were acknowledged"
        ));
    }
    if chain > expected_min + 1 {
        return Err(format!(
            "epoch chain has {chain} epochs after recovery, more than the {grows_ok} acknowledged \
             growths plus one in flight"
        ));
    }
    if heap.layout().capacity() > dev.capacity() {
        return Err(format!(
            "recovered layout claims {} bytes on a {}-byte device",
            heap.layout().capacity(),
            dev.capacity()
        ));
    }

    // The recovered geometry must audit clean end to end, huge region
    // included (a torn growth's band extension is completed by recovery,
    // so the extent table must tile the *recovered* logical space).
    heap.audit().map_err(|e| format!("post-recovery audit: {e}"))?;
    let frozen = heap.quarantined_subheaps();
    let recovery = heap.last_recovery();
    let huge = heap.huge_audit().map_err(|e| format!("post-recovery huge audit: {e}"))?;
    if heap.layout().huge_data_size() > 0 && !recovery.huge_region_quarantined && huge.is_none() {
        return Err("huge region unavailable without being quarantined".into());
    }

    // Still serving on the recovered geometry.
    match heap.alloc(64) {
        Ok(p) => heap.free(p).map_err(|e| format!("post-recovery free: {e}"))?,
        Err(PoseidonError::AllFailed { .. } | PoseidonError::SubheapQuarantined { .. })
            if with_poison && frozen.len() == heap.layout().num_subheaps() as usize => {}
        Err(e) => return Err(format!("post-recovery alloc: {e}")),
    }
    // And still growing: a recovered pool below the ceiling must accept
    // a further growth and serve from it.
    let target = heap.layout().capacity() + (8 << 20);
    if target <= dev.max_capacity() {
        match heap.grow(target) {
            Ok(report) => {
                if report.new_capacity != target || heap.layout().capacity() != target {
                    return Err(format!(
                        "post-recovery grow to {target} left capacity {}",
                        heap.layout().capacity()
                    ));
                }
            }
            Err(PoseidonError::MediaError { .. }) if with_poison => {}
            Err(e) => return Err(format!("post-recovery grow: {e}")),
        }
    }
    Ok(CaseOutcome::Recovered)
}

/// One maintenance crash-consistency case: pre-fragment the heap so the
/// engine has real debt to retire, then let budgeted `maint_step` calls
/// dominate the armed window (interleaved with allocator traffic, and
/// growths under `--grow`) so the power cut lands at maintenance-unit
/// commit points — mid buddy merge, mid table shrink, mid cache trim.
/// After the power cycle the heap must audit clean — block accounting
/// and extent tiling both, so no block can be both coalesced into its
/// buddy and still live — and driving maintenance to convergence on the
/// recovered heap must retire every remaining mergeable pair.
fn run_maint_case(case_seed: u64, with_poison: bool, with_grow: bool) -> Result<CaseOutcome, String> {
    let mut rng = Rng(case_seed | 1);
    let device_config = if with_grow {
        DeviceConfig::new(24 << 20).growable_to(256 << 20).with_media_faults(with_poison)
    } else {
        DeviceConfig::new(64 << 20).with_media_faults(with_poison)
    };
    let dev = Arc::new(PmemDevice::new(device_config));
    // Half the cases run uncached so freed buddies land straight on the
    // persistent free lists (guaranteed coalescing debt); the other half
    // keep magazines so the trim/evict unit is exercised too.
    let uncached = rng.below(2) == 0;
    let mut heap_config = HeapConfig::new().with_subheaps(1 + rng.below(2) as u16);
    if uncached {
        heap_config = heap_config.without_cache();
    }
    let heap = Arc::new(PoseidonHeap::create(dev.clone(), heap_config).map_err(|e| format!("create: {e}"))?);
    let max_alloc = heap.layout().max_alloc();

    // Build coalescing debt before arming: a mixed-class checkerboard
    // whose odd half is freed leaves mergeable buddy pairs in several
    // classes for the engine to chew through once the crash is armed.
    let mut live: Vec<NvmPtr> = Vec::new();
    for i in 0u64..192 {
        let p = heap.alloc(32 + (i % 4) * 32).map_err(|e| format!("pre-fragment alloc: {e}"))?;
        if i % 2 == 0 {
            live.push(p);
        } else {
            heap.free(p).map_err(|e| format!("pre-fragment free: {e}"))?;
        }
    }

    dev.arm_crash_after(rng.below(400));
    if with_poison {
        dev.arm_poison_after(1 + rng.below(300), rng.next());
    }
    'workload: for _ in 0..rng.below(120) + 30 {
        match rng.below(10) {
            // Maintenance dominates the armed window so the crash lands
            // at a unit commit point more often than not.
            0..=4 => match heap.maint_step(1 + rng.below(4) as usize) {
                Ok(_) => {}
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(PoseidonError::MediaError { .. }) if with_poison => {}
                Err(e) => return Err(format!("maint_step: {e}")),
            },
            5..=6 => match heap.alloc(1 + rng.below(8192)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            7 => {
                if !live.is_empty() {
                    let index = rng.below(live.len() as u64) as usize;
                    let p = live.swap_remove(index);
                    if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                        break 'workload;
                    }
                }
            }
            8 => match heap.alloc(max_alloc + 1 + rng.below(2 << 20)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            _ => {
                if with_grow {
                    let target =
                        (heap.layout().capacity() + ((1 + rng.below(32)) << 20)).min(dev.max_capacity());
                    if target <= heap.layout().capacity() {
                        continue; // already at the ceiling
                    }
                    match heap.grow(target) {
                        Ok(_) => {}
                        Err(PoseidonError::Device(_)) => break 'workload,
                        Err(PoseidonError::BadGeometry(_)) => {}
                        Err(PoseidonError::MediaError { .. }) if with_poison => {}
                        Err(e) => return Err(format!("grow: {e}")),
                    }
                } else {
                    // Full convergence mid-traffic: marks pressure, so
                    // subsequent maint_steps take the aggressive path.
                    match heap.defragment() {
                        Ok(_) => {}
                        Err(PoseidonError::Device(_)) => break 'workload,
                        Err(PoseidonError::MediaError { .. }) if with_poison => {}
                        Err(e) => return Err(format!("defragment: {e}")),
                    }
                }
            }
        }
    }
    dev.disarm_crash();
    dev.disarm_poison();
    let layout = heap.layout().clone();
    drop(heap);

    let logged_chains = poseidon::fuzz::undo_chains(&dev, &layout);
    let mode = if rng.below(2) == 0 { CrashMode::Strict } else { CrashMode::Adversarial };
    dev.simulate_crash(mode, rng.next());
    check_undo_ordering(&dev, &layout, &logged_chains)?;

    let mut reload_config = HeapConfig::new();
    if uncached {
        reload_config = reload_config.without_cache();
    }
    let heap = match PoseidonHeap::load(dev.clone(), reload_config) {
        Ok(heap) => Arc::new(heap),
        Err(PoseidonError::MediaError { .. }) if with_poison => return Ok(CaseOutcome::TypedMediaFailure),
        Err(e) => return Err(format!("load: {e}")),
    };

    // Block accounting and extent tiling must be clean: a block that was
    // both coalesced into its buddy and still reachable would
    // double-claim offsets and fail these audits.
    heap.audit().map_err(|e| format!("post-recovery audit: {e}"))?;
    let frozen = heap.quarantined_subheaps();
    let recovery = heap.last_recovery();
    let huge = heap.huge_audit().map_err(|e| format!("post-recovery huge audit: {e}"))?;
    if heap.layout().huge_data_size() > 0 && !recovery.huge_region_quarantined && huge.is_none() {
        return Err("huge region unavailable without being quarantined".into());
    }

    // Maintenance must converge on the recovered heap: repeated budgeted
    // steps retire every remaining mergeable pair, however the crash
    // interleaved with the engine.
    let mut converged = false;
    for _ in 0..10_000 {
        match heap.maint_step(1 + rng.below(8) as usize) {
            Ok(step) if step.fully_defragged => {
                converged = true;
                break;
            }
            Ok(_) => {}
            Err(PoseidonError::MediaError { .. }) if with_poison => {
                return Ok(CaseOutcome::TypedMediaFailure)
            }
            Err(e) => return Err(format!("post-recovery maint_step: {e}")),
        }
    }
    if !converged {
        return Err("maintenance failed to converge on the recovered heap".into());
    }
    match heap.fragmentation() {
        Ok(report) => {
            if report.frag_bytes() != 0 {
                return Err(format!(
                    "converged heap still owes {} bytes of coalescing debt",
                    report.frag_bytes()
                ));
            }
        }
        Err(PoseidonError::MediaError { .. }) if with_poison => return Ok(CaseOutcome::TypedMediaFailure),
        Err(e) => return Err(format!("post-recovery fragmentation: {e}")),
    }
    heap.audit().map_err(|e| format!("post-maintenance audit: {e}"))?;

    // Still serving after convergence.
    match heap.alloc(64) {
        Ok(p) => heap.free(p).map_err(|e| format!("post-recovery free: {e}"))?,
        Err(PoseidonError::AllFailed { .. } | PoseidonError::SubheapQuarantined { .. })
            if with_poison && frozen.len() == heap.layout().num_subheaps() as usize => {}
        Err(e) => return Err(format!("post-recovery alloc: {e}")),
    }
    Ok(CaseOutcome::Recovered)
}

fn run_case(case_seed: u64, with_tx: bool, with_poison: bool) -> Result<CaseOutcome, String> {
    let mut rng = Rng(case_seed | 1);
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_media_faults(with_poison)));
    let heap = Arc::new(
        PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1 + rng.below(3) as u16))
            .map_err(|e| format!("create: {e}"))?,
    );
    let pool =
        if with_tx { Some(PtxPool::create(heap.clone()).map_err(|e| format!("pool: {e}"))?) } else { None };

    // Random workload with a random crash point, and (under --poison) a
    // random media-fault point that poisons recently written lines.
    let max_alloc = heap.layout().max_alloc();
    dev.arm_crash_after(rng.below(500));
    if with_poison {
        dev.arm_poison_after(1 + rng.below(400), rng.next());
    }
    let mut live: Vec<NvmPtr> = Vec::new();
    'workload: for _ in 0..rng.below(80) + 10 {
        match rng.below(11) {
            0..=4 => match heap.alloc(1 + rng.below(8192)) {
                Ok(p) => live.push(p),
                Err(PoseidonError::Device(_)) => break 'workload,
                Err(_) => {}
            },
            5..=6 => {
                // Frees hit small and huge pointers alike: `live` holds
                // both, and the heap routes by the sub-heap sentinel.
                if !live.is_empty() {
                    let index = rng.below(live.len() as u64) as usize;
                    let p = live.swap_remove(index);
                    if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                        break 'workload;
                    }
                }
            }
            7 => {
                // tx_alloc, randomly committed, occasionally beyond the
                // sub-heap cap so the spanning huge+micro scope is hit.
                let commit = rng.below(2) == 0;
                let size =
                    if rng.below(6) == 0 { max_alloc + 1 + rng.below(1 << 20) } else { 1 + rng.below(512) };
                match heap.tx_alloc(size, commit) {
                    Ok(p) if commit => live.push(p),
                    Ok(_) => {}
                    Err(PoseidonError::Device(_)) => break 'workload,
                    Err(_) => {
                        let _ = heap.tx_abort();
                    }
                }
            }
            8 => {
                // Huge-path allocation (extent allocator). TooLarge is
                // routine: the region may be exhausted or (on one-sub
                // geometries) smaller than the sub-heap cap.
                match heap.alloc(max_alloc + 1 + rng.below(4 << 20)) {
                    Ok(p) => live.push(p),
                    Err(PoseidonError::Device(_)) => break 'workload,
                    Err(_) => {}
                }
            }
            9 => {
                // Cached-path churn: same-size alloc/free pairs drive the
                // magazine fast path (refill, hits, park) so crashes land
                // while blocks are cache-withdrawn in every state.
                let size = 1 + rng.below(4096);
                for _ in 0..rng.below(12) + 1 {
                    match heap.alloc(size) {
                        Ok(p) => {
                            if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                                break 'workload;
                            }
                        }
                        Err(PoseidonError::Device(_)) => break 'workload,
                        Err(_) => break,
                    }
                }
            }
            _ => {
                if let Some(pool) = &pool {
                    let result = pool.run(|tx| {
                        let a = tx.alloc(1 + rng.below(256))?;
                        tx.write_pod(a, 0, &case_seed)?;
                        if rng.below(3) == 0 {
                            return Err(PtxError::Aborted("fuzz abort".into()));
                        }
                        tx.set_root(a)?;
                        Ok(())
                    });
                    if matches!(result, Err(PtxError::Heap(PoseidonError::Device(_)))) {
                        break 'workload;
                    }
                }
            }
        }
    }
    dev.disarm_crash();
    dev.disarm_poison();
    let layout = heap.layout().clone();
    let heap_id = heap.heap_id();
    // Snapshot what the transient cache is holding at the moment of the
    // "power cut": magazine/pool residents and checked-out allocations
    // alike. All of them are persistently FREE by construction (the fast
    // path never touches media), and recovery must return every one to
    // the free lists.
    let cache_withdrawn = heap.cache_snapshot();
    drop(pool);
    drop(heap);

    // Snapshot every undo area's live entry chain *before* the power
    // cycle: reads see all pre-crash stores, so this is exactly what a
    // crashed operation managed to log.
    let logged_chains = poseidon::fuzz::undo_chains(&dev, &layout);

    // Power-cycle (half strict, half adversarial) and recover. Poisoned
    // lines survive the crash, like real media errors survive a reboot.
    let mode = if rng.below(2) == 0 { CrashMode::Strict } else { CrashMode::Adversarial };
    dev.simulate_crash(mode, rng.next());

    check_undo_ordering(&dev, &layout, &logged_chains)?;
    let heap = match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
        Ok(heap) => Arc::new(heap),
        // Losing state the heap cannot rebuild online (e.g. a poisoned
        // superblock line) must surface as the typed media error — any
        // other failure, and any panic, is a bug.
        Err(PoseidonError::MediaError { .. }) if with_poison => return Ok(CaseOutcome::TypedMediaFailure),
        Err(e) => return Err(format!("load: {e}")),
    };
    let audits = heap.audit().map_err(|e| format!("audit: {e}"))?;

    // Quarantine accounting must line up: the recovery report's wholesale
    // count matches the frozen sub-heap set, and the audit sees at least
    // the block quarantine recovery claims (frees before the crash may
    // have quarantined more).
    let recovery = heap.last_recovery();
    let frozen = heap.quarantined_subheaps();
    if recovery.subheaps_quarantined as usize != frozen.len() {
        return Err(format!(
            "recovery reports {} wholesale-quarantined sub-heaps but {} are frozen",
            recovery.subheaps_quarantined,
            frozen.len()
        ));
    }
    let audited_quarantined: u64 = audits.iter().map(|(_, a)| a.quarantined_bytes).sum();
    if audited_quarantined < recovery.bytes_quarantined {
        return Err(format!(
            "audit sees {audited_quarantined} quarantined bytes, recovery quarantined {}",
            recovery.bytes_quarantined
        ));
    }
    if !with_poison && (recovery.media_damage_detected() || dev.poisoned_lines() > 0) {
        return Err("media damage reported without --poison".into());
    }

    // Cache-residency invariant, checked after every power cycle: a block
    // the DRAM cache held at the crash instant must be media-FREE — it can
    // never resurface as a live allocation, because the cached path issues
    // no persistent stores. `block_size` succeeds only for ALLOC records
    // (the reloaded heap's cache starts empty), so success here means the
    // invariant broke.
    for &(sub, offset) in &cache_withdrawn {
        if frozen.contains(&sub) {
            continue; // wholesale quarantine froze the sub-heap's records as-is
        }
        if let Ok(size) = heap.block_size(NvmPtr::new(heap_id, sub, offset)) {
            return Err(format!(
                "cache-withdrawn block (sub {sub}, offset {offset:#x}) survived the \
                 crash as a live {size}-byte allocation"
            ));
        }
    }

    // Extent-table invariant check, every power cycle: the audit walks
    // the table and errors unless the non-empty slots form a sorted,
    // page-granular, eagerly-coalesced tiling of the whole data region.
    let huge = heap.huge_audit().map_err(|e| format!("huge audit: {e}"))?;
    if layout.huge_data_size() > 0 && !recovery.huge_region_quarantined && huge.is_none() {
        return Err("huge region unavailable without being quarantined".into());
    }
    if let Some(huge) = &huge {
        if huge.quarantined_bytes < recovery.huge_bytes_quarantined {
            return Err(format!(
                "huge audit sees {} quarantined bytes, recovery quarantined {}",
                huge.quarantined_bytes, recovery.huge_bytes_quarantined
            ));
        }
    }

    if with_tx && !heap.root().map_err(|e| format!("root: {e}"))?.is_null() {
        match PtxPool::open(heap.clone()) {
            Ok(pool) => {
                let _ = pool.recovery_report();
            }
            // The root object's own lines may be the poisoned ones.
            Err(PtxError::Heap(
                PoseidonError::MediaError { .. } | PoseidonError::SubheapQuarantined { .. },
            )) if with_poison => {}
            Err(e) => return Err(format!("ptx open: {e}")),
        }
    }

    // The recovered heap must still serve allocations, and never hand out
    // memory overlapping a poisoned line.
    match heap.alloc(64) {
        Ok(p) => {
            let raw = heap.raw_offset(p).map_err(|e| format!("raw_offset: {e}"))?;
            for range in dev.scrub() {
                if range.offset < raw + 64 && raw < range.offset + range.len {
                    return Err(format!(
                        "fresh allocation at {raw:#x} overlaps poisoned line at {:#x}",
                        range.offset
                    ));
                }
            }
            heap.free(p).map_err(|e| format!("post-recovery free: {e}"))?;
        }
        // Acceptable only when every sub-heap is frozen by poison (the
        // failover loop exhausts the sub-heap set and types it).
        Err(PoseidonError::AllFailed { .. } | PoseidonError::SubheapQuarantined { .. })
            if with_poison && frozen.len() == heap.layout().num_subheaps() as usize => {}
        Err(e) => return Err(format!("post-recovery alloc: {e}")),
    }
    Ok(CaseOutcome::Recovered)
}
