//! Umbrella crate for the Poseidon (Middleware '20) reproduction.
//!
//! This crate re-exports the workspace's public surface so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`poseidon`] — the paper's contribution: a safe, fast, scalable
//!   persistent memory allocator (per-CPU sub-heaps, fully segregated
//!   MPK-protected metadata, buddy lists, a multi-level hash table, and
//!   undo/micro logging).
//! * [`pmem`] — the simulated NVMM device substrate (cache-line flush/fence
//!   semantics, crash simulation, NUMA model, DCPMM cost model).
//! * [`mpk`] — the simulated Intel Memory Protection Keys substrate.
//! * [`ptx`] — durable persistent transactions over Poseidon (the
//!   programming model transactional allocation exists to serve).
//! * [`pds`] — crash-consistent persistent data structures (vector,
//!   list, hash map) built on `ptx`.
//! * [`baselines`] — structural models of PMDK `libpmemobj` and Makalu used
//!   as comparison points in the paper's evaluation.
//! * [`workloads`] — the paper's benchmark applications (microbenchmark,
//!   Larson, Ackermann, Kruskal, N-Queens, YCSB over a FAST-FAIR-style
//!   persistent B+-tree).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and per-experiment index.

pub use baselines;
pub use mpk;
pub use pds;
pub use pmem;
pub use poseidon;
pub use ptx;
pub use workloads;
