/root/repo/target/debug/deps/bench-9f827458b29215f5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-9f827458b29215f5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
