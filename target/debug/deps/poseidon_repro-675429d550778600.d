/root/repo/target/debug/deps/poseidon_repro-675429d550778600.d: src/lib.rs

/root/repo/target/debug/deps/poseidon_repro-675429d550778600: src/lib.rs

src/lib.rs:
