/root/repo/target/debug/deps/crashfuzz-1dc5667edde0a00e.d: src/bin/crashfuzz.rs

/root/repo/target/debug/deps/crashfuzz-1dc5667edde0a00e: src/bin/crashfuzz.rs

src/bin/crashfuzz.rs:
