/root/repo/target/debug/deps/platform-f894244327b5f2a0.d: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

/root/repo/target/debug/deps/platform-f894244327b5f2a0: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

crates/platform/src/lib.rs:
crates/platform/src/bench.rs:
crates/platform/src/check.rs:
crates/platform/src/rng.rs:
crates/platform/src/sync.rs:
crates/platform/src/thread.rs:
