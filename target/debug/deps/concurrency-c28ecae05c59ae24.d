/root/repo/target/debug/deps/concurrency-c28ecae05c59ae24.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-c28ecae05c59ae24: tests/concurrency.rs

tests/concurrency.rs:
