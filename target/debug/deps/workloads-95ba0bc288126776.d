/root/repo/target/debug/deps/workloads-95ba0bc288126776.d: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/workloads-95ba0bc288126776: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ackermann.rs:
crates/workloads/src/alloc_api.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/fastfair.rs:
crates/workloads/src/kruskal.rs:
crates/workloads/src/larson.rs:
crates/workloads/src/latency.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/nqueens.rs:
crates/workloads/src/ycsb.rs:
