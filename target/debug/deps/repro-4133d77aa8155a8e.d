/root/repo/target/debug/deps/repro-4133d77aa8155a8e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4133d77aa8155a8e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
