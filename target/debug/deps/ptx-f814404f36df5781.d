/root/repo/target/debug/deps/ptx-f814404f36df5781.d: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

/root/repo/target/debug/deps/libptx-f814404f36df5781.rlib: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

/root/repo/target/debug/deps/libptx-f814404f36df5781.rmeta: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

crates/ptx/src/lib.rs:
crates/ptx/src/error.rs:
crates/ptx/src/pool.rs:
