/root/repo/target/debug/deps/pfsck_tool-ee551ca940ce3d93.d: tests/pfsck_tool.rs

/root/repo/target/debug/deps/pfsck_tool-ee551ca940ce3d93: tests/pfsck_tool.rs

tests/pfsck_tool.rs:

# env-dep:CARGO_BIN_EXE_pfsck=/root/repo/target/debug/pfsck
