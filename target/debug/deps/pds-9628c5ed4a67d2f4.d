/root/repo/target/debug/deps/pds-9628c5ed4a67d2f4.d: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

/root/repo/target/debug/deps/libpds-9628c5ed4a67d2f4.rlib: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

/root/repo/target/debug/deps/libpds-9628c5ed4a67d2f4.rmeta: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

crates/pds/src/lib.rs:
crates/pds/src/list.rs:
crates/pds/src/map.rs:
crates/pds/src/vec.rs:
