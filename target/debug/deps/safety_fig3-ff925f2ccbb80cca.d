/root/repo/target/debug/deps/safety_fig3-ff925f2ccbb80cca.d: tests/safety_fig3.rs

/root/repo/target/debug/deps/safety_fig3-ff925f2ccbb80cca: tests/safety_fig3.rs

tests/safety_fig3.rs:
