/root/repo/target/debug/deps/mpk-63c1ea8775e6d1c8.d: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

/root/repo/target/debug/deps/libmpk-63c1ea8775e6d1c8.rlib: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

/root/repo/target/debug/deps/libmpk-63c1ea8775e6d1c8.rmeta: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

crates/mpk/src/lib.rs:
crates/mpk/src/guard.rs:
crates/mpk/src/keys.rs:
crates/mpk/src/pkru.rs:
