/root/repo/target/debug/deps/baselines-969baf428a889133.d: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

/root/repo/target/debug/deps/baselines-969baf428a889133: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

crates/baselines/src/lib.rs:
crates/baselines/src/avl.rs:
crates/baselines/src/error.rs:
crates/baselines/src/makalu_sim.rs:
crates/baselines/src/pmdk_sim.rs:
