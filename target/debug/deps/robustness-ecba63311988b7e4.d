/root/repo/target/debug/deps/robustness-ecba63311988b7e4.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-ecba63311988b7e4: tests/robustness.rs

tests/robustness.rs:
