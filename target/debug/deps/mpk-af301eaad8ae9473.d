/root/repo/target/debug/deps/mpk-af301eaad8ae9473.d: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

/root/repo/target/debug/deps/mpk-af301eaad8ae9473: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

crates/mpk/src/lib.rs:
crates/mpk/src/guard.rs:
crates/mpk/src/keys.rs:
crates/mpk/src/pkru.rs:
