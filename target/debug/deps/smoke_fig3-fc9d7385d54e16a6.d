/root/repo/target/debug/deps/smoke_fig3-fc9d7385d54e16a6.d: crates/bench/tests/smoke_fig3.rs

/root/repo/target/debug/deps/smoke_fig3-fc9d7385d54e16a6: crates/bench/tests/smoke_fig3.rs

crates/bench/tests/smoke_fig3.rs:

# env-dep:CARGO_BIN_EXE_repro=/root/repo/target/debug/repro
