/root/repo/target/debug/deps/prop_allocator-793d92feed9e0c88.d: tests/prop_allocator.rs

/root/repo/target/debug/deps/prop_allocator-793d92feed9e0c88: tests/prop_allocator.rs

tests/prop_allocator.rs:
