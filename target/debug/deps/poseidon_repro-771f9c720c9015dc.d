/root/repo/target/debug/deps/poseidon_repro-771f9c720c9015dc.d: src/lib.rs

/root/repo/target/debug/deps/libposeidon_repro-771f9c720c9015dc.rlib: src/lib.rs

/root/repo/target/debug/deps/libposeidon_repro-771f9c720c9015dc.rmeta: src/lib.rs

src/lib.rs:
