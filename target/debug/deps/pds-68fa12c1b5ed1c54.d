/root/repo/target/debug/deps/pds-68fa12c1b5ed1c54.d: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

/root/repo/target/debug/deps/pds-68fa12c1b5ed1c54: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

crates/pds/src/lib.rs:
crates/pds/src/list.rs:
crates/pds/src/map.rs:
crates/pds/src/vec.rs:
