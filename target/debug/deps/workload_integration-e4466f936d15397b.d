/root/repo/target/debug/deps/workload_integration-e4466f936d15397b.d: tests/workload_integration.rs

/root/repo/target/debug/deps/workload_integration-e4466f936d15397b: tests/workload_integration.rs

tests/workload_integration.rs:
