/root/repo/target/debug/deps/crash_recovery-5fbe8a6f7528e17f.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-5fbe8a6f7528e17f: tests/crash_recovery.rs

tests/crash_recovery.rs:
