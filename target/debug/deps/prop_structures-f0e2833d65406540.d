/root/repo/target/debug/deps/prop_structures-f0e2833d65406540.d: crates/poseidon/tests/prop_structures.rs

/root/repo/target/debug/deps/prop_structures-f0e2833d65406540: crates/poseidon/tests/prop_structures.rs

crates/poseidon/tests/prop_structures.rs:
