/root/repo/target/debug/deps/prop_fastfair-895a557c9b0e9b6e.d: crates/workloads/tests/prop_fastfair.rs

/root/repo/target/debug/deps/prop_fastfair-895a557c9b0e9b6e: crates/workloads/tests/prop_fastfair.rs

crates/workloads/tests/prop_fastfair.rs:
