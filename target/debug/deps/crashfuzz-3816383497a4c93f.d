/root/repo/target/debug/deps/crashfuzz-3816383497a4c93f.d: src/bin/crashfuzz.rs

/root/repo/target/debug/deps/crashfuzz-3816383497a4c93f: src/bin/crashfuzz.rs

src/bin/crashfuzz.rs:
