/root/repo/target/debug/deps/tmp_verify_pool-ecccb61f45f54542.d: tests/tmp_verify_pool.rs

/root/repo/target/debug/deps/tmp_verify_pool-ecccb61f45f54542: tests/tmp_verify_pool.rs

tests/tmp_verify_pool.rs:
