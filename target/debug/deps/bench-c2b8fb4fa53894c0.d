/root/repo/target/debug/deps/bench-c2b8fb4fa53894c0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-c2b8fb4fa53894c0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-c2b8fb4fa53894c0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
