/root/repo/target/debug/deps/pfsck-fa5e866a5ce73163.d: src/bin/pfsck.rs

/root/repo/target/debug/deps/pfsck-fa5e866a5ce73163: src/bin/pfsck.rs

src/bin/pfsck.rs:
