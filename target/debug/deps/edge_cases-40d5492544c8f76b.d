/root/repo/target/debug/deps/edge_cases-40d5492544c8f76b.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-40d5492544c8f76b: tests/edge_cases.rs

tests/edge_cases.rs:
