/root/repo/target/debug/deps/platform-3b3d501ef93798a4.d: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

/root/repo/target/debug/deps/libplatform-3b3d501ef93798a4.rlib: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

/root/repo/target/debug/deps/libplatform-3b3d501ef93798a4.rmeta: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

crates/platform/src/lib.rs:
crates/platform/src/bench.rs:
crates/platform/src/check.rs:
crates/platform/src/rng.rs:
crates/platform/src/sync.rs:
crates/platform/src/thread.rs:
