/root/repo/target/debug/deps/pds_model-191a422ca9f89500.d: crates/pds/tests/pds_model.rs

/root/repo/target/debug/deps/pds_model-191a422ca9f89500: crates/pds/tests/pds_model.rs

crates/pds/tests/pds_model.rs:
