/root/repo/target/debug/deps/ptx-bb6e225331b2ef08.d: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

/root/repo/target/debug/deps/ptx-bb6e225331b2ef08: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

crates/ptx/src/lib.rs:
crates/ptx/src/error.rs:
crates/ptx/src/pool.rs:
