/root/repo/target/debug/deps/baselines-67962336c77d0b14.d: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

/root/repo/target/debug/deps/libbaselines-67962336c77d0b14.rlib: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

/root/repo/target/debug/deps/libbaselines-67962336c77d0b14.rmeta: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

crates/baselines/src/lib.rs:
crates/baselines/src/avl.rs:
crates/baselines/src/error.rs:
crates/baselines/src/makalu_sim.rs:
crates/baselines/src/pmdk_sim.rs:
