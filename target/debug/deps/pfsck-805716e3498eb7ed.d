/root/repo/target/debug/deps/pfsck-805716e3498eb7ed.d: src/bin/pfsck.rs

/root/repo/target/debug/deps/pfsck-805716e3498eb7ed: src/bin/pfsck.rs

src/bin/pfsck.rs:
