/root/repo/target/debug/deps/prop_device-3115bd88a048b562.d: crates/pmem/tests/prop_device.rs

/root/repo/target/debug/deps/prop_device-3115bd88a048b562: crates/pmem/tests/prop_device.rs

crates/pmem/tests/prop_device.rs:
