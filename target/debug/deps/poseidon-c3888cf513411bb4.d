/root/repo/target/debug/deps/poseidon-c3888cf513411bb4.d: crates/poseidon/src/lib.rs crates/poseidon/src/buddy.rs crates/poseidon/src/defrag.rs crates/poseidon/src/error.rs crates/poseidon/src/hashtable.rs crates/poseidon/src/heap.rs crates/poseidon/src/layout.rs crates/poseidon/src/microlog.rs crates/poseidon/src/nvmptr.rs crates/poseidon/src/persist.rs crates/poseidon/src/quarantine.rs crates/poseidon/src/recovery.rs crates/poseidon/src/repair.rs crates/poseidon/src/subheap.rs crates/poseidon/src/superblock.rs crates/poseidon/src/undo.rs

/root/repo/target/debug/deps/libposeidon-c3888cf513411bb4.rlib: crates/poseidon/src/lib.rs crates/poseidon/src/buddy.rs crates/poseidon/src/defrag.rs crates/poseidon/src/error.rs crates/poseidon/src/hashtable.rs crates/poseidon/src/heap.rs crates/poseidon/src/layout.rs crates/poseidon/src/microlog.rs crates/poseidon/src/nvmptr.rs crates/poseidon/src/persist.rs crates/poseidon/src/quarantine.rs crates/poseidon/src/recovery.rs crates/poseidon/src/repair.rs crates/poseidon/src/subheap.rs crates/poseidon/src/superblock.rs crates/poseidon/src/undo.rs

/root/repo/target/debug/deps/libposeidon-c3888cf513411bb4.rmeta: crates/poseidon/src/lib.rs crates/poseidon/src/buddy.rs crates/poseidon/src/defrag.rs crates/poseidon/src/error.rs crates/poseidon/src/hashtable.rs crates/poseidon/src/heap.rs crates/poseidon/src/layout.rs crates/poseidon/src/microlog.rs crates/poseidon/src/nvmptr.rs crates/poseidon/src/persist.rs crates/poseidon/src/quarantine.rs crates/poseidon/src/recovery.rs crates/poseidon/src/repair.rs crates/poseidon/src/subheap.rs crates/poseidon/src/superblock.rs crates/poseidon/src/undo.rs

crates/poseidon/src/lib.rs:
crates/poseidon/src/buddy.rs:
crates/poseidon/src/defrag.rs:
crates/poseidon/src/error.rs:
crates/poseidon/src/hashtable.rs:
crates/poseidon/src/heap.rs:
crates/poseidon/src/layout.rs:
crates/poseidon/src/microlog.rs:
crates/poseidon/src/nvmptr.rs:
crates/poseidon/src/persist.rs:
crates/poseidon/src/quarantine.rs:
crates/poseidon/src/recovery.rs:
crates/poseidon/src/repair.rs:
crates/poseidon/src/subheap.rs:
crates/poseidon/src/superblock.rs:
crates/poseidon/src/undo.rs:
