/root/repo/target/debug/deps/workloads-dcf4e8b7c6886239.d: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libworkloads-dcf4e8b7c6886239.rlib: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libworkloads-dcf4e8b7c6886239.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ackermann.rs:
crates/workloads/src/alloc_api.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/fastfair.rs:
crates/workloads/src/kruskal.rs:
crates/workloads/src/larson.rs:
crates/workloads/src/latency.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/nqueens.rs:
crates/workloads/src/ycsb.rs:
