/root/repo/target/debug/deps/media_faults-7e6a18505415c26b.d: tests/media_faults.rs

/root/repo/target/debug/deps/media_faults-7e6a18505415c26b: tests/media_faults.rs

tests/media_faults.rs:
