/root/repo/target/debug/deps/repro-9515a85abc038807.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-9515a85abc038807: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
