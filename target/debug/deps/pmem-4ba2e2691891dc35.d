/root/repo/target/debug/deps/pmem-4ba2e2691891dc35.d: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

/root/repo/target/debug/deps/libpmem-4ba2e2691891dc35.rlib: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

/root/repo/target/debug/deps/libpmem-4ba2e2691891dc35.rmeta: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

crates/pmem/src/lib.rs:
crates/pmem/src/cache.rs:
crates/pmem/src/contention.rs:
crates/pmem/src/cost.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/numa.rs:
crates/pmem/src/pod.rs:
crates/pmem/src/poison.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/store.rs:
