/root/repo/target/debug/examples/bank_transfer-e3526ab69b9f17d6.d: examples/bank_transfer.rs

/root/repo/target/debug/examples/bank_transfer-e3526ab69b9f17d6: examples/bank_transfer.rs

examples/bank_transfer.rs:
