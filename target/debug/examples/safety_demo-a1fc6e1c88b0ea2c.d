/root/repo/target/debug/examples/safety_demo-a1fc6e1c88b0ea2c.d: examples/safety_demo.rs

/root/repo/target/debug/examples/safety_demo-a1fc6e1c88b0ea2c: examples/safety_demo.rs

examples/safety_demo.rs:
