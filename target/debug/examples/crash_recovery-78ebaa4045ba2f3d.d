/root/repo/target/debug/examples/crash_recovery-78ebaa4045ba2f3d.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-78ebaa4045ba2f3d: examples/crash_recovery.rs

examples/crash_recovery.rs:
