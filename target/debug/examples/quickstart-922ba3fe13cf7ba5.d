/root/repo/target/debug/examples/quickstart-922ba3fe13cf7ba5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-922ba3fe13cf7ba5: examples/quickstart.rs

examples/quickstart.rs:
