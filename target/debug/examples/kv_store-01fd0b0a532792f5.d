/root/repo/target/debug/examples/kv_store-01fd0b0a532792f5.d: examples/kv_store.rs

/root/repo/target/debug/examples/kv_store-01fd0b0a532792f5: examples/kv_store.rs

examples/kv_store.rs:
