/root/repo/target/debug/examples/numa_scaling-8c66005b580a4c90.d: examples/numa_scaling.rs

/root/repo/target/debug/examples/numa_scaling-8c66005b580a4c90: examples/numa_scaling.rs

examples/numa_scaling.rs:
