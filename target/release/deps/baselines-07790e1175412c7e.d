/root/repo/target/release/deps/baselines-07790e1175412c7e.d: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

/root/repo/target/release/deps/libbaselines-07790e1175412c7e.rlib: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

/root/repo/target/release/deps/libbaselines-07790e1175412c7e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/avl.rs crates/baselines/src/error.rs crates/baselines/src/makalu_sim.rs crates/baselines/src/pmdk_sim.rs

crates/baselines/src/lib.rs:
crates/baselines/src/avl.rs:
crates/baselines/src/error.rs:
crates/baselines/src/makalu_sim.rs:
crates/baselines/src/pmdk_sim.rs:
