/root/repo/target/release/deps/bench-8e68609b9750b719.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-8e68609b9750b719: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
