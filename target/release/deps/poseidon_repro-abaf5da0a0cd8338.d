/root/repo/target/release/deps/poseidon_repro-abaf5da0a0cd8338.d: src/lib.rs

/root/repo/target/release/deps/libposeidon_repro-abaf5da0a0cd8338.rlib: src/lib.rs

/root/repo/target/release/deps/libposeidon_repro-abaf5da0a0cd8338.rmeta: src/lib.rs

src/lib.rs:
