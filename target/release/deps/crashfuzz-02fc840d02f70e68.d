/root/repo/target/release/deps/crashfuzz-02fc840d02f70e68.d: src/bin/crashfuzz.rs

/root/repo/target/release/deps/crashfuzz-02fc840d02f70e68: src/bin/crashfuzz.rs

src/bin/crashfuzz.rs:
