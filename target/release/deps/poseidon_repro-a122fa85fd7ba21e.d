/root/repo/target/release/deps/poseidon_repro-a122fa85fd7ba21e.d: src/lib.rs

/root/repo/target/release/deps/poseidon_repro-a122fa85fd7ba21e: src/lib.rs

src/lib.rs:
