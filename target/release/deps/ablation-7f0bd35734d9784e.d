/root/repo/target/release/deps/ablation-7f0bd35734d9784e.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-7f0bd35734d9784e: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
