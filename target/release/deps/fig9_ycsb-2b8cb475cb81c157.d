/root/repo/target/release/deps/fig9_ycsb-2b8cb475cb81c157.d: crates/bench/benches/fig9_ycsb.rs

/root/repo/target/release/deps/fig9_ycsb-2b8cb475cb81c157: crates/bench/benches/fig9_ycsb.rs

crates/bench/benches/fig9_ycsb.rs:
