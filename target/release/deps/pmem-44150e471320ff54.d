/root/repo/target/release/deps/pmem-44150e471320ff54.d: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

/root/repo/target/release/deps/libpmem-44150e471320ff54.rlib: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

/root/repo/target/release/deps/libpmem-44150e471320ff54.rmeta: crates/pmem/src/lib.rs crates/pmem/src/cache.rs crates/pmem/src/contention.rs crates/pmem/src/cost.rs crates/pmem/src/device.rs crates/pmem/src/error.rs crates/pmem/src/numa.rs crates/pmem/src/pod.rs crates/pmem/src/poison.rs crates/pmem/src/stats.rs crates/pmem/src/store.rs

crates/pmem/src/lib.rs:
crates/pmem/src/cache.rs:
crates/pmem/src/contention.rs:
crates/pmem/src/cost.rs:
crates/pmem/src/device.rs:
crates/pmem/src/error.rs:
crates/pmem/src/numa.rs:
crates/pmem/src/pod.rs:
crates/pmem/src/poison.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/store.rs:
