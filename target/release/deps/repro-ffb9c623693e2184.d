/root/repo/target/release/deps/repro-ffb9c623693e2184.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-ffb9c623693e2184: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
