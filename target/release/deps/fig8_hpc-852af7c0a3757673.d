/root/repo/target/release/deps/fig8_hpc-852af7c0a3757673.d: crates/bench/benches/fig8_hpc.rs

/root/repo/target/release/deps/fig8_hpc-852af7c0a3757673: crates/bench/benches/fig8_hpc.rs

crates/bench/benches/fig8_hpc.rs:
