/root/repo/target/release/deps/crashfuzz-7809621f0f6d00e1.d: src/bin/crashfuzz.rs

/root/repo/target/release/deps/crashfuzz-7809621f0f6d00e1: src/bin/crashfuzz.rs

src/bin/crashfuzz.rs:
