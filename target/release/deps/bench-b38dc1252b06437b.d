/root/repo/target/release/deps/bench-b38dc1252b06437b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-b38dc1252b06437b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-b38dc1252b06437b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
