/root/repo/target/release/deps/repro-37fff1c41e494ffc.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-37fff1c41e494ffc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
