/root/repo/target/release/deps/ptx-cebd68bf84cee4b9.d: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

/root/repo/target/release/deps/libptx-cebd68bf84cee4b9.rlib: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

/root/repo/target/release/deps/libptx-cebd68bf84cee4b9.rmeta: crates/ptx/src/lib.rs crates/ptx/src/error.rs crates/ptx/src/pool.rs

crates/ptx/src/lib.rs:
crates/ptx/src/error.rs:
crates/ptx/src/pool.rs:
