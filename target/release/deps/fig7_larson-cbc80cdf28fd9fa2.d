/root/repo/target/release/deps/fig7_larson-cbc80cdf28fd9fa2.d: crates/bench/benches/fig7_larson.rs

/root/repo/target/release/deps/fig7_larson-cbc80cdf28fd9fa2: crates/bench/benches/fig7_larson.rs

crates/bench/benches/fig7_larson.rs:
