/root/repo/target/release/deps/pfsck-7f944992cbc37905.d: src/bin/pfsck.rs

/root/repo/target/release/deps/pfsck-7f944992cbc37905: src/bin/pfsck.rs

src/bin/pfsck.rs:
