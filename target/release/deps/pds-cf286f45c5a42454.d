/root/repo/target/release/deps/pds-cf286f45c5a42454.d: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

/root/repo/target/release/deps/libpds-cf286f45c5a42454.rlib: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

/root/repo/target/release/deps/libpds-cf286f45c5a42454.rmeta: crates/pds/src/lib.rs crates/pds/src/list.rs crates/pds/src/map.rs crates/pds/src/vec.rs

crates/pds/src/lib.rs:
crates/pds/src/list.rs:
crates/pds/src/map.rs:
crates/pds/src/vec.rs:
