/root/repo/target/release/deps/workloads-33c4b239f7152eb8.d: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libworkloads-33c4b239f7152eb8.rlib: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libworkloads-33c4b239f7152eb8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/ackermann.rs crates/workloads/src/alloc_api.rs crates/workloads/src/driver.rs crates/workloads/src/fastfair.rs crates/workloads/src/kruskal.rs crates/workloads/src/larson.rs crates/workloads/src/latency.rs crates/workloads/src/micro.rs crates/workloads/src/nqueens.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/ackermann.rs:
crates/workloads/src/alloc_api.rs:
crates/workloads/src/driver.rs:
crates/workloads/src/fastfair.rs:
crates/workloads/src/kruskal.rs:
crates/workloads/src/larson.rs:
crates/workloads/src/latency.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/nqueens.rs:
crates/workloads/src/ycsb.rs:
