/root/repo/target/release/deps/mpk-51645fa35db5096b.d: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

/root/repo/target/release/deps/libmpk-51645fa35db5096b.rlib: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

/root/repo/target/release/deps/libmpk-51645fa35db5096b.rmeta: crates/mpk/src/lib.rs crates/mpk/src/guard.rs crates/mpk/src/keys.rs crates/mpk/src/pkru.rs

crates/mpk/src/lib.rs:
crates/mpk/src/guard.rs:
crates/mpk/src/keys.rs:
crates/mpk/src/pkru.rs:
