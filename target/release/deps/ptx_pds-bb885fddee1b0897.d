/root/repo/target/release/deps/ptx_pds-bb885fddee1b0897.d: crates/bench/benches/ptx_pds.rs

/root/repo/target/release/deps/ptx_pds-bb885fddee1b0897: crates/bench/benches/ptx_pds.rs

crates/bench/benches/ptx_pds.rs:
