/root/repo/target/release/deps/pfsck-d7a237d93a154d8b.d: src/bin/pfsck.rs

/root/repo/target/release/deps/pfsck-d7a237d93a154d8b: src/bin/pfsck.rs

src/bin/pfsck.rs:
