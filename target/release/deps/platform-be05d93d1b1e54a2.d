/root/repo/target/release/deps/platform-be05d93d1b1e54a2.d: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

/root/repo/target/release/deps/libplatform-be05d93d1b1e54a2.rlib: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

/root/repo/target/release/deps/libplatform-be05d93d1b1e54a2.rmeta: crates/platform/src/lib.rs crates/platform/src/bench.rs crates/platform/src/check.rs crates/platform/src/rng.rs crates/platform/src/sync.rs crates/platform/src/thread.rs

crates/platform/src/lib.rs:
crates/platform/src/bench.rs:
crates/platform/src/check.rs:
crates/platform/src/rng.rs:
crates/platform/src/sync.rs:
crates/platform/src/thread.rs:
