/root/repo/target/release/deps/fig6_micro-123987567300c68f.d: crates/bench/benches/fig6_micro.rs

/root/repo/target/release/deps/fig6_micro-123987567300c68f: crates/bench/benches/fig6_micro.rs

crates/bench/benches/fig6_micro.rs:
