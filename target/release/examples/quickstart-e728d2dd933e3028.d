/root/repo/target/release/examples/quickstart-e728d2dd933e3028.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e728d2dd933e3028: examples/quickstart.rs

examples/quickstart.rs:
