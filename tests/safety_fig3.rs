//! Integration test: the paper's Figure 3 safety experiments, asserted
//! end-to-end across crates (baseline vulnerabilities demonstrated,
//! Poseidon rejections verified).

use std::sync::Arc;

use baselines::pmdk_sim::{ObjHeader, STATUS_ALLOC};
use baselines::{MakaluSim, PmdkSim};
use pmem::{DeviceConfig, PmemDevice, PmemError};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};

fn device(mib: u64) -> Arc<PmemDevice> {
    Arc::new(PmemDevice::new(DeviceConfig::bench(mib << 20)))
}

#[test]
fn pmdk_overlapping_allocation_after_header_grow() {
    let dev = device(64);
    let pool = PmdkSim::new(dev.clone()).unwrap();
    let mut live = Vec::new();
    for _ in 0..64 {
        live.push(pool.alloc(0, 48).unwrap());
    }
    let victim = live[32];
    dev.write_pod(victim - 16, &ObjHeader { size: 1088, status: STATUS_ALLOC }).unwrap();
    pool.free(0, victim).unwrap();
    let overlaps = (0..17)
        .map(|_| pool.alloc(0, 48).unwrap())
        .filter(|fresh| live.contains(fresh) && *fresh != victim)
        .count();
    assert_eq!(overlaps, 16, "paper: 8 of 9 extra allocations alias live objects; here 16 of 17");
}

#[test]
fn pmdk_permanent_leak_after_header_shrink() {
    let dev = device(64);
    let pool = PmdkSim::new(dev.clone()).unwrap();
    let before = pool.free_chunks();
    let big = pool.alloc(0, 2 * 1024 * 1024).unwrap();
    dev.write_pod(big - 16, &ObjHeader { size: 64, status: STATUS_ALLOC }).unwrap();
    pool.free(0, big).unwrap();
    // 9 chunks were reserved (2 MiB + header across 256 KiB chunks); only
    // 1 was returned.
    assert_eq!(before - pool.free_chunks(), 8);
    // And no amount of normal allocation can ever reach them again: the
    // heap reports OOM while the leaked chunks still exist.
    let mut grabbed = 0;
    while pool.alloc(0, 2 * 1024 * 1024).is_ok() {
        grabbed += 1;
    }
    let unreachable = pool.free_chunks();
    assert!(grabbed > 0);
    assert!(unreachable < 9, "free ranges too fragmented to matter: {unreachable}");
}

#[test]
fn pmdk_direct_bitmap_corruption_loses_objects() {
    // The paper's "direct metadata corruption" route: the run bitmap sits
    // at a predictable location at the start of the chunk, in
    // user-writable memory.
    let dev = device(64);
    let pool = PmdkSim::new(dev.clone()).unwrap();
    let a = pool.alloc(0, 48).unwrap();
    // The bitmap lives at chunk start + 16; zeroing it marks everything
    // free.
    dev.write(pool.chunk_base(a) + 16, &[0u8; 64]).unwrap();
    // The allocator now re-hands out the live object.
    let b = pool.alloc(0, 48).unwrap();
    assert_eq!(a, b, "live object silently reallocated after bitmap wipe");
}

#[test]
fn makalu_gc_sweeps_live_data_after_pointer_corruption() {
    let dev = device(64);
    let pool = MakaluSim::new(dev.clone()).unwrap();
    let root = pool.alloc(0, 64).unwrap();
    let middle = pool.alloc(0, 64).unwrap();
    let leaf = pool.alloc(0, 64).unwrap();
    dev.write_pod(root, &middle).unwrap();
    dev.write_pod(middle, &leaf).unwrap();
    assert_eq!(pool.gc(&[root]).unwrap(), 0);
    dev.write_pod(root, &0u64).unwrap();
    assert_eq!(pool.gc(&[root]).unwrap(), 2, "middle and leaf swept while still wanted");
}

#[test]
fn poseidon_rejects_every_figure3_attack() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let ptr = heap.alloc(64).unwrap();
    let raw = heap.raw_offset(ptr).unwrap();

    // Writing user data is fine.
    dev.write(raw, &[1u8; 64]).unwrap();

    // (1) Heap overflow toward metadata: protection fault at the page
    // boundary, no matter how large the overflowing write is.
    let err = dev.write(heap.layout().user_base(0) - 8, &[0xFF; 4096]).unwrap_err();
    assert!(matches!(err, PmemError::ProtectionFault { .. }));

    // (2) Direct metadata store (superblock, sub-heap header, table,
    // logs): all protected.
    for off in [0u64, heap.layout().meta_base(0), heap.layout().meta_base(1) + 0x12000] {
        let err = dev.write(off, &[0xFF; 8]).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { .. }), "offset {off:#x} unprotected");
    }

    // (3) Invalid frees: interior pointer, unallocated offset, foreign
    // heap, out-of-range sub-heap.
    assert!(matches!(
        heap.free(NvmPtr::new(heap.heap_id(), 0, ptr.offset() + 8)),
        Err(PoseidonError::InvalidFree { .. })
    ));
    assert!(matches!(
        heap.free(NvmPtr::new(heap.heap_id(), 0, 1 << 20)),
        Err(PoseidonError::InvalidFree { .. })
    ));
    assert!(matches!(
        heap.free(NvmPtr::new(heap.heap_id() ^ 1, 0, ptr.offset())),
        Err(PoseidonError::WrongHeap { .. })
    ));
    assert!(matches!(
        heap.free(NvmPtr::new(heap.heap_id(), 99, ptr.offset())),
        Err(PoseidonError::BadSubheap { .. })
    ));

    // (4) Double free.
    heap.free(ptr).unwrap();
    assert!(matches!(heap.free(ptr), Err(PoseidonError::DoubleFree { .. })));

    // After all attacks, the heap is structurally pristine and usable.
    heap.audit().unwrap();
    let p2 = heap.alloc(64).unwrap();
    heap.free(p2).unwrap();
}

#[test]
fn poseidon_mpk_grant_is_thread_local() {
    // Even while one thread is inside an allocation (write permission
    // granted), other threads still cannot touch metadata — MPK is
    // per-thread (§8 "Safety and correctness").
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
    let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());

    let dev2 = dev.clone();
    platform::thread::scope(|s| {
        // Saturate with allocations on this thread so grants are live...
        let h = heap.clone();
        s.spawn(move || {
            for _ in 0..2000 {
                let p = poseidon::PoseidonHeap::alloc(&h, 64).unwrap();
                h.free(p).unwrap();
            }
        });
        // ...while another thread hammers the metadata and always faults.
        s.spawn(move || {
            for _ in 0..2000 {
                let err = dev2.write(4096, &[0xFF; 8]).unwrap_err();
                assert!(matches!(err, PmemError::ProtectionFault { .. }));
            }
        });
    });
}
