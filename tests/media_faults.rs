//! Integration tests for the media-error fault model: poisoned cache
//! lines fault on read and survive reboots, and the heap must degrade
//! gracefully — quarantine what it cannot trust, fail over, keep serving
//! the rest — rather than panic or brick the pool. `pfsck --repair`
//! (exercised here through [`poseidon::repair`]) is the offline escape
//! hatch that rebuilds the damaged metadata.

use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice, CACHE_LINE_SIZE};
use poseidon::{HeapConfig, PoseidonError, PoseidonHeap};

fn faulty_device() -> Arc<PmemDevice> {
    Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_media_faults(true)))
}

fn line_of(raw: u64) -> u64 {
    raw & !(CACHE_LINE_SIZE - 1)
}

#[test]
fn poisoned_free_block_is_quarantined_and_never_reused() {
    let dev = faulty_device();
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    let keep = heap.alloc(256).unwrap();
    let victim = heap.alloc(256).unwrap();
    let victim_raw = heap.raw_offset(victim).unwrap();
    heap.free(victim).unwrap();
    heap.set_root(keep).unwrap();
    heap.close().unwrap();

    // Poison the freed block's user bytes at rest, then power-cycle.
    dev.poison(line_of(victim_raw), CACHE_LINE_SIZE).unwrap();
    dev.simulate_crash(CrashMode::Strict, 1);

    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    let report = heap.last_recovery();
    assert!(report.media_damage_detected());
    assert_eq!(report.subheaps_quarantined, 0, "user-line poison must not freeze the sub-heap");
    assert_eq!(report.blocks_quarantined, 1);
    assert!(report.bytes_quarantined >= 256);
    let quarantined: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.quarantined_bytes).sum();
    assert_eq!(quarantined, report.bytes_quarantined);

    // The quarantined block must never be handed out again: allocate the
    // whole class dry and check nothing overlaps the poisoned line.
    let mut live = Vec::new();
    while let Ok(p) = heap.alloc(256) {
        let raw = heap.raw_offset(p).unwrap();
        assert!(
            line_of(victim_raw) + CACHE_LINE_SIZE <= raw || raw + 256 <= line_of(victim_raw),
            "poisoned block re-allocated at {raw:#x}"
        );
        live.push(p);
        if live.len() > 100_000 {
            break;
        }
    }
    // Root and its block survived untouched.
    assert_eq!(heap.root().unwrap(), keep);
}

/// Freeing a live block whose bytes picked up poison must quarantine it
/// *and* say so in the live health ledger. The record-state side has
/// always held; the `blocks_quarantined_live` counter silently stayed at
/// zero on this path (the scrubber never revisits the block because it is
/// no longer FREE), so a service watching `health()` saw a clean heap
/// while the audit showed quarantined blocks.
#[test]
fn free_of_poisoned_live_block_bumps_live_quarantine_counter() {
    let dev = faulty_device();
    let config = HeapConfig::new().with_subheaps(1).without_cache();
    let heap = PoseidonHeap::create(dev.clone(), config).unwrap();
    let victim = heap.alloc(256).unwrap();
    let victim_raw = heap.raw_offset(victim).unwrap();
    dev.poison(line_of(victim_raw), CACHE_LINE_SIZE).unwrap();

    assert_eq!(heap.health().blocks_quarantined_live, 0);
    heap.free(victim).unwrap();
    assert_eq!(
        heap.health().blocks_quarantined_live,
        1,
        "free-time quarantine must be visible in the live health ledger, not just the audit"
    );
    let quarantined: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.quarantined_blocks).sum();
    assert_eq!(quarantined, 1, "the durable record state and the ledger must agree");

    // A scrub pass finds nothing new — the block is QUARANTINED, not
    // FREE — so the counter must not double-count.
    heap.scrub_step(usize::MAX).unwrap();
    assert_eq!(heap.health().blocks_quarantined_live, 1);

    // And the block is never handed out again.
    let mut live = Vec::new();
    while let Ok(p) = heap.alloc(256) {
        let raw = heap.raw_offset(p).unwrap();
        assert!(
            line_of(victim_raw) + CACHE_LINE_SIZE <= raw || raw + 256 <= line_of(victim_raw),
            "poisoned block re-allocated at {raw:#x}"
        );
        live.push(p);
        if live.len() > 100_000 {
            break;
        }
    }
}

/// Same ledger contract for the magazine-cache path: a block sitting in
/// the transient cache when its line is poisoned gets quarantined when
/// the cache drains it back to the persistent free lists, and that
/// drain-time quarantine must also land in `blocks_quarantined_live`.
#[test]
fn cache_drain_of_poisoned_block_bumps_live_quarantine_counter() {
    let dev = faulty_device();
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    let victim = heap.alloc(256).unwrap();
    let victim_raw = heap.raw_offset(victim).unwrap();
    heap.free(victim).unwrap(); // absorbed by the per-CPU magazine
    dev.poison(line_of(victim_raw), CACHE_LINE_SIZE).unwrap();

    // Scrubbing the sub-heap evicts cache residents through
    // `drain_blocks`, which routes the poisoned block to quarantine.
    heap.scrub_step(usize::MAX).unwrap();
    assert_eq!(
        heap.health().blocks_quarantined_live,
        1,
        "drain-time quarantine must be counted exactly once"
    );
    let quarantined: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.quarantined_blocks).sum();
    assert_eq!(quarantined, 1);
}

#[test]
fn poisoned_metadata_quarantines_subheap_and_alloc_fails_over() {
    let dev = faulty_device();
    let layout;
    let home;
    let hostage;
    {
        let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
        layout = heap.layout().clone();
        // Materialise both sub-heaps (pinning picks the serving sub-heap),
        // so failover has somewhere healthy to land after recovery.
        let mut probes = Vec::new();
        for cpu in 0..2usize {
            let _pin = pmem::numa::CpuPinGuard::pin(cpu);
            probes.push(heap.alloc(64).unwrap());
        }
        home = probes[0].subheap();
        assert_ne!(home, probes[1].subheap());
        hostage = probes[0];
        heap.free(probes[1]).unwrap();
        heap.close().unwrap();
    }

    // Poison a buddy free-list head line in the home sub-heap's metadata.
    dev.poison(layout.meta_base(home) + 0x100, CACHE_LINE_SIZE).unwrap();
    dev.simulate_crash(CrashMode::Strict, 2);

    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    assert_eq!(heap.quarantined_subheaps(), vec![home]);
    assert_eq!(heap.last_recovery().subheaps_quarantined, 1);

    // alloc transparently retries from the healthy sub-heap, even when the
    // calling CPU's home sub-heap is the frozen one...
    let _pin = pmem::numa::CpuPinGuard::pin(0);
    let p = heap.alloc(64).unwrap();
    assert_ne!(p.subheap(), home, "allocation landed on a quarantined sub-heap");
    heap.free(p).unwrap();
    // ...while direct operations on the frozen sub-heap's blocks are
    // refused with the typed error.
    assert!(matches!(
        heap.free(hostage),
        Err(PoseidonError::SubheapQuarantined { subheap }) if subheap == home
    ));
    assert!(matches!(
        heap.block_size(hostage),
        Err(PoseidonError::SubheapQuarantined { subheap }) if subheap == home
    ));
}

#[test]
fn poisoned_superblock_fails_load_with_typed_error() {
    let dev = faulty_device();
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    heap.close().unwrap();
    dev.poison(0, CACHE_LINE_SIZE).unwrap();
    dev.simulate_crash(CrashMode::Strict, 3);
    assert!(matches!(PoseidonHeap::load(dev, HeapConfig::new()), Err(PoseidonError::MediaError { .. })));
}

#[test]
fn repair_restores_a_quarantined_subheap_with_data_intact() {
    let dev = faulty_device();
    let layout;
    let keep;
    let keep_raw;
    {
        let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
        layout = heap.layout().clone();
        keep = heap.alloc(128).unwrap();
        keep_raw = heap.raw_offset(keep).unwrap();
        dev.write(keep_raw, b"survives repair").unwrap();
        dev.persist(keep_raw, 15).unwrap();
        heap.set_root(keep).unwrap();
        heap.close().unwrap();
    }

    // Poison a free-list line and an undo-log line: the whole sub-heap is
    // frozen on load until repair rebuilds it.
    dev.poison(layout.meta_base(0) + 0x100, CACHE_LINE_SIZE).unwrap();
    dev.poison(layout.meta_base(0) + 0x1000, CACHE_LINE_SIZE).unwrap();
    dev.simulate_crash(CrashMode::Strict, 4);
    {
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        assert_eq!(heap.quarantined_subheaps(), vec![0]);
        assert!(heap.alloc(64).is_err(), "the only sub-heap is frozen");
        heap.close().unwrap();
    }

    let report = poseidon::repair(&dev).unwrap();
    assert!(report.damage_found());
    assert!(report.lines_scrubbed >= 2);

    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    assert!(heap.quarantined_subheaps().is_empty(), "repair must lift the quarantine");
    assert_eq!(heap.root().unwrap(), keep);
    let mut buf = [0u8; 15];
    dev.read(keep_raw, &mut buf).unwrap();
    assert_eq!(&buf, b"survives repair");
    let p = heap.alloc(64).unwrap();
    heap.free(p).unwrap();
    heap.free(keep).unwrap();
}

#[test]
fn crash_during_recovery_with_poison_never_panics() {
    // Interleave all three fault dimensions: a crash mid-workload, poison
    // on recently written lines, and further crashes *during* recovery.
    // Every attempt must end in Ok or a typed error — never a panic.
    for seed in 0..30u64 {
        let dev = faulty_device();
        {
            let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            let mut live = Vec::new();
            dev.arm_crash_after(40 + seed * 13);
            dev.arm_poison_after(20 + seed * 7, seed);
            for i in 0..40u64 {
                match heap.alloc(32 + i * 96) {
                    Ok(p) => live.push(p),
                    Err(PoseidonError::Device(_)) => break,
                    Err(_) => {}
                }
                if i % 3 == 0 && !live.is_empty() {
                    let p = live.swap_remove(0);
                    if matches!(heap.free(p), Err(PoseidonError::Device(_))) {
                        break;
                    }
                }
            }
            dev.disarm_crash();
            dev.disarm_poison();
        }
        dev.simulate_crash(CrashMode::Adversarial, seed);

        let mut attempts = 0u64;
        loop {
            attempts += 1;
            dev.arm_crash_after(attempts * 7);
            match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
                Ok(heap) => {
                    dev.disarm_crash();
                    heap.audit().expect("audit after interrupted poisoned recoveries");
                    break;
                }
                Err(PoseidonError::MediaError { .. }) => {
                    // Typed, clean failure (poison landed on the
                    // superblock): acceptable terminal outcome.
                    dev.disarm_crash();
                    break;
                }
                Err(_) => dev.simulate_crash(CrashMode::Strict, attempts),
            }
            assert!(attempts < 1000, "recovery never converged at seed {seed}");
        }
    }
}
