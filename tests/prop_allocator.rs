//! Property-based tests: random operation sequences against a shadow
//! model, with structural audits and crash/recovery invariants.

use std::collections::HashMap;
use std::sync::Arc;

use platform::check::{check, Config, Gen};
use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes.
    Alloc(u64),
    /// Free the `index % live`-th live block.
    Free(usize),
    /// Free a forged pointer at an arbitrary offset (must be rejected or
    /// hit a real block boundary).
    BogusFree(u64),
    /// Transactional allocation; bool = commit.
    TxAlloc(u64, bool),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.weighted(&[4, 4, 1, 1]) {
        0 => Op::Alloc(g.u64(1..8192)),
        1 => Op::Free(g.any_usize()),
        2 => Op::BogusFree(g.u64(0..1 << 20)),
        _ => Op::TxAlloc(g.u64(1..1024), g.bool()),
    }
}

fn heap() -> (Arc<PmemDevice>, PoseidonHeap) {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    (dev, heap)
}

/// Applies ops, maintaining a shadow of live blocks; returns live set.
fn apply_ops(heap: &PoseidonHeap, ops: &[Op]) -> HashMap<NvmPtr, u64> {
    let mut live: Vec<(NvmPtr, u64)> = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(size) => match heap.alloc(*size) {
                Ok(p) => live.push((p, *size)),
                Err(PoseidonError::NoSpace { .. }) | Err(PoseidonError::TableFull) => {}
                Err(e) => panic!("alloc({size}) failed unexpectedly: {e}"),
            },
            Op::Free(index) => {
                if !live.is_empty() {
                    let (p, _) = live.swap_remove(index % live.len());
                    heap.free(p).expect("freeing a live block must succeed");
                }
            }
            Op::BogusFree(offset) => {
                let forged = NvmPtr::new(heap.heap_id(), 0, *offset);
                match heap.free(forged) {
                    // Rejection is the expected outcome...
                    Err(PoseidonError::InvalidFree { .. }) | Err(PoseidonError::DoubleFree { .. }) => {}
                    // ...unless the forged pointer happened to name a real
                    // live block, in which case the free is legitimate.
                    Ok(()) => {
                        let was_live =
                            live.iter().position(|(p, _)| p.subheap() == 0 && p.offset() == *offset);
                        let index = was_live.expect("free succeeded for a non-live offset");
                        live.swap_remove(index);
                    }
                    Err(e) => panic!("bogus free failed oddly: {e}"),
                }
            }
            Op::TxAlloc(size, commit) => match heap.tx_alloc(*size, *commit) {
                Ok(p) => {
                    if *commit {
                        live.push((p, *size));
                    } else {
                        // Leave uncommitted; a later commit or abort picks
                        // it up. To keep the shadow simple, commit now.
                        match heap.tx_alloc(32, true) {
                            Ok(p2) => {
                                live.push((p, *size));
                                live.push((p2, 32));
                            }
                            Err(_) => {
                                let _ = heap.tx_abort();
                            }
                        }
                    }
                }
                Err(PoseidonError::NoSpace { .. }) | Err(PoseidonError::TableFull) => {
                    let _ = heap.tx_abort();
                }
                Err(e) => panic!("tx_alloc failed unexpectedly: {e}"),
            },
        }
    }
    live.into_iter().collect()
}

#[test]
fn audit_holds_under_random_op_sequences() {
    check("audit_holds_under_random_op_sequences", Config::cases(48), |g| {
        let ops = g.vec(1..120, gen_op);
        let (_dev, heap) = heap();
        let live = apply_ops(&heap, &ops);
        let audits = heap.audit().expect("audit");
        // Every live pointer is distinct and within bounds; allocated
        // byte totals cover at least the live set.
        let allocated: u64 = audits.iter().map(|(_, a)| a.alloc_bytes).sum();
        let min_needed: u64 = live.values().map(|s| s.max(&32).next_power_of_two()).sum();
        assert!(allocated >= min_needed, "allocated {allocated} < shadow {min_needed}");
        // Free them all; audit must return to zero allocated.
        for (p, _) in live {
            heap.free(p).expect("final free");
        }
        let audits = heap.audit().expect("audit after drain");
        for (_, a) in audits {
            assert_eq!(a.alloc_bytes, 0);
        }
    });
}

#[test]
fn no_two_live_blocks_overlap() {
    check("no_two_live_blocks_overlap", Config::cases(48), |g| {
        let ops = g.vec(1..100, gen_op);
        let (_dev, heap) = heap();
        let live = apply_ops(&heap, &ops);
        let mut ranges: Vec<(u64, u64)> = live
            .iter()
            .map(|(p, s)| (heap.raw_offset(*p).expect("raw"), s.max(&32).next_power_of_two()))
            .collect();
        ranges.sort_unstable();
        for window in ranges.windows(2) {
            assert!(window[0].0 + window[0].1 <= window[1].0, "overlap: {:?} and {:?}", window[0], window[1]);
        }
    });
}

#[test]
fn crash_at_random_point_recovers() {
    check("crash_at_random_point_recovers", Config::cases(48), |g| {
        let ops = g.vec(1..60, gen_op);
        let crash_at = g.u64(0..600);
        let adversarial = g.bool();
        let seed = g.any_u64();
        let (dev, heap) = heap();
        dev.arm_crash_after(crash_at);
        // Ops may fail mid-way once the device crashes; ignore outcomes.
        for op in &ops {
            let r: Result<(), PoseidonError> = (|| {
                match op {
                    Op::Alloc(s) => {
                        let _ = heap.alloc(*s)?;
                    }
                    Op::Free(_) => {}
                    Op::BogusFree(o) => {
                        let _ = heap.free(NvmPtr::new(heap.heap_id(), 0, *o));
                    }
                    Op::TxAlloc(s, c) => {
                        let _ = heap.tx_alloc(*s, *c)?;
                    }
                }
                Ok(())
            })();
            if r.is_err() {
                break;
            }
        }
        dev.disarm_crash();
        drop(heap);
        let mode = if adversarial { CrashMode::Adversarial } else { CrashMode::Strict };
        dev.simulate_crash(mode, seed);
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).expect("recovery");
        heap.audit().expect("audit after crash recovery");
        // Heap remains usable.
        let p = heap.alloc(64).expect("post-recovery alloc");
        heap.free(p).expect("post-recovery free");
    });
}

#[test]
fn save_load_preserves_live_blocks() {
    check("save_load_preserves_live_blocks", Config::cases(48), |g| {
        let sizes = g.vec(1..40, |g| g.u64(1..4096));
        let dir = std::env::temp_dir().join(format!("poseidon-prop-{}-{}", std::process::id(), sizes.len()));
        let (dev, heap) = heap();
        let mut live = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let p = heap.alloc(*size).unwrap();
            let raw = heap.raw_offset(p).unwrap();
            dev.write_pod(raw, &(i as u64)).unwrap();
            dev.persist(raw, 8).unwrap();
            live.push((p, i as u64));
        }
        heap.set_root(live[0].0).unwrap();
        heap.close().unwrap();
        dev.save(&dir).unwrap();

        let dev2 = Arc::new(PmemDevice::load(&dir, DeviceConfig::new(0)).unwrap());
        std::fs::remove_file(&dir).unwrap();
        let heap2 = PoseidonHeap::load(dev2.clone(), HeapConfig::new()).unwrap();
        assert_eq!(heap2.root().unwrap(), live[0].0);
        for (p, tag) in live {
            let raw = heap2.raw_offset(p).unwrap();
            let stored: u64 = dev2.read_pod(raw).unwrap();
            assert_eq!(stored, tag);
            heap2.free(p).unwrap();
        }
        heap2.audit().unwrap();
    });
}
