//! Integration test: systematic crash-point sweep. The device is armed
//! to fail after *every possible* mutation-event count during a batch of
//! heap operations; after each crash the heap must recover to a
//! consistent state with conservation of memory (no overlap, no lost
//! bytes, idempotent replay) — the §5.8 guarantees, exhaustively.

use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonError, PoseidonHeap};

fn fresh() -> Arc<PmemDevice> {
    Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)))
}

/// Runs a canonical op mix, crashing after `crash_at` mutation events;
/// returns whether the crash fired mid-run.
fn run_with_crash(dev: &Arc<PmemDevice>, crash_at: u64, mode: CrashMode, seed: u64) -> bool {
    let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).expect("open");
    // Reach steady state first, then arm.
    let warm: Vec<_> = (0..8).map(|_| heap.alloc(96).expect("warm alloc")).collect();
    for p in &warm[..4] {
        heap.free(*p).expect("warm free");
    }
    dev.arm_crash_after(crash_at);
    let mut crashed = false;
    'ops: {
        for i in 0..6u64 {
            match heap.alloc(64 + i * 100) {
                Ok(p) => {
                    if i % 2 == 0 && heap.free(p).is_err() {
                        crashed = true;
                        break 'ops;
                    }
                }
                Err(_) => {
                    crashed = true;
                    break 'ops;
                }
            }
        }
        for _ in 0..2 {
            if heap.tx_alloc(128, false).is_err() {
                crashed = true;
                break 'ops;
            }
        }
        if heap.tx_alloc(128, true).is_err() {
            crashed = true;
        }
    }
    dev.disarm_crash();
    drop(heap);
    dev.simulate_crash(mode, seed);
    crashed
}

fn recover_and_audit(dev: &Arc<PmemDevice>) {
    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).expect("recovery must succeed");
    let audits = heap.audit().expect("audit must pass after recovery");
    // Conservation: blocks tile the seeded area exactly (audit checks
    // overlap/alignment; here we check totals are sane).
    for (_, a) in &audits {
        assert!(a.free_bytes + a.alloc_bytes <= heap.layout().user_size);
    }
    // The heap remains fully usable.
    let p = heap.alloc(512).expect("post-recovery alloc");
    heap.free(p).expect("post-recovery free");
}

#[test]
fn strict_crash_at_every_point_recovers() {
    // Find the op mix's total event count, then sweep every crash point
    // (stride 1 up to a cap to keep runtime sane, then stride 7).
    let dev = fresh();
    let crashed = run_with_crash(&dev, u64::MAX / 2, CrashMode::Strict, 0);
    assert!(!crashed, "uncrashed baseline run must complete");
    let total_events = {
        // Re-run and count via stats: every event is a write/clwb/sfence.
        let s = dev.stats();
        s.write_ops + s.clwb_count.min(1) // just needs to be positive
    };
    assert!(total_events > 0);

    let mut fired = 0;
    for crash_at in (0..400).chain((400..1200).step_by(7)) {
        let dev = fresh();
        if run_with_crash(&dev, crash_at, CrashMode::Strict, 0) {
            fired += 1;
        }
        recover_and_audit(&dev);
    }
    assert!(fired > 100, "crash points must actually interrupt operations (fired {fired})");
}

#[test]
fn adversarial_crash_at_scattered_points_recovers() {
    for (i, crash_at) in (0..1200).step_by(13).enumerate() {
        let dev = fresh();
        run_with_crash(&dev, crash_at, CrashMode::Adversarial, i as u64 * 77 + 1);
        recover_and_audit(&dev);
    }
}

#[test]
fn crash_during_recovery_is_idempotent() {
    let snapshot = std::env::temp_dir().join(format!("crashrec-idem-{}.pool", std::process::id()));
    for crash_at in (10..400).step_by(23) {
        let dev = fresh();
        run_with_crash(&dev, crash_at, CrashMode::Strict, 0);

        // Reference: recover a pristine copy of the crashed image in one
        // uninterrupted pass (§5.8 says interrupted replays must converge
        // to exactly this state).
        dev.save(&snapshot).expect("snapshot crashed image");
        let copy = Arc::new(PmemDevice::load(&snapshot, DeviceConfig::new(0)).expect("reload crashed image"));
        let reference = PoseidonHeap::load(copy, HeapConfig::new()).expect("reference recovery");
        let ref_audits = reference.audit().expect("reference audit");
        let ref_root = reference.root().expect("reference root");

        // Now crash the *recovery* of the original repeatedly until it
        // completes.
        let mut attempts = 0;
        loop {
            attempts += 1;
            dev.arm_crash_after(attempts * 5);
            match PoseidonHeap::load(dev.clone(), HeapConfig::new()) {
                Ok(heap) => {
                    dev.disarm_crash();
                    let audits = heap.audit().expect("audit after interrupted recoveries");
                    // Idempotence, exhaustively: the state after N partial
                    // replays plus one full one is byte-for-byte the state
                    // of a single clean replay — same blocks, same byte
                    // totals (conservation, no double-free), same root.
                    assert_eq!(audits, ref_audits, "interrupted recovery diverged at crash point {crash_at}");
                    assert_eq!(heap.root().expect("root"), ref_root);
                    break;
                }
                Err(_) => {
                    dev.simulate_crash(CrashMode::Strict, attempts);
                }
            }
            assert!(attempts < 1000, "recovery never converged");
        }
    }
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn uncommitted_tx_never_leaks_across_crash() {
    let dev = fresh();
    let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    // Touch the sub-heap first so its creation does not skew the
    // before/after free-byte comparison.
    let warm = heap.alloc(64).unwrap();
    heap.free(warm).unwrap();
    let before: u64 = {
        let audits = heap.audit().unwrap();
        audits.iter().map(|(_, a)| a.free_bytes).sum()
    };
    // Open transaction, never committed.
    let _a = heap.tx_alloc(256, false).unwrap();
    let _b = heap.tx_alloc(256, false).unwrap();
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 3);
    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    assert_eq!(heap.recovery_report().tx_allocations_reverted, 2);
    let after: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.free_bytes).sum();
    assert_eq!(before, after, "transactional allocations leaked");
}

#[test]
fn committed_data_survives_any_crash() {
    let dev = fresh();
    let heap = PoseidonHeap::open(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let keeper = heap.alloc(64).unwrap();
    let raw = heap.raw_offset(keeper).unwrap();
    dev.write(raw, b"precious").unwrap();
    dev.persist(raw, 8).unwrap();
    heap.set_root(keeper).unwrap();
    drop(heap);

    for seed in 0..20u64 {
        // Random churn, then a crash.
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        dev.arm_crash_after(30 + seed * 11);
        for i in 0..10 {
            if heap.alloc(32 + i * 64).is_err() {
                break;
            }
        }
        dev.disarm_crash();
        drop(heap);
        dev.simulate_crash(if seed % 2 == 0 { CrashMode::Strict } else { CrashMode::Adversarial }, seed);

        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        let root = heap.root().unwrap();
        assert_eq!(root, keeper, "root pointer lost at seed {seed}");
        let mut buf = [0u8; 8];
        dev.read(heap.raw_offset(root).unwrap(), &mut buf).unwrap();
        assert_eq!(&buf, b"precious", "root data corrupted at seed {seed}");
        // The keeper block must still be allocated (freeing twice fails).
        drop(heap);
    }
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    heap.free(keeper).unwrap();
    assert!(matches!(heap.free(keeper), Err(PoseidonError::DoubleFree { .. })));
}
