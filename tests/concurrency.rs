//! Concurrency stress: many threads, cross-thread frees, transactions,
//! and oversubscribed sub-heaps — the heap must stay consistent and no
//! allocation may ever be handed to two owners.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use platform::sync::Mutex;
use pmem::{DeviceConfig, NumaTopology, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonHeap};
use workloads::Xorshift;

fn stress(threads: usize, subheaps: u16, rounds: u64) {
    let dev = Arc::new(PmemDevice::new(
        DeviceConfig::bench(1 << 30).with_topology(NumaTopology::new(2, threads.max(2))),
    ));
    let heap =
        Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(subheaps)).unwrap());

    // A shared exchange: threads deposit pointers here for *other*
    // threads to free (§5.7's cross-thread free path).
    let exchange: Vec<Mutex<Vec<NvmPtr>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let ownership_claims = AtomicU64::new(0);

    platform::thread::scope(|scope| {
        for thread in 0..threads {
            let heap = heap.clone();
            let dev = dev.clone();
            let exchange = &exchange;
            let ownership_claims = &ownership_claims;
            scope.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                let mut rng = Xorshift::new(thread as u64 * 7919 + 13);
                let mut mine: Vec<(NvmPtr, u64)> = Vec::new();
                for round in 0..rounds {
                    match rng.below(10) {
                        0..=4 => {
                            // Allocate and stamp a unique owner tag.
                            let size = 32 + rng.below(2000);
                            if let Ok(p) = heap.alloc(size) {
                                let tag = ownership_claims.fetch_add(1, Ordering::Relaxed) + 1;
                                let raw = heap.raw_offset(p).unwrap();
                                dev.write_pod(raw, &tag).unwrap();
                                mine.push((p, tag));
                            }
                        }
                        5..=6 => {
                            // Verify + free one of ours.
                            if let Some((p, tag)) = mine.pop() {
                                let raw = heap.raw_offset(p).unwrap();
                                let stored: u64 = dev.read_pod(raw).unwrap();
                                assert_eq!(stored, tag, "another thread scribbled on a live block");
                                heap.free(p).unwrap();
                            }
                        }
                        7 => {
                            // Hand one over for a cross-thread free.
                            if let Some((p, _)) = mine.pop() {
                                exchange[rng.below(exchange.len() as u64) as usize].lock().push(p);
                            }
                        }
                        8 => {
                            // Free someone else's.
                            let donated = exchange[thread].lock().pop();
                            if let Some(p) = donated {
                                heap.free(p).unwrap();
                            }
                        }
                        _ => {
                            // A small transaction, committed or aborted.
                            if let (Ok(a), Ok(b)) = (heap.tx_alloc(64, false), heap.tx_alloc(64, false)) {
                                if round % 2 == 0 {
                                    let c = heap.tx_alloc(64, true).unwrap();
                                    heap.free(a).unwrap();
                                    heap.free(b).unwrap();
                                    heap.free(c).unwrap();
                                } else {
                                    heap.tx_abort().unwrap();
                                }
                            } else {
                                let _ = heap.tx_abort();
                            }
                        }
                    }
                }
                // Drain what's left.
                for (p, _) in mine {
                    heap.free(p).unwrap();
                }
            });
        }
    });

    // Drain the exchange and verify the heap is balanced and intact.
    for slot in &exchange {
        for p in slot.lock().drain(..) {
            heap.free(p).unwrap();
        }
    }
    for (sub, audit) in heap.audit().unwrap() {
        assert_eq!(audit.alloc_bytes, 0, "sub-heap {sub} leaked under concurrency");
    }
}

#[test]
fn threads_matching_subheaps() {
    stress(4, 4, 400);
}

#[test]
fn threads_oversubscribing_subheaps() {
    // More threads than sub-heaps: threads share sub-heap locks.
    stress(8, 2, 250);
}

#[test]
fn single_subheap_total_contention() {
    stress(6, 1, 200);
}

#[test]
fn lock_profile_shows_no_cross_subheap_serialisation() {
    // Fixed-seed mixed alloc/free/tx stress with every thread pinned to
    // its own CPU (hence its own sub-heap), followed by a structural
    // audit and a lock-profile check: the per-CPU design means the only
    // shared lock is the superblock's, taken once per sub-heap creation —
    // operations must never serialise across sub-heaps.
    const THREADS: usize = 4;
    const ROUNDS: u64 = 300;
    let dev =
        Arc::new(PmemDevice::new(DeviceConfig::bench(1 << 30).with_topology(NumaTopology::new(2, THREADS))));
    let heap =
        Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(THREADS as u16)).unwrap());

    platform::thread::scope(|scope| {
        for thread in 0..THREADS {
            let heap = heap.clone();
            scope.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                let mut rng = Xorshift::new(thread as u64 * 6271 + 5);
                let mut mine: Vec<NvmPtr> = Vec::new();
                for _ in 0..ROUNDS {
                    match rng.below(4) {
                        0..=1 => {
                            if let Ok(p) = heap.alloc(32 + rng.below(1024)) {
                                mine.push(p);
                            }
                        }
                        2 => {
                            if let Some(p) = mine.pop() {
                                heap.free(p).unwrap();
                            }
                        }
                        _ => {
                            let a = heap.tx_alloc(64, false).unwrap();
                            let b = heap.tx_alloc(64, true).unwrap();
                            mine.push(a);
                            mine.push(b);
                        }
                    }
                }
                for p in mine {
                    heap.free(p).unwrap();
                }
            });
        }
    });

    // Capture the profile before the audit (the audit itself takes every
    // sub-heap lock once more).
    let profile = heap.contention_profile();
    for (sub, audit) in heap.audit().unwrap() {
        assert_eq!(audit.alloc_bytes, 0, "sub-heap {sub} leaked under concurrency");
    }

    let sb = profile.iter().find(|p| p.name == "superblock").unwrap();
    assert!(
        sb.acquisitions <= 2 * THREADS as u64,
        "superblock lock taken {} times — more than sub-heap creation needs",
        sb.acquisitions
    );
    for thread in 0..THREADS {
        let lock = profile.iter().find(|p| p.name == format!("subheap[{thread}]")).unwrap();
        let cache = lock.cache.expect("sub-heap profiles carry cache stats");
        // Every thread drove its own sub-heap (pinning worked)...
        assert!(
            cache.hits + cache.misses >= ROUNDS / 4,
            "sub-heap {thread} barely used: {} cached ops",
            cache.hits + cache.misses
        );
        // ...the magazine layer absorbed nearly all of its traffic without
        // the lock (the tentpole's acceptance bar: >90% hit rate under a
        // pinned steady-state mix)...
        assert!(
            cache.hit_rate() > 0.90,
            "sub-heap {thread} cache hit rate {:.3} below 0.90 ({cache:?})",
            cache.hit_rate()
        );
        // ...and nothing funnelled through one sub-heap: the busiest lock
        // stays within the work one thread can generate on its own (each
        // round costs at most 3 operations).
        assert!(
            lock.acquisitions <= 3 * ROUNDS + 8,
            "sub-heap {thread} serialised foreign work: {} acquisitions",
            lock.acquisitions
        );
    }
}

#[test]
fn tx_isolation_between_threads() {
    // Two threads run interleaved transactions on the same sub-heap; the
    // per-thread micro-log pinning must keep their commits independent.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
    let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap());
    platform::thread::scope(|scope| {
        for thread in 0..2 {
            let heap = heap.clone();
            scope.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                for i in 0..200u64 {
                    let a = heap.tx_alloc(32 + i % 128, false).unwrap();
                    let b = heap.tx_alloc(32, true).unwrap();
                    heap.free(a).unwrap();
                    heap.free(b).unwrap();
                }
            });
        }
    });
    for (_, audit) in heap.audit().unwrap() {
        assert_eq!(audit.alloc_bytes, 0);
    }
}
