//! Integration tests for online pool growth: versioned layout epochs,
//! dynamic sub-heap materialisation, huge-band extension, crash
//! atomicity of the epoch commit, and the v1→v2 format migration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonError, PoseidonHeap};

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

/// The acceptance scenario: a 256 MiB pool grows online to 4 GiB in
/// steps while worker threads allocate and free throughout. Every step
/// must be acknowledged, allocations must keep succeeding during the
/// growths, and the final geometry must audit clean with more sub-heaps
/// than it was created with.
#[test]
fn pool_grows_online_to_4gib_while_serving_allocations() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 * MIB).growable_to(4 * GIB)));
    let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(4)).unwrap());
    let created_subheaps = heap.layout().num_subheaps();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            let heap = Arc::clone(&heap);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut live = Vec::new();
                let mut allocated = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match heap.alloc(64 + (worker as u64) * 48) {
                        Ok(p) => {
                            allocated += 1;
                            live.push(p);
                        }
                        Err(e) => panic!("worker {worker}: alloc failed during growth: {e}"),
                    }
                    if live.len() >= 64 {
                        for p in live.drain(..) {
                            heap.free(p).unwrap();
                        }
                    }
                }
                for p in live {
                    heap.free(p).unwrap();
                }
                allocated
            })
        })
        .collect();

    // Grow in eight steps of 480 MiB, each acknowledged while the
    // workers hammer the allocator.
    let mut capacity = 256 * MIB;
    let mut epochs = 1;
    while capacity < 4 * GIB {
        capacity = (capacity + 480 * MIB).min(4 * GIB);
        let report = heap.grow(capacity).unwrap();
        epochs += 1;
        assert_eq!(report.new_capacity, capacity);
        assert_eq!(report.epoch, epochs - 1);
        assert_eq!(heap.layout().capacity(), capacity);
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total > 0, "workers made no progress");

    assert_eq!(heap.layout().capacity(), 4 * GIB);
    assert_eq!(heap.layout().epoch_count(), epochs);
    assert!(heap.layout().num_subheaps() > created_subheaps, "growing 16x materialised no new sub-heaps");
    heap.audit().unwrap();
    heap.huge_audit().unwrap();

    // The grown geometry is durable: reload and check it survived.
    let Ok(heap_owned) = Arc::try_unwrap(heap) else { panic!("workers still hold the heap") };
    heap_owned.close().unwrap();
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert_eq!(heap.layout().capacity(), 4 * GIB);
    assert_eq!(heap.layout().epoch_count(), epochs);
    heap.audit().unwrap();
}

/// A full home sub-heap spills into sub-heaps materialised by a grow:
/// the pool serves more data than the creation geometry could hold.
#[test]
fn grow_materialises_subheaps_that_absorb_spill() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(24 * MIB).growable_to(96 * MIB)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap();
    let report = heap.grow(96 * MIB).unwrap();
    assert!(report.new_subheaps >= 1, "72 MiB of growth fits at least one whole sub-heap");
    assert_eq!(heap.layout().num_subheaps(), 1 + report.new_subheaps);

    // Fill past what the single creation sub-heap can hold; the NoSpace
    // failover must route the overflow into the grown sub-heaps.
    let block = 512 * 1024;
    let mut live = Vec::new();
    while (live.len() as u64) * block < 2 * heap.layout().user_size {
        live.push(heap.alloc(block).unwrap());
    }
    assert!(live.iter().any(|p| p.subheap() >= 1), "no allocation landed in a grow-materialised sub-heap");
    heap.audit().unwrap();
    for p in live {
        heap.free(p).unwrap();
    }
}

/// Satellite regression: an allocation that fails `TooLarge` succeeds
/// after `grow()`, and the error's `huge_remaining` reflects the grown
/// capacity when the request still does not fit.
#[test]
fn too_large_allocation_succeeds_after_grow() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 * MIB).growable_to(256 * MIB)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(2)).unwrap();
    let initial_huge = heap.layout().huge_data_size();
    assert!(initial_huge > 0, "64 MiB pools carve a huge region");

    let request = initial_huge + 4 * MIB;
    let before = match heap.alloc(request) {
        Err(PoseidonError::TooLarge { requested, huge_remaining, .. }) => {
            assert_eq!(requested, request);
            huge_remaining
        }
        other => panic!("expected TooLarge before the grow, got {other:?}"),
    };
    assert!(before <= initial_huge);

    // A small growth extends only the huge band; the new band alone must
    // absorb the request (bands are hard coalesce boundaries).
    let report = heap.grow(64 * MIB + request.next_multiple_of(MIB) + MIB).unwrap();
    assert!(report.huge_bytes_added >= request, "growth added {} huge bytes", report.huge_bytes_added);
    let p = heap.alloc(request).expect("previously-TooLarge allocation fits after grow");

    // Exhaust it again: huge_remaining now reflects the post-grow band.
    match heap.alloc(heap.layout().huge_data_size()) {
        Err(PoseidonError::TooLarge { huge_remaining, .. }) => {
            assert!(huge_remaining < report.huge_bytes_added)
        }
        other => panic!("expected TooLarge after refilling, got {other:?}"),
    }
    heap.free(p).unwrap();
    heap.huge_audit().unwrap().expect("huge region present");
    heap.audit().unwrap();
}

/// Growth steps too small to host a sub-heap or a band page are typed
/// errors and leave the layout untouched.
#[test]
fn degenerate_growths_are_rejected() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 * MIB).growable_to(128 * MIB)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(2)).unwrap();
    assert!(matches!(heap.grow(64 * MIB), Err(PoseidonError::BadGeometry(_))));
    assert!(matches!(heap.grow(32 * MIB), Err(PoseidonError::BadGeometry(_))));
    assert!(matches!(heap.grow(64 * MIB + 512), Err(PoseidonError::BadGeometry(_))));
    assert_eq!(heap.layout().epoch_count(), 1);
    assert_eq!(heap.layout().capacity(), 64 * MIB);
}

/// Crash atomicity of the epoch commit: sweep the crash point over every
/// mutation event of a grow. After each power cycle the pool must sit
/// entirely on the old layout or entirely on the new one — matching
/// whether the grow was acknowledged — and must audit clean and serve.
#[test]
fn crash_at_any_point_during_grow_recovers_to_old_or_new_epoch() {
    let base = 24 * MIB;
    let target = 48 * MIB;
    let mut acknowledged = false;
    for arm in 1..2000u64 {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(base).growable_to(64 * MIB)));
        let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
        let keep = heap.alloc(4096).unwrap();
        heap.set_root(keep).unwrap();

        dev.arm_crash_after(arm);
        let grew = match heap.grow(target) {
            Ok(report) => {
                assert_eq!(report.new_capacity, target);
                true
            }
            Err(PoseidonError::Device(_)) => false,
            Err(e) => panic!("arm point {arm}: unexpected grow error {e}"),
        };
        dev.disarm_crash();
        let crashed = !grew;
        drop(heap);
        dev.simulate_crash(CrashMode::Adversarial, arm);

        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        let epochs = heap.layout().epoch_count();
        match (grew, epochs) {
            // Acknowledged: the new epoch must have survived.
            (true, 2) => assert_eq!(heap.layout().capacity(), target),
            (true, n) => panic!("arm point {arm}: acknowledged grow lost, {n} epochs survived"),
            // Torn: either fully rolled back or fully committed.
            (false, 1) => assert_eq!(heap.layout().capacity(), base),
            (false, 2) => assert_eq!(heap.layout().capacity(), target),
            (false, n) => panic!("arm point {arm}: torn grow left {n} epochs"),
        }
        assert_eq!(heap.root().unwrap(), keep, "root lost at arm point {arm}");
        heap.audit().unwrap();
        heap.huge_audit().unwrap();
        let p = heap.alloc(64).unwrap();
        heap.free(p).unwrap();

        if grew && !crashed {
            // The whole grow ran without tripping the crash countdown:
            // later arm points are identical. The sweep covered every
            // mutation event of the grow.
            acknowledged = true;
            break;
        }
    }
    assert!(acknowledged, "sweep never reached a crash-free grow in 2000 events");
}

/// Satellite: reopen across format versions. A freshly created pool is
/// rewritten into the version-1 byte image (no epoch chain), saved,
/// reloaded from the file, and reopened: the migration must synthesise
/// epoch 0, preserve the root object, and leave a pool that can grow.
#[test]
fn v1_image_reopens_migrates_and_grows() {
    let path = std::env::temp_dir().join(format!("poseidon-growth-v1-{}.pool", std::process::id()));
    let path = path.to_str().unwrap().to_string();

    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 * MIB)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let root = heap.alloc(1024).unwrap();
    heap.set_root(root).unwrap();
    heap.close().unwrap();

    // Downgrade the image to the v1 byte format and take it through a
    // save/load cycle, like a pool file written by the previous release.
    poseidon::fuzz::downgrade_to_v1(&dev).unwrap();
    dev.save(&path).unwrap();
    drop(dev);

    let dev = Arc::new(PmemDevice::load(&path, DeviceConfig::new(0).growable_to(128 * MIB)).unwrap());
    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    assert_eq!(heap.layout().epoch_count(), 1, "migration synthesises exactly epoch 0");
    assert_eq!(heap.root().unwrap(), root);
    assert_eq!(heap.block_size(root).unwrap(), 1024);
    heap.audit().unwrap();

    // The migrated pool is a full v2 citizen: it grows.
    let report = heap.grow(128 * MIB).unwrap();
    assert_eq!(report.epoch, 1);
    heap.close().unwrap();

    // And the migrated + grown image reopens cleanly (now natively v2).
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert_eq!(heap.layout().epoch_count(), 2);
    assert_eq!(heap.layout().capacity(), 128 * MIB);
    assert_eq!(heap.root().unwrap(), root);
    heap.audit().unwrap();

    let _ = std::fs::remove_file(&path);
}

/// A grown pool's epoch chain round-trips through `repair` untouched,
/// and a torn trailing epoch record (superblock undo log lost) is
/// conservatively truncated back to the last committed geometry.
#[test]
fn repair_preserves_committed_epochs() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(24 * MIB).growable_to(96 * MIB)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    heap.grow(48 * MIB).unwrap();
    heap.grow(96 * MIB).unwrap();
    let keep = heap.alloc(4096).unwrap();
    heap.set_root(keep).unwrap();
    heap.close().unwrap();

    let report = poseidon::repair(&dev).unwrap();
    assert_eq!(report.epochs_truncated, 0, "repair must not drop committed epochs");
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert_eq!(heap.layout().epoch_count(), 3);
    assert_eq!(heap.layout().capacity(), 96 * MIB);
    assert_eq!(heap.root().unwrap(), keep);
    heap.audit().unwrap();
}
