//! Robustness tests: a corrupted or hostile pool image must never panic
//! the loader — every failure mode is a clean `Err`. Also verifies the
//! §5.6 claim that unused metadata is returned to the device. The
//! `online_` tests cover live self-healing: quarantine racing the cached
//! front-end, and bulk media faults injected under concurrent load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use platform::check::{check, Config};
use platform::sync::Mutex;
use pmem::{CrashMode, DeviceConfig, NumaTopology, PmemDevice};
use poseidon::{HeapConfig, NvmPtr, PoseidonError, PoseidonHeap};
use workloads::Xorshift;

fn build_pool() -> Arc<PmemDevice> {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let mut live = Vec::new();
    for i in 0..50u64 {
        live.push(heap.alloc(32 + i * 17).unwrap());
    }
    for p in live.iter().step_by(2) {
        heap.free(*p).unwrap();
    }
    heap.set_root(live[1]).unwrap();
    heap.close().unwrap();
    dev
}

/// Loading may fail (`Err`) or succeed; succeeding implies the audit ran
/// or failed cleanly — nothing may panic.
fn try_load(dev: Arc<PmemDevice>) {
    if let Ok(heap) = PoseidonHeap::load(dev, HeapConfig::new()) {
        let _ = heap.audit();
        let _ = heap.alloc(64);
        let _ = heap.root();
    }
}

#[test]
fn byte_flips_in_metadata_never_panic() {
    check("byte_flips_in_metadata_never_panic", Config::cases(24), |g| {
        let flips = g.vec(1..24, |g| (g.u64(0..4 << 20), g.any_u8()));
        let dev = build_pool();
        // The attacker/bit-rot writes bypass MPK (simulating at-rest
        // corruption of the pool file).
        let raw = PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false));
        // Copy the image across (reads are unprotected).
        let mut buf = vec![0u8; 1 << 20];
        let mut off = 0;
        while off < dev.capacity() {
            let len = buf.len().min((dev.capacity() - off) as usize);
            dev.read(off, &mut buf[..len]).unwrap();
            raw.write(off, &buf[..len]).unwrap();
            off += len as u64;
        }
        for (offset, value) in flips {
            raw.write(offset, &[value]).unwrap();
        }
        try_load(Arc::new(raw));
    });
}

#[test]
fn log_area_corruption_never_panics() {
    check("log_area_corruption_never_panics", Config::cases(24), |g| {
        let flips = g.vec(1..16, |g| (g.u64(0..0x12000), g.any_u8()));
        // Target the sub-heap 0 header/log area specifically (the part
        // recovery parses), after an interrupted operation.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false)));
        {
            let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            let _ = heap.alloc(4096).unwrap();
            dev.arm_crash_after(12);
            let _ = heap.alloc(64);
            dev.disarm_crash();
        }
        dev.simulate_crash(pmem::CrashMode::Strict, 5);
        let meta0 = 64 * 1024u64; // SB_REGION_SIZE
        for (offset, value) in flips {
            dev.write(meta0 + offset, &[value]).unwrap();
        }
        try_load(dev);
    });
}

#[test]
fn undo_and_micro_log_byte_flips_never_panic() {
    check("undo_and_micro_log_byte_flips_never_panic", Config::cases(32), |g| {
        // Target the log regions specifically: the sub-heap undo log lives
        // at meta + [0x1000, 0x11000) and the micro log at
        // meta + [0x11000, 0x15000) — the exact bytes recovery parses and
        // replays. Whole-pool sampling (above) rarely lands here.
        let flips = g.vec(1..16, |g| (g.u64(0x1000..0x15000), g.any_u8()));
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false)));
        let meta_size;
        {
            let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            meta_size = heap.layout().meta_size;
            // Leave both an open transaction and an interrupted operation
            // so the logs are non-empty when the flips land.
            let _ = heap.tx_alloc(128, false).unwrap();
            dev.arm_crash_after(10);
            let _ = heap.alloc(64);
            dev.disarm_crash();
        }
        dev.simulate_crash(pmem::CrashMode::Strict, 7);
        let sb_region = 64 * 1024u64; // SB_REGION_SIZE
        for (offset, value) in flips {
            for sub in 0..2u64 {
                dev.write(sb_region + sub * meta_size + offset, &[value]).unwrap();
            }
        }
        try_load(dev);
    });
}

#[test]
fn unused_hash_levels_are_punched_back() {
    // §5.6: grow the table by allocating a dense population of minimum-
    // size blocks, then free + defragment; the emptied upper levels must
    // be returned to the device (resident bytes drop).
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();

    let mut live = Vec::new();
    while let Ok(p) = heap.alloc(32) {
        live.push(p);
        if live.len() >= 12_000 {
            break;
        }
    }
    let grown = heap.audit().unwrap()[0].1.active_levels;
    assert!(grown > 1, "table never grew (got {} blocks)", live.len());
    let resident_peak = dev.resident_bytes();

    for p in live {
        heap.free(p).unwrap();
    }
    let merges = heap.defragment().unwrap();
    assert!(merges > 0);
    let audit = heap.audit().unwrap()[0].1;
    assert_eq!(audit.active_levels, 1, "upper levels not deactivated");
    // The punched levels are zero-filled and their fully-covered backing
    // chunks returned (for this table size the levels are smaller than a
    // backing chunk, so we assert no growth here; full dematerialisation
    // is covered by pmem's punch_hole tests at chunk scale).
    assert!(
        dev.resident_bytes() <= resident_peak,
        "defragmentation grew resident memory: {} -> {}",
        resident_peak,
        dev.resident_bytes()
    );
    // The heap can serve a maximal allocation again.
    let big = heap.alloc(heap.layout().max_alloc()).unwrap();
    heap.free(big).unwrap();
}

/// Worker threads hammer the lock-free cached front-end while another
/// thread poisons their home sub-heap's metadata and drives the scrubber
/// until it condemns the unit. Nothing may panic or tear: workers see
/// typed errors or transparent failover, the cache ends with no block
/// homed on the condemned sub-heap, and every surviving pointer is still
/// accounted for — resolvable, or claimed inside the quarantined unit,
/// never unknown to the heap.
#[test]
fn online_quarantine_races_cached_frontend() {
    const THREADS: usize = 4;
    let dev = Arc::new(PmemDevice::new(
        DeviceConfig::bench(256 << 20).with_topology(NumaTopology::new(2, THREADS)),
    ));
    let heap =
        Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(THREADS as u16)).unwrap());
    // Materialise every sub-heap up front (creation is lazy, on first
    // use): the race below must exercise quarantine of a *live* unit,
    // not creation-vs-poison.
    for cpu in 0..THREADS {
        let _pin = pmem::numa::CpuPinGuard::pin(cpu);
        let p = heap.alloc(64).unwrap();
        heap.free(p).unwrap();
    }
    let stop = AtomicBool::new(false);
    let survivors: Vec<Mutex<Vec<NvmPtr>>> = (0..THREADS).map(|_| Mutex::new(Vec::new())).collect();

    platform::thread::scope(|scope| {
        for thread in 0..THREADS {
            let heap = heap.clone();
            let stop = &stop;
            let survivors = &survivors;
            scope.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                let mut rng = Xorshift::new(thread as u64 * 6151 + 3);
                let mut mine: Vec<NvmPtr> = Vec::new();
                // Bounded rounds (not `loop`): the scope joins these
                // threads even if the driver below panics, so they must
                // always terminate on their own.
                for round in 0..50_000u32 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if round % 128 == 0 {
                        std::thread::yield_now();
                    }
                    if rng.below(3) < 2 {
                        match heap.alloc(64 + rng.below(192)) {
                            Ok(p) => mine.push(p),
                            // Typed degradations only — never a panic.
                            Err(PoseidonError::SubheapQuarantined { .. })
                            | Err(PoseidonError::MediaError { .. })
                            | Err(PoseidonError::AllFailed { .. })
                            | Err(PoseidonError::NoSpace { .. }) => {}
                            Err(e) => panic!("alloc under live quarantine: {e:?}"),
                        }
                    } else if let Some(p) = mine.pop() {
                        match heap.free(p) {
                            Ok(()) => {}
                            // The block's sub-heap was condemned while the
                            // block was checked out: it stays claimed
                            // inside the quarantined unit. Keep it for the
                            // accounting pass below.
                            Err(PoseidonError::SubheapQuarantined { .. })
                            | Err(PoseidonError::MediaError { .. }) => {
                                survivors[thread].lock().push(p);
                            }
                            Err(e) => panic!("free under live quarantine: {e:?}"),
                        }
                    }
                }
                survivors[thread].lock().extend(mine);
            });
        }

        // Let the workers warm their magazines, then poison sub-heap 0's
        // metadata and drive the scrubber until the unit is condemned
        // (a worker may trip the fault first — both paths are valid).
        for _ in 0..50 {
            std::thread::yield_now();
        }
        dev.poison(heap.layout().meta_base(0), 1).unwrap();
        let mut steps = 0u32;
        while heap.health().quarantined_subheaps == 0 {
            heap.scrub_step(2).expect("scrub step under live load");
            std::thread::yield_now();
            steps += 1;
            assert!(steps < 10_000, "scrubber never condemned the poisoned sub-heap");
        }
        // Let the workers run against the condemned unit for a while,
        // with the scrubber still ticking alongside them.
        for _ in 0..200 {
            heap.scrub_step(1).expect("scrub step after condemnation");
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let frozen = heap.quarantined_subheaps();
    assert!(frozen.contains(&0), "poisoned sub-heap not quarantined: {frozen:?}");

    // No cache-managed block may be homed on a condemned sub-heap.
    for (sub, offset) in heap.cache_snapshot() {
        assert!(!frozen.contains(&sub), "cached block {offset:#x} survives on condemned sub {sub}");
    }

    // Failover: allocation still succeeds from the condemned home CPU.
    pmem::numa::set_current_cpu(0);
    let p = heap.alloc(64).expect("failover allocation from condemned home CPU");
    heap.free(p).unwrap();

    // Every surviving pointer is resolvable or inside the quarantined
    // unit — an `InvalidFree` here would mean the heap lost a live block.
    for bucket in &survivors {
        for p in bucket.lock().drain(..) {
            match heap.block_size(p) {
                Ok(_) => heap.free(p).unwrap(),
                Err(PoseidonError::SubheapQuarantined { .. }) => {}
                Err(e) => panic!("live block lost under quarantine: {e:?}"),
            }
        }
    }
    heap.audit().unwrap();
}

/// Acceptance sweep for the self-healing tentpole: ≥ 50 live media faults
/// (metadata lines on a strict subset of sub-heaps, user-data lines on
/// every sub-heap) injected under concurrent allocation load. The heap
/// must end with the damaged units quarantined, allocation still served,
/// a clean audit — and the verdicts must survive crash + recovery.
#[test]
fn online_fifty_live_faults_heal_under_load() {
    const THREADS: usize = 4;
    // Crash tracking stays on (the default): the sweep ends with a
    // simulated power loss, which needs the tracked write sets.
    let dev =
        Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20).with_topology(NumaTopology::new(2, THREADS))));
    let heap =
        Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(THREADS as u16)).unwrap());
    // Materialise every sub-heap before the faults start flying.
    for cpu in 0..THREADS {
        let _pin = pmem::numa::CpuPinGuard::pin(cpu);
        let p = heap.alloc(64).unwrap();
        heap.free(p).unwrap();
    }
    let stop = AtomicBool::new(false);

    let mut faults = 0u32;
    let mut promoted_blocks = 0u64;
    platform::thread::scope(|scope| {
        for thread in 0..THREADS {
            let heap = heap.clone();
            let stop = &stop;
            scope.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                let mut rng = Xorshift::new(thread as u64 * 2741 + 11);
                let mut mine: Vec<NvmPtr> = Vec::new();
                for round in 0..50_000u32 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if round % 128 == 0 {
                        std::thread::yield_now();
                    }
                    if mine.len() < 64 && rng.below(3) < 2 {
                        match heap.alloc(32 + rng.below(480)) {
                            Ok(p) => mine.push(p),
                            Err(PoseidonError::SubheapQuarantined { .. })
                            | Err(PoseidonError::MediaError { .. })
                            | Err(PoseidonError::AllFailed { .. })
                            | Err(PoseidonError::NoSpace { .. }) => {}
                            Err(e) => panic!("alloc under fault sweep: {e:?}"),
                        }
                    } else if let Some(p) = mine.pop() {
                        match heap.free(p) {
                            Ok(())
                            | Err(PoseidonError::SubheapQuarantined { .. })
                            | Err(PoseidonError::MediaError { .. }) => {}
                            Err(e) => panic!("free under fault sweep: {e:?}"),
                        }
                    }
                }
            });
        }

        let layout = heap.layout();
        // Metadata faults on sub-heaps 0 and 1 only — 2 and 3 must stay
        // healthy so failover always has somewhere to land.
        for sub in 0..2u16 {
            dev.poison(layout.meta_base(sub), 1).unwrap();
            faults += 1;
        }
        // User-data faults on every sub-heap, spread across the low user
        // region where the buddy free lists (and the cache's withdrawn
        // blocks) live; interleave scrubber steps so promotion happens
        // concurrently with the injection, under full load.
        for wave in 0..13u64 {
            for sub in 0..THREADS as u16 {
                dev.poison(layout.user_base(sub) + wave * 8192, 1).unwrap();
                faults += 1;
            }
            let step = heap.scrub_step(THREADS + 1).expect("scrub step mid-sweep");
            promoted_blocks += step.blocks_quarantined;
            std::thread::yield_now();
        }
        // Two more full passes so every unit is examined after the last
        // injection wave.
        for _ in 0..2 {
            let step = heap.scrub_step(THREADS + 1).expect("final scrub pass");
            promoted_blocks += step.blocks_quarantined;
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(faults >= 50, "sweep injected only {faults} faults");
    let frozen = heap.quarantined_subheaps();
    assert!(frozen.contains(&0) && frozen.contains(&1), "metadata-poisoned subs not condemned: {frozen:?}");
    assert!(!frozen.contains(&2) && !frozen.contains(&3), "healthy subs condemned: {frozen:?}");
    assert!(promoted_blocks > 0, "scrubber promoted no poisoned free blocks");
    let health = heap.health();
    assert_eq!(health.quarantined_subheaps, 2);

    // The heap still serves allocation from every CPU and audits clean.
    for cpu in 0..THREADS {
        pmem::numa::set_current_cpu(cpu);
        let p = heap.alloc(64).expect("allocation after the fault sweep");
        heap.free(p).unwrap();
    }
    heap.audit().unwrap();

    // The verdicts are persistent: crash, recover, and the same units are
    // quarantined while the rest of the heap audits clean and allocates.
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 42);
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).expect("recovery with live verdicts");
    let refrozen = heap.quarantined_subheaps();
    assert!(refrozen.contains(&0) && refrozen.contains(&1), "quarantine lost across crash: {refrozen:?}");
    heap.audit().unwrap();
    let p = heap.alloc(64).expect("allocation after recovery");
    heap.free(p).unwrap();
}

#[test]
fn op_stats_track_activity() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap();
    let a = heap.alloc(64).unwrap();
    let b = heap.alloc(64).unwrap();
    heap.free(a).unwrap();
    let _ = heap.free(a); // double free, rejected
    let _ = heap.tx_alloc(32, true).unwrap();
    let _ = heap.tx_alloc(32, false).unwrap();
    heap.tx_abort().unwrap();
    let stats = heap.op_stats();
    assert_eq!(stats.allocs, 4);
    assert_eq!(stats.frees, 1);
    assert_eq!(stats.rejected_frees, 1);
    assert_eq!(stats.tx_commits, 1);
    assert_eq!(stats.tx_aborts, 1);
    heap.free(b).unwrap();
}
