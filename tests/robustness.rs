//! Robustness tests: a corrupted or hostile pool image must never panic
//! the loader — every failure mode is a clean `Err`. Also verifies the
//! §5.6 claim that unused metadata is returned to the device.

use std::sync::Arc;

use platform::check::{check, Config};
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};

fn build_pool() -> Arc<PmemDevice> {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let mut live = Vec::new();
    for i in 0..50u64 {
        live.push(heap.alloc(32 + i * 17).unwrap());
    }
    for p in live.iter().step_by(2) {
        heap.free(*p).unwrap();
    }
    heap.set_root(live[1]).unwrap();
    heap.close().unwrap();
    dev
}

/// Loading may fail (`Err`) or succeed; succeeding implies the audit ran
/// or failed cleanly — nothing may panic.
fn try_load(dev: Arc<PmemDevice>) {
    if let Ok(heap) = PoseidonHeap::load(dev, HeapConfig::new()) {
        let _ = heap.audit();
        let _ = heap.alloc(64);
        let _ = heap.root();
    }
}

#[test]
fn byte_flips_in_metadata_never_panic() {
    check("byte_flips_in_metadata_never_panic", Config::cases(24), |g| {
        let flips = g.vec(1..24, |g| (g.u64(0..4 << 20), g.any_u8()));
        let dev = build_pool();
        // The attacker/bit-rot writes bypass MPK (simulating at-rest
        // corruption of the pool file).
        let raw = PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false));
        // Copy the image across (reads are unprotected).
        let mut buf = vec![0u8; 1 << 20];
        let mut off = 0;
        while off < dev.capacity() {
            let len = buf.len().min((dev.capacity() - off) as usize);
            dev.read(off, &mut buf[..len]).unwrap();
            raw.write(off, &buf[..len]).unwrap();
            off += len as u64;
        }
        for (offset, value) in flips {
            raw.write(offset, &[value]).unwrap();
        }
        try_load(Arc::new(raw));
    });
}

#[test]
fn log_area_corruption_never_panics() {
    check("log_area_corruption_never_panics", Config::cases(24), |g| {
        let flips = g.vec(1..16, |g| (g.u64(0..0x12000), g.any_u8()));
        // Target the sub-heap 0 header/log area specifically (the part
        // recovery parses), after an interrupted operation.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false)));
        {
            let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            let _ = heap.alloc(4096).unwrap();
            dev.arm_crash_after(12);
            let _ = heap.alloc(64);
            dev.disarm_crash();
        }
        dev.simulate_crash(pmem::CrashMode::Strict, 5);
        let meta0 = 64 * 1024u64; // SB_REGION_SIZE
        for (offset, value) in flips {
            dev.write(meta0 + offset, &[value]).unwrap();
        }
        try_load(dev);
    });
}

#[test]
fn undo_and_micro_log_byte_flips_never_panic() {
    check("undo_and_micro_log_byte_flips_never_panic", Config::cases(32), |g| {
        // Target the log regions specifically: the sub-heap undo log lives
        // at meta + [0x1000, 0x11000) and the micro log at
        // meta + [0x11000, 0x15000) — the exact bytes recovery parses and
        // replays. Whole-pool sampling (above) rarely lands here.
        let flips = g.vec(1..16, |g| (g.u64(0x1000..0x15000), g.any_u8()));
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_protection(false)));
        let meta_size;
        {
            let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
            meta_size = heap.layout().meta_size;
            // Leave both an open transaction and an interrupted operation
            // so the logs are non-empty when the flips land.
            let _ = heap.tx_alloc(128, false).unwrap();
            dev.arm_crash_after(10);
            let _ = heap.alloc(64);
            dev.disarm_crash();
        }
        dev.simulate_crash(pmem::CrashMode::Strict, 7);
        let sb_region = 64 * 1024u64; // SB_REGION_SIZE
        for (offset, value) in flips {
            for sub in 0..2u64 {
                dev.write(sb_region + sub * meta_size + offset, &[value]).unwrap();
            }
        }
        try_load(dev);
    });
}

#[test]
fn unused_hash_levels_are_punched_back() {
    // §5.6: grow the table by allocating a dense population of minimum-
    // size blocks, then free + defragment; the emptied upper levels must
    // be returned to the device (resident bytes drop).
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();

    let mut live = Vec::new();
    while let Ok(p) = heap.alloc(32) {
        live.push(p);
        if live.len() >= 12_000 {
            break;
        }
    }
    let grown = heap.audit().unwrap()[0].1.active_levels;
    assert!(grown > 1, "table never grew (got {} blocks)", live.len());
    let resident_peak = dev.resident_bytes();

    for p in live {
        heap.free(p).unwrap();
    }
    let merges = heap.defragment().unwrap();
    assert!(merges > 0);
    let audit = heap.audit().unwrap()[0].1;
    assert_eq!(audit.active_levels, 1, "upper levels not deactivated");
    // The punched levels are zero-filled and their fully-covered backing
    // chunks returned (for this table size the levels are smaller than a
    // backing chunk, so we assert no growth here; full dematerialisation
    // is covered by pmem's punch_hole tests at chunk scale).
    assert!(
        dev.resident_bytes() <= resident_peak,
        "defragmentation grew resident memory: {} -> {}",
        resident_peak,
        dev.resident_bytes()
    );
    // The heap can serve a maximal allocation again.
    let big = heap.alloc(heap.layout().max_alloc()).unwrap();
    heap.free(big).unwrap();
}

#[test]
fn op_stats_track_activity() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap();
    let a = heap.alloc(64).unwrap();
    let b = heap.alloc(64).unwrap();
    heap.free(a).unwrap();
    let _ = heap.free(a); // double free, rejected
    let _ = heap.tx_alloc(32, true).unwrap();
    let _ = heap.tx_alloc(32, false).unwrap();
    heap.tx_abort().unwrap();
    let stats = heap.op_stats();
    assert_eq!(stats.allocs, 4);
    assert_eq!(stats.frees, 1);
    assert_eq!(stats.rejected_frees, 1);
    assert_eq!(stats.tx_commits, 1);
    assert_eq!(stats.tx_aborts, 1);
    heap.free(b).unwrap();
}
