//! Integration test for the `pfsck` pool inspector binary.

use std::process::Command;
use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};

fn pfsck() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pfsck"))
}

fn make_pool(path: &std::path::Path, crash: bool) {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let keep = heap.alloc(256).unwrap();
    let gone = heap.alloc(512).unwrap();
    heap.free(gone).unwrap();
    heap.set_root(keep).unwrap();
    if crash {
        // Leave an open transaction and an armed crash, then power-cycle.
        let _ = heap.tx_alloc(128, false).unwrap();
        drop(heap);
        dev.simulate_crash(CrashMode::Strict, 9);
    } else {
        heap.close().unwrap();
    }
    dev.save(path).unwrap();
}

#[test]
fn clean_pool_passes() {
    let path = std::env::temp_dir().join(format!("pfsck-clean-{}.pool", std::process::id()));
    make_pool(&path, false);
    let out = pfsck().arg("--verbose").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pfsck failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("clean shutdown"), "{stdout}");
    assert!(stdout.contains("— OK"), "{stdout}");
    assert!(stdout.contains("root     : nvmptr("), "{stdout}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crashed_pool_is_recovered_and_passes() {
    let path = std::env::temp_dir().join(format!("pfsck-crash-{}.pool", std::process::id()));
    make_pool(&path, true);
    let out = pfsck().arg("--defrag").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pfsck failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("CRASH DETECTED"), "{stdout}");
    assert!(stdout.contains("tx allocations reverted: 1"), "{stdout}");
    assert!(stdout.contains("— OK"), "{stdout}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn garbage_file_is_rejected() {
    let path = std::env::temp_dir().join(format!("pfsck-garbage-{}.pool", std::process::id()));
    std::fs::write(&path, b"this is not a pool").unwrap();
    let out = pfsck().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_argument_is_usage_error() {
    let out = pfsck().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
