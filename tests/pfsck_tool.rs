//! Integration test for the `pfsck` pool inspector binary.

use std::process::Command;
use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};

fn pfsck() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pfsck"))
}

fn make_pool(path: &std::path::Path, crash: bool) {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let keep = heap.alloc(256).unwrap();
    let gone = heap.alloc(512).unwrap();
    heap.free(gone).unwrap();
    heap.set_root(keep).unwrap();
    if crash {
        // Leave an open transaction and an armed crash, then power-cycle.
        let _ = heap.tx_alloc(128, false).unwrap();
        drop(heap);
        dev.simulate_crash(CrashMode::Strict, 9);
    } else {
        heap.close().unwrap();
    }
    dev.save(path).unwrap();
}

#[test]
fn clean_pool_passes() {
    let path = std::env::temp_dir().join(format!("pfsck-clean-{}.pool", std::process::id()));
    make_pool(&path, false);
    let out = pfsck().arg("--verbose").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pfsck failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("clean shutdown"), "{stdout}");
    assert!(stdout.contains("— OK"), "{stdout}");
    assert!(stdout.contains("root     : nvmptr("), "{stdout}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crashed_pool_is_recovered_and_passes() {
    let path = std::env::temp_dir().join(format!("pfsck-crash-{}.pool", std::process::id()));
    make_pool(&path, true);
    let out = pfsck().arg("--defrag").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pfsck failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("CRASH DETECTED"), "{stdout}");
    assert!(stdout.contains("tx allocations reverted: 1"), "{stdout}");
    assert!(stdout.contains("— OK"), "{stdout}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn repair_fixes_poisoned_pool_in_place() {
    let path = std::env::temp_dir().join(format!("pfsck-repair-{}.pool", std::process::id()));
    // Build a pool with media faults enabled, then poison a buddy
    // free-list head line, an undo-log line, and a freed block's user
    // line before saving — the acceptance scenario for `--repair`.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_media_faults(true)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    let layout = heap.layout().clone();
    let keep = heap.alloc(256).unwrap();
    let gone = heap.alloc(4096).unwrap();
    let gone_raw = heap.raw_offset(gone).unwrap();
    heap.free(gone).unwrap();
    heap.set_root(keep).unwrap();
    heap.close().unwrap();
    dev.poison(layout.meta_base(0) + 0x100, 64).unwrap(); // buddy free-list heads
    dev.poison(layout.meta_base(0) + 0x1000, 64).unwrap(); // undo-log line
    dev.poison(gone_raw & !63, 64).unwrap(); // freed block's user bytes
    dev.save(&path).unwrap();

    // Without --repair the sub-heap is contained (frozen) but the pool
    // still loads and checks out.
    let out = pfsck().arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "pfsck failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("DAMAGE CONTAINED"), "{stdout}");

    // --repair rebuilds the metadata and writes the image back.
    let out = pfsck().arg("--repair").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "repair failed: {stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("repair   :"), "{stdout}");
    assert!(stdout.contains("repaired image saved"), "{stdout}");

    // A subsequent plain check sees a healthy pool: no frozen sub-heaps,
    // and the user-line poison reduced to a quarantined block in audit.
    let out = pfsck().arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "post-repair pfsck failed: {stdout}");
    assert!(!stdout.contains("DAMAGE CONTAINED"), "{stdout}");
    assert!(stdout.contains("quarantined after media errors"), "{stdout}");

    // And a direct load finds the root intact with quarantine accounted.
    let dev = Arc::new(PmemDevice::load(&path, DeviceConfig::new(0)).unwrap());
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert!(heap.quarantined_subheaps().is_empty());
    assert_eq!(heap.root().unwrap(), keep);
    let quarantined: u64 = heap.audit().unwrap().iter().map(|(_, a)| a.quarantined_bytes).sum();
    assert!(quarantined >= 4096, "poisoned free block not quarantined: {quarantined}");
    let p = heap.alloc(64).unwrap();
    heap.free(p).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn repair_with_lost_root_exits_nonzero() {
    let path = std::env::temp_dir().join(format!("pfsck-lost-root-{}.pool", std::process::id()));
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20).with_media_faults(true)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    let keep = heap.alloc(256).unwrap();
    heap.set_root(keep).unwrap();
    heap.close().unwrap();
    // Poison the superblock identity line: the root object is lost and no
    // repair can get it back.
    dev.poison(0, 64).unwrap();
    dev.save(&path).unwrap();
    let out = pfsck().arg("--repair").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("REPAIR FAILED"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn garbage_file_is_rejected() {
    let path = std::env::temp_dir().join(format!("pfsck-garbage-{}.pool", std::process::id()));
    std::fs::write(&path, b"this is not a pool").unwrap();
    let out = pfsck().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_argument_is_usage_error() {
    let out = pfsck().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
