//! Integration test: every paper workload runs on every allocator, with
//! post-run consistency checks where the allocator supports them.

use std::sync::Arc;
use std::time::Duration;

use pmem::{DeviceConfig, NumaTopology, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::alloc_api::AllocatorKind;
use workloads::{ackermann, kruskal, larson, micro, nqueens, ycsb};

fn device() -> Arc<PmemDevice> {
    Arc::new(PmemDevice::new(DeviceConfig::bench(2 << 30).with_topology(NumaTopology::new(2, 16))))
}

#[test]
fn every_workload_on_every_allocator() {
    for kind in AllocatorKind::ALL {
        let alloc = kind.build(device());
        let name = kind.name();

        let r = micro::run(&*alloc, micro::MicroConfig::new(512, 3, 600));
        assert!(r.total_ops >= 1800, "{name} micro");

        let r = larson::run(&*alloc, larson::LarsonConfig::new(3, Duration::from_millis(80)));
        assert!(r.total_ops > 0, "{name} larson");

        let r = ackermann::run(&*alloc, ackermann::AckermannConfig::new(2, 2, 64 << 10));
        assert_eq!(r.total_ops, 8, "{name} ackermann");

        let r = kruskal::run(&*alloc, kruskal::KruskalConfig::new(2, 4));
        assert_eq!(r.total_ops, 48, "{name} kruskal");

        let r = nqueens::run(&*alloc, nqueens::NQueensConfig::new(2, 5));
        assert_eq!(r.total_ops, 20, "{name} nqueens");

        let config = ycsb::YcsbConfig::new(2, 1000, 300);
        let (tree, load) = ycsb::run_load(&alloc, config);
        assert_eq!(load.total_ops, 1000, "{name} ycsb load");
        assert_eq!(tree.len(), 1000, "{name} tree count");
        let a = ycsb::run_workload_a(&tree, config);
        assert_eq!(a.total_ops, 600, "{name} ycsb A");
    }
}

#[test]
fn poseidon_survives_full_benchmark_suite_with_clean_audit() {
    let dev = device();
    let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(8)).unwrap());

    micro::run(&*heap, micro::MicroConfig::new(256, 4, 800));
    larson::run(&*heap, larson::LarsonConfig::new(4, Duration::from_millis(80)));
    kruskal::run(&*heap, kruskal::KruskalConfig::new(4, 10));
    nqueens::run(&*heap, nqueens::NQueensConfig::new(4, 10));

    // Every workload above is fully balanced (drains its allocations):
    // the audit must find zero allocated bytes and a structurally intact
    // heap.
    for (sub, audit) in heap.audit().unwrap() {
        assert_eq!(audit.alloc_bytes, 0, "sub-heap {sub} leaked after the suite");
    }
}

#[test]
fn contention_profiles_reflect_design() {
    // After a multi-threaded run, PMDK's global locks must show
    // significant serial time; Poseidon's per-sub-heap locks must spread.
    let alloc = AllocatorKind::Pmdk.build(device());
    micro::run(&*alloc, micro::MicroConfig::new(512, 4, 2000));
    let profile = alloc.contention_profile();
    let action = profile.iter().find(|p| p.name == "action-log").unwrap();
    assert!(action.acquisitions > 0, "frees must hit the global action log");

    let alloc = AllocatorKind::Poseidon.build(device());
    micro::run(&*alloc, micro::MicroConfig::new(512, 4, 2000));
    let profile = alloc.contention_profile();
    let active_subheaps =
        profile.iter().filter(|p| p.name.starts_with("subheap") && p.acquisitions > 0).count();
    assert!(active_subheaps >= 4, "expected >=4 active sub-heap locks, got {active_subheaps}");
}

#[test]
fn ycsb_reads_after_updates_observe_fresh_values() {
    let alloc = AllocatorKind::Poseidon.build(device());
    let config = ycsb::YcsbConfig::new(2, 500, 200);
    let (tree, _) = ycsb::run_load(&alloc, config);
    ycsb::run_workload_a(&tree, config);
    // Every key is still present and its value buffer is readable.
    for i in 0..500u64 {
        let key = {
            // Same FNV the generator uses — recompute through the tree by
            // checking presence of all loaded keys.
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in i.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01B3);
            }
            hash
        };
        let value = tree.get(key).expect("key lost during workload A");
        let mut buf = [0u8; 8];
        alloc.device().read(value, &mut buf).expect("value readable");
    }
}
