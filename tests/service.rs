//! Integration tests for the persistent KV service contract (the
//! scenario the `kvserve` soak gate runs continuously): acknowledged
//! writes survive a kill at *any* point, reopen cost is a function of
//! metadata — not of how much data the service has accumulated — and
//! one soak run rides out kill, media poison, and online growth
//! back-to-back.
//!
//! The service durability contract under test: the heap runs uncached
//! (`without_cache()`), so every allocation is committed on media when
//! `alloc` returns; each value carries a 16-byte checksummed payload
//! persisted *before* the tree insert that publishes it; and the tree
//! root is anchored into a heap-rooted directory block before any new
//! root becomes visible. An operation is "acknowledged" only once the
//! insert returns — and from that point it must survive power loss.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::fastfair::FastFair;
use workloads::kvserve::{run_soak, EventReport, KvServeConfig, SoakEvent};
use workloads::PersistentAllocator;

const DIR_MAGIC: u64 = 0x4B56_5345_5256_4531;
const VALUE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const VALUE_SIZE: u64 = 100;

fn service_config() -> HeapConfig {
    // Uncached: the service durability contract needs every alloc
    // committed at return, not parked in a DRAM magazine.
    HeapConfig::new().with_subheaps(2).without_cache()
}

/// Creates the service state on a fresh device: one tree, its root
/// anchored (via the anchor-before-visible hook) in a directory block
/// that the heap root points at.
fn create_service(dev: &Arc<PmemDevice>) -> (Arc<PoseidonHeap>, FastFair<PoseidonHeap>) {
    let heap = Arc::new(PoseidonHeap::create(dev.clone(), service_config()).expect("create heap"));
    let dir = PersistentAllocator::alloc(&*heap, 16).expect("directory alloc");
    dev.write_pod(dir, &DIR_MAGIC).expect("directory magic");
    let mut tree = FastFair::new(heap.clone()).expect("tree root alloc");
    dev.write_pod(dir + 8, &tree.root_offset()).expect("anchor initial root");
    dev.persist(dir, 16).expect("persist directory");
    install_hook(dev, &mut tree, dir + 8);
    let root = heap.nvmptr_of(dir).expect("directory pointer");
    heap.set_root(root).expect("anchor directory");
    (heap, tree)
}

/// Reopens the service from a crashed device: heap recovery, then the
/// tree from its anchored root.
fn open_service(dev: &Arc<PmemDevice>) -> (Arc<PoseidonHeap>, FastFair<PoseidonHeap>) {
    let heap = Arc::new(PoseidonHeap::load(dev.clone(), service_config()).expect("recovery load"));
    let root = heap.root().expect("heap root");
    assert!(!root.is_null(), "recovered heap lost its root anchor");
    let dir = heap.raw_offset(root).expect("resolve directory");
    let magic: u64 = dev.read_pod(dir).expect("directory magic");
    assert_eq!(magic, DIR_MAGIC, "directory block corrupt after recovery");
    let anchored: u64 = dev.read_pod(dir + 8).expect("anchored root");
    let mut tree = FastFair::open(heap.clone(), anchored);
    install_hook(dev, &mut tree, dir + 8);
    (heap, tree)
}

/// Anchor-before-visible, best-effort on a crashed device (once the
/// device has failed every mutation errors out anyway, so a missed
/// anchor can never be observed by a later reader).
fn install_hook(dev: &Arc<PmemDevice>, tree: &mut FastFair<PoseidonHeap>, slot: u64) {
    let dev = dev.clone();
    tree.on_root_change(Box::new(move |root| {
        if dev.write_pod(slot, &root).is_ok() {
            let _ = dev.persist(slot, 8);
        }
    }));
}

/// Allocates, fills, persists, and publishes one checksummed value;
/// returns false if the device crashed mid-operation (the key is then
/// *not* acknowledged). The tree layer treats device failure mid-write
/// as fatal and panics — for this test that panic *is* the process
/// dying at the power cut, so it is caught and mapped to "not acked".
fn insert_value(heap: &Arc<PoseidonHeap>, tree: &FastFair<PoseidonHeap>, key: u64) -> bool {
    insert_value_sized(heap, tree, key, VALUE_SIZE)
}

/// [`insert_value`] with an explicit allocation size (the verified
/// payload stays the first 16 bytes regardless).
fn insert_value_sized(heap: &Arc<PoseidonHeap>, tree: &FastFair<PoseidonHeap>, key: u64, size: u64) -> bool {
    let dev = heap.device().clone();
    let Ok(off) = PersistentAllocator::alloc(&**heap, size) else { return false };
    if dev.write_pod(off, &key).is_err()
        || dev.write_pod(off + 8, &(key ^ VALUE_SALT)).is_err()
        || dev.persist(off, 16).is_err()
    {
        return false;
    }
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tree.insert(key, off).is_ok())).unwrap_or(false)
}

/// Asserts `key` is present with an intact payload.
fn verify_value(dev: &Arc<PmemDevice>, tree: &FastFair<PoseidonHeap>, key: u64) {
    let off = tree.get(key).unwrap_or_else(|| panic!("acknowledged key lost: {key:#x}"));
    let stored: u64 = dev.read_pod(off).expect("payload read");
    let check: u64 = dev.read_pod(off + 8).expect("checksum read");
    assert_eq!(stored, key, "payload corrupt for key {key:#x}");
    assert_eq!(check, key ^ VALUE_SALT, "checksum corrupt for key {key:#x}");
}

/// Kills the service mid-traffic at an arbitrary device-event count and
/// proves every *acknowledged* key survives with its payload intact —
/// then resumes service on the recovered heap and re-verifies.
#[test]
fn kill_and_resume_preserves_acknowledged_inserts() {
    for seed in 0..6u64 {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let (heap, tree) = create_service(&dev);

        // Acknowledge a warm base population before arming the crash.
        let mut acked: Vec<u64> = Vec::new();
        for key in 0..64u64 {
            assert!(insert_value(&heap, &tree, key), "warm insert must succeed");
            acked.push(key);
        }

        // Crash at a seed-varied point inside ongoing traffic. Each
        // value insert costs hundreds of device events, so this sweeps
        // crash points from mid-insert to deep into the batch.
        dev.arm_crash_after(300 + seed * 709);
        for key in 64..4096u64 {
            if !insert_value(&heap, &tree, key) {
                break; // crashed mid-op: key never acknowledged
            }
            acked.push(key);
        }
        assert!(dev.is_crashed(), "seed {seed}: the armed crash never fired");
        dev.disarm_crash();
        drop(tree);
        drop(heap); // no close(): this models power loss
        dev.simulate_crash(CrashMode::Strict, seed);

        // Recovery: every acknowledged key present and intact.
        let (heap, tree) = open_service(&dev);
        assert!(tree.len() >= acked.len() as u64, "tree lost acknowledged keys");
        for &key in &acked {
            verify_value(&dev, &tree, key);
        }

        // Service resumes: new writes land and old ones stay.
        for key in 10_000..10_200u64 {
            assert!(insert_value(&heap, &tree, key), "post-recovery insert failed");
            acked.push(key);
        }
        for &key in &acked {
            verify_value(&dev, &tree, key);
        }
        heap.audit().expect("post-resume audit");
    }
}

/// One reopen: kill (drop without close + power cycle), recover the
/// heap, reopen the tree, touch one key. Returns the wall-clock cost.
fn timed_reopen(
    dev: &Arc<PmemDevice>,
    heap: Arc<PoseidonHeap>,
    tree: FastFair<PoseidonHeap>,
    probe: u64,
) -> (Arc<PoseidonHeap>, FastFair<PoseidonHeap>, Duration) {
    drop(tree);
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 7);
    let start = Instant::now();
    let (heap, tree) = open_service(dev);
    let reopen = start.elapsed();
    verify_value(dev, &tree, probe);
    (heap, tree, reopen)
}

/// Reopen latency is O(metadata), not O(data): recovery replays
/// fixed-size logs and scans the block table, but never walks value
/// bytes. So holding the block count — and with it every table and
/// free-list recovery touches — constant while growing each value 16x
/// (16x the data bytes on media) must leave the reopen cost flat.
/// (Scaling the *block count* instead grows the table itself, which
/// recovery legitimately scans; data bytes are what recovery must
/// never read.)
#[test]
fn reopen_time_scales_with_metadata_not_data() {
    let population = 2_000u64;
    let mut medians = Vec::new();
    for value_size in [100u64, 1_600] {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
        let (mut heap, mut tree) = create_service(&dev);
        for key in 0..population {
            assert!(insert_value_sized(&heap, &tree, key, value_size), "load insert must succeed");
        }
        let mut times = Vec::new();
        for _ in 0..5 {
            let (h, t, reopen) = timed_reopen(&dev, heap, tree, population / 2);
            heap = h;
            tree = t;
            times.push(reopen);
        }
        times.sort();
        medians.push(times[times.len() / 2]);
    }
    let (small, large) = (medians[0], medians[1]);
    // Identical metadata, 16x the data: reopen must not follow the
    // data. The ratio bound leaves room for allocator-class effects and
    // scheduler noise; the absolute slack absorbs timer jitter when
    // both medians are small.
    assert!(
        large <= small * 3 + Duration::from_millis(5),
        "reopen cost followed data bytes: {small:?} with 100 B values vs {large:?} with 1600 B \
         values at equal population"
    );
}

/// The full soak contract in one run: mixed traffic over 4 shards rides
/// out a kill-and-resume, live media poison, and an online grow, and the
/// report's cross-cutting invariants (ack ledger, histogram totals,
/// quarantine balance, event trace) all hold.
#[test]
fn soak_survives_kill_poison_and_grow() {
    let config = KvServeConfig::new(4, 4, 1_500, 3_000)
        .with_events(vec![SoakEvent::Kill, SoakEvent::Poison, SoakEvent::Grow])
        .with_capacity(64 << 20, 256 << 20);
    let report = run_soak(&config);
    // run_soak already asserted its invariants; re-assert the headline
    // service guarantees explicitly so this test documents them.
    assert_eq!(report.ops, 12_000);
    assert_eq!(report.population, report.loaded + report.inserted);
    let mut saw_kill = false;
    for event in &report.events {
        match event {
            EventReport::Kill { population, verified, reopen, .. } => {
                saw_kill = true;
                assert_eq!(verified, population, "kill verification skipped keys");
                assert!(reopen < &Duration::from_secs(5), "reopen took {reopen:?}");
            }
            EventReport::Poison { keys, .. } => assert!(*keys > 0, "poison event found no targets"),
            EventReport::Grow { old_capacity, new_capacity, .. } => {
                assert!(new_capacity > old_capacity, "grow event did not grow");
            }
        }
    }
    assert!(saw_kill);
}

/// Maintenance-engine soak comparison: two identical update-heavy runs
/// (same seed, same traffic), one with maintenance ticks in the
/// coordinator loop and one without. The engine must leave the heap
/// *measurably less fragmented* (free bytes outside each class's
/// largest coalescable run, summed) without wrecking tail latency.
/// Frees on this heap never coalesce inline — merging is exclusively
/// maintenance work — so the off run accumulates unmerged buddy pairs
/// that the on run retires.
#[test]
fn soak_maintenance_lowers_steady_state_fragmentation() {
    let base = |maint: usize| {
        // value_spread 2: value sizes ramp across three buddy classes
        // over the run, so updates free blocks of classes the service
        // has outgrown and never reallocates — the freed buddies pile
        // up side by side as coalescing debt.
        let mut config = KvServeConfig::new(2, 2, 600, 2_000)
            .with_events(vec![])
            .with_capacity(96 << 20, 96 << 20)
            .with_value_spread(2)
            .with_maint(maint);
        config.update_permille = 600; // churn: every update frees the old value
        config
    };
    let off = run_soak(&base(0));
    let on = run_soak(&base(8));

    // Equal throughput: same seed, same op budget, both runs completed.
    assert_eq!(off.ops, on.ops, "runs diverged in completed ops");
    assert_eq!(off.health.maint_steps, 0, "maint_budget=0 must disable the engine");
    assert!(on.health.maint_steps > 0, "engine never stepped: {:?}", on.health);
    assert!(on.health.maint_merges > 0, "engine stepped but never coalesced anything");

    // The headline guarantee: final steady-state fragmentation strictly
    // lower with the engine on. (The off run's churn leaves unmerged
    // buddies behind, so its figure is necessarily positive.)
    let frag_off = off.fragmentation.last().expect("off run sampled fragmentation").frag_bytes;
    let frag_on = on.fragmentation.last().expect("on run sampled fragmentation").frag_bytes;
    assert!(frag_off > 0, "maintenance-off run ended with nothing to coalesce");
    assert!(frag_on < frag_off, "maintenance did not lower fragmentation: {frag_on} on vs {frag_off} off");

    // Maintenance must not wreck the serving tail: per class, p999
    // stays under 2x the maintenance-off run. Only classes with enough
    // samples for p999 to be more than the single worst op qualify, and
    // the absolute slack absorbs scheduler blips (an actual regression —
    // a maintenance unit holding a sub-heap lock through a full defrag —
    // costs tens of milliseconds and sails past it).
    for ((class_on, sum_on), (class_off, sum_off)) in on.totals.iter().zip(&off.totals) {
        assert_eq!(class_on, class_off);
        if sum_on.count < 500 || sum_off.count < 500 {
            continue;
        }
        assert!(
            sum_on.p999 <= sum_off.p999 * 2 + 1_000_000,
            "{class_on:?} p999 degraded past 2x with maintenance on: {}ns vs {}ns",
            sum_on.p999,
            sum_off.p999
        );
    }
}
