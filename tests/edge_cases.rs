//! Edge-case coverage: resource exhaustion, snapshot robustness, and
//! cross-substrate corner cases.

use std::sync::{Arc, Barrier};

use pmem::{DeviceConfig, PmemDevice, PmemError};
use poseidon::{HeapConfig, PoseidonError, PoseidonHeap};

#[test]
fn concurrent_tx_slots_exhaust_gracefully() {
    // A sub-heap supports 32 concurrent transactions (micro-log slots);
    // the 33rd open transaction must fail cleanly, and closing one must
    // free a slot.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
    let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap());
    const OPEN: usize = 32;
    let parked = Barrier::new(OPEN + 1);
    let release = Barrier::new(OPEN + 1);
    platform::thread::scope(|s| {
        for thread in 0..OPEN {
            let heap = heap.clone();
            let parked = &parked;
            let release = &release;
            s.spawn(move || {
                pmem::numa::set_current_cpu(thread);
                let p = heap.tx_alloc(64, false).expect("slot within capacity");
                parked.wait();
                release.wait();
                heap.tx_abort().expect("abort");
                let _ = p;
            });
        }
        parked.wait();
        // All 32 slots held: a fresh transaction cannot start.
        let overflow = heap.tx_alloc(64, false);
        assert!(
            matches!(overflow, Err(PoseidonError::TxSlotsExhausted { max: 32 })),
            "expected exhaustion, got {overflow:?}"
        );
        release.wait();
    });
    // With every slot released, transactions work again.
    let p = heap.tx_alloc(64, true).unwrap();
    heap.free(p).unwrap();
    heap.audit().unwrap();
}

#[test]
fn snapshot_files_are_validated() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("edge-snap-{}.pool", std::process::id()));

    // Valid snapshot first.
    let dev = PmemDevice::new(DeviceConfig::small_test());
    dev.write(0, b"image").unwrap();
    dev.persist(0, 5).unwrap();
    dev.save(&path).unwrap();

    // Truncated file: clean error, no panic.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(
        PmemDevice::load(&path, DeviceConfig::small_test()),
        Err(PmemError::Io(_)) | Err(PmemError::BadSnapshot(_))
    ));

    // Bad magic.
    let mut corrupted = bytes.clone();
    corrupted[0] ^= 0xFF;
    std::fs::write(&path, &corrupted).unwrap();
    assert!(matches!(
        PmemDevice::load(&path, DeviceConfig::small_test()),
        Err(PmemError::BadSnapshot("bad magic"))
    ));

    // Chunk index out of range.
    let mut oob = bytes.clone();
    // chunk index lives right after magic(8)+capacity(8)+count(8).
    oob[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &oob).unwrap();
    assert!(matches!(
        PmemDevice::load(&path, DeviceConfig::small_test()),
        Err(PmemError::BadSnapshot("chunk index out of range"))
    ));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn mpk_default_rights_cover_preexisting_threads() {
    // A thread spawned BEFORE the heap exists must still be unable to
    // write metadata afterwards (the domain default is retroactive; §4.3
    // re-disables at op exit besides).
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let dev2 = dev.clone();
    let ready = Arc::new(Barrier::new(2));
    let go = Arc::new(Barrier::new(2));
    let ready2 = ready.clone();
    let go2 = go.clone();
    let attacker = std::thread::spawn(move || {
        ready2.wait(); // thread exists before the heap
        go2.wait();
        dev2.write(4096, &[0xFF; 8])
    });
    ready.wait();
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let p = heap.alloc(64).unwrap();
    go.wait();
    let result = attacker.join().unwrap();
    assert!(matches!(result, Err(PmemError::ProtectionFault { .. })));
    heap.free(p).unwrap();
}

#[test]
fn heap_close_releases_the_protection_key() {
    // Open/close many heaps on one device: without key release, the 16
    // MPK keys would exhaust after 15 cycles.
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    heap.close().unwrap();
    for _ in 0..40 {
        let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
        heap.close().unwrap();
    }
    // Still protected while open, unprotected after close.
    let heap = PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap();
    assert!(matches!(dev.write(4096, &[1]), Err(PmemError::ProtectionFault { .. })));
    heap.close().unwrap();
    dev.write(4096, &[1]).unwrap();
}

#[test]
fn max_alloc_boundary_roundtrips() {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).unwrap();
    let max = heap.layout().max_alloc();
    let p = heap.alloc(max).unwrap();
    assert_eq!(heap.block_size(p).unwrap(), max);
    assert!(matches!(heap.alloc(max + 1), Err(PoseidonError::TooLarge { .. })));
    heap.free(p).unwrap();
    // And again after the free (defrag path kept the block whole).
    let p = heap.alloc(max).unwrap();
    heap.free(p).unwrap();
}

#[test]
fn zero_length_device_operations_are_harmless() {
    let dev = PmemDevice::new(DeviceConfig::small_test());
    dev.write(100, &[]).unwrap();
    dev.read(100, &mut []).unwrap();
    dev.clwb(100, 0).unwrap();
    dev.persist(100, 0).unwrap();
    assert_eq!(dev.punch_hole(100, 0).unwrap(), 0);
    dev.set_page_key(0, 0, mpk::ProtectionKey::DEFAULT).unwrap();
}
