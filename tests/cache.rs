//! Integration tests for the transient caching layer: the lock-free fast
//! path in front of the persistent buddy allocator. Pins the tentpole's
//! acceptance bar (a warm cached pair costs zero fences, zero lock
//! acquisitions, zero device traffic), the durability contract
//! (publish-on-`set_root`, publish-and-drain on clean close, evaporation
//! plus reclamation across a crash), and the bounded-cache degradations.

use std::sync::Arc;

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{CacheConfig, HeapConfig, PoseidonError, PoseidonHeap};

fn fresh(bytes: u64) -> Arc<PmemDevice> {
    Arc::new(PmemDevice::new(DeviceConfig::new(bytes)))
}

#[test]
fn warm_cached_pairs_cost_no_fences_locks_or_device_ops() {
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);

    // Warm up: the first alloc refills the magazine, the frees park in it.
    let warm: Vec<_> = (0..16).map(|_| heap.alloc(64).unwrap()).collect();
    for p in warm {
        heap.free(p).unwrap();
    }

    let locks_before: u64 = heap.contention_profile().iter().map(|p| p.acquisitions).sum();
    let before = dev.stats();
    for _ in 0..1000 {
        let p = heap.alloc(64).unwrap();
        heap.free(p).unwrap();
    }
    let after = dev.stats();
    let locks_after: u64 = heap.contention_profile().iter().map(|p| p.acquisitions).sum();

    // The acceptance bar, pinned exactly: no fences, no flushes, no
    // metadata word traffic, no locks — 2000 operations of pure DRAM.
    assert_eq!(after.sfence_count, before.sfence_count, "cached path fenced");
    assert_eq!(after.clwb_count, before.clwb_count, "cached path flushed");
    assert_eq!(after.write_ops, before.write_ops, "cached path wrote the device");
    assert_eq!(after.read_ops, before.read_ops, "cached path read the device");
    assert_eq!(locks_after, locks_before, "cached path took a lock");

    // And the stats agree: 2000 hits, no refills or drains in the loop.
    let profile = heap.contention_profile();
    let cache = profile[0].cache.expect("sub-heap profile carries cache stats");
    assert!(cache.hits >= 2000, "expected >= 2000 cache hits, got {}", cache.hits);
    assert!(cache.hit_rate() > 0.90, "hit rate {:.3}", cache.hit_rate());
}

#[test]
fn close_drains_the_cache_and_the_audit_balances() {
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap();
    let free_before: u64 = {
        // Touch both sub-heaps so creation doesn't skew the totals.
        pmem::numa::set_current_cpu(0);
        let a = heap.alloc(64).unwrap();
        pmem::numa::set_current_cpu(1);
        let b = heap.alloc(64).unwrap();
        heap.free(b).unwrap();
        pmem::numa::set_current_cpu(0);
        heap.free(a).unwrap();
        heap.audit().unwrap().iter().map(|(_, a)| a.free_bytes).sum()
    };
    // Leave the cache loaded: resident blocks in magazines and pools.
    let held: Vec<_> = (0..32).map(|_| heap.alloc(96).unwrap()).collect();
    for p in held {
        heap.free(p).unwrap();
    }
    heap.close().unwrap();

    // The reload must see an ordinary heap: nothing flagged, nothing
    // reclaimed, every byte back on the free lists.
    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert_eq!(heap.recovery_report().cached_blocks_reclaimed, 0, "clean close left flagged records");
    let audits = heap.audit().unwrap();
    let free_after: u64 = audits.iter().map(|(_, a)| a.free_bytes).sum();
    let alloc_after: u64 = audits.iter().map(|(_, a)| a.alloc_bytes).sum();
    assert_eq!(alloc_after, 0);
    assert_eq!(free_after, free_before, "close leaked cached bytes");
}

#[test]
fn checked_out_blocks_survive_close_as_real_allocations() {
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let p = heap.alloc(256).unwrap();
    // Still checked out (never freed): the clean close publishes it.
    heap.close().unwrap();

    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    assert_eq!(heap.block_size(p).unwrap(), 256, "published block lost its record");
    heap.free(p).unwrap();
    assert!(matches!(heap.free(p), Err(PoseidonError::DoubleFree { .. })));
}

#[test]
fn set_root_publishes_cached_allocations_before_anchoring() {
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let p = heap.alloc(128).unwrap();
    heap.set_root(p).unwrap();
    // Crash without a clean close: the anchored block must survive.
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 11);

    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    let root = heap.root().unwrap();
    assert_eq!(root, p, "root pointer lost");
    assert_eq!(heap.block_size(root).unwrap(), 128, "anchored block evaporated");
    heap.free(root).unwrap();
}

#[test]
fn crash_reclaims_cache_withdrawn_blocks() {
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let free_seeded: u64 = {
        let p = heap.alloc(64).unwrap();
        heap.free(p).unwrap();
        // The cache now holds a withdrawn magazine batch; the audit
        // accounts it as free capacity.
        heap.audit().unwrap().iter().map(|(_, a)| a.free_bytes).sum()
    };
    assert!(!heap.cache_snapshot().is_empty(), "cache should be holding blocks");
    // No close: the cache evaporates.
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 5);

    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    let report = heap.recovery_report();
    assert!(report.cached_blocks_reclaimed > 0, "no flagged records reclaimed: {report:?}");
    let audits = heap.audit().unwrap();
    assert_eq!(audits.iter().map(|(_, a)| a.alloc_bytes).sum::<u64>(), 0);
    assert_eq!(
        audits.iter().map(|(_, a)| a.free_bytes).sum::<u64>(),
        free_seeded,
        "reclaimed bytes don't balance"
    );
}

#[test]
fn unpublished_cached_allocations_evaporate_across_a_crash() {
    // The documented durability contract: a cached allocation never
    // anchored via set_root and never cleanly closed is transient.
    let dev = fresh(64 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let p = heap.alloc(64).unwrap();
    drop(heap);
    dev.simulate_crash(CrashMode::Strict, 3);

    let heap = PoseidonHeap::load(dev, HeapConfig::new()).unwrap();
    // The block went back to the free lists; the stale pointer is now an
    // invalid free, rejected like any other.
    assert!(heap.block_size(p).is_err(), "unpublished cached allocation survived the crash");
    assert_eq!(heap.audit().unwrap().iter().map(|(_, a)| a.alloc_bytes).sum::<u64>(), 0);
}

#[test]
fn tiny_pool_degrades_to_cache_bypass_without_oom() {
    // A pool so small the cache's worst-case footprint would eat it: the
    // footprint gate must bypass large classes, and exhaustive
    // allocation must still reach the usual NoSpace — never an OOM
    // caused by blocks parked in the cache.
    let dev = fresh(8 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let mut held = Vec::new();
    loop {
        match heap.alloc(4096) {
            Ok(p) => held.push(p),
            Err(PoseidonError::NoSpace { .. }) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(!held.is_empty());
    // Everything comes back, and the heap still audits clean.
    for p in held {
        heap.free(p).unwrap();
    }
    heap.audit().unwrap();
    // The big class went around the cache on this tiny pool.
    let profile = heap.contention_profile();
    let cache = profile[0].cache.expect("cache stats");
    assert_eq!(cache.hits, 0, "4 KiB blocks must bypass the cache on an 8 MiB pool");
}

#[test]
fn bounded_cache_drains_when_the_pool_overflows() {
    // A deliberately small cache: magazine of 4, pool of 8. Freeing far
    // more blocks than that must overflow into batched drains (visible in
    // the stats) while the audit stays balanced.
    let config = CacheConfig { enabled: true, magazine_size: 4, max_cached_per_class: 8 };
    let dev = fresh(64 << 20);
    let heap =
        PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1).with_cache(config)).unwrap();
    pmem::numa::set_current_cpu(0);
    let held: Vec<_> = (0..256).map(|_| heap.alloc(64).unwrap()).collect();
    for p in held {
        heap.free(p).unwrap();
    }
    let profile = heap.contention_profile();
    let cache = profile[0].cache.expect("cache stats");
    assert!(cache.drains > 0, "256 frees through a 12-slot cache never drained: {cache:?}");
    // The cache never holds more than its configured bound.
    assert!(
        heap.cache_snapshot().len() <= 8 + 2 * 4,
        "cache exceeded its bound: {} blocks",
        heap.cache_snapshot().len()
    );
    let audits = heap.audit().unwrap();
    assert_eq!(audits.iter().map(|(_, a)| a.alloc_bytes).sum::<u64>(), 0);
}

#[test]
fn nospace_retry_evicts_the_cache_instead_of_failing() {
    // Fill the heap to the brim, free everything (loading the cache),
    // then ask for one maximal block: the slow path must evict the
    // cache's withdrawn capacity rather than reporting NoSpace.
    let dev = fresh(8 << 20);
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap();
    pmem::numa::set_current_cpu(0);
    let mut held = Vec::new();
    while let Ok(p) = heap.alloc(1024) {
        held.push(p);
        if held.len() > 100_000 {
            panic!("allocation never exhausted an 8 MiB pool");
        }
    }
    for p in held {
        heap.free(p).unwrap();
    }
    // The cache sits on withdrawn small blocks; a maximal allocation
    // needs them back (defragmented) to assemble its extent.
    let big = heap.alloc(heap.layout().max_alloc()).unwrap();
    heap.free(big).unwrap();
    heap.audit().unwrap();
}
