//! Model-based property tests: the FAST-FAIR-style B+-tree must agree
//! with `BTreeMap` on every operation sequence.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

use platform::check::{check, Config, Gen};
use pmem::{DeviceConfig, PmemDevice};
use workloads::alloc_api::AllocatorKind;
use workloads::fastfair::FastFair;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Get(u64),
    Update(u64, u64),
}

fn gen_op(g: &mut Gen) -> TreeOp {
    // Small key space so operations collide often (updates of existing
    // keys, repeat inserts).
    match g.weighted(&[4, 3, 2]) {
        0 => TreeOp::Insert(g.u64(0..500), g.any_u64()),
        1 => TreeOp::Get(g.u64(0..500)),
        _ => TreeOp::Update(g.u64(0..500), g.any_u64()),
    }
}

#[test]
fn agrees_with_btreemap() {
    check("agrees_with_btreemap", Config::cases(32), |g| {
        let ops = g.vec(1..400, gen_op);
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let tree = FastFair::new(alloc).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    // Tree values of 0 are fine but `update` result None vs
                    // Some(0) must match the model.
                    let old = tree.insert(k, v).unwrap();
                    let model_old = model.insert(k, v);
                    assert_eq!(old, model_old, "insert({k}) old-value mismatch");
                }
                TreeOp::Get(k) => {
                    assert_eq!(tree.get(k), model.get(&k).copied(), "get({k}) mismatch");
                }
                TreeOp::Update(k, v) => {
                    let old = tree.update(k, v);
                    let model_old =
                        if let Entry::Occupied(mut e) = model.entry(k) { Some(e.insert(v)) } else { None };
                    assert_eq!(old, model_old, "update({k}) mismatch");
                }
            }
        }
        assert_eq!(tree.len(), model.len() as u64);
        // Final sweep: every model key present with the right value.
        for (k, v) in model {
            assert_eq!(tree.get(k), Some(v));
        }
    });
}

#[test]
fn dense_sequential_and_sparse_random_keys() {
    check("dense_sequential_and_sparse_random_keys", Config::cases(32), |g| {
        let dense = g.u64(1..600);
        let sparse: std::collections::HashSet<u64> = g.vec(1..121, |g| g.any_u64()).into_iter().collect();
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Makalu.build(dev);
        let tree = FastFair::new(alloc).unwrap();
        for k in 0..dense {
            tree.insert(k, !k).unwrap();
        }
        for &k in &sparse {
            tree.insert(k, k ^ 0xFF).unwrap();
        }
        for k in 0..dense {
            let expect = if sparse.contains(&k) { k ^ 0xFF } else { !k };
            assert_eq!(tree.get(k), Some(expect));
        }
        for &k in &sparse {
            if k >= dense {
                assert_eq!(tree.get(k), Some(k ^ 0xFF));
            }
        }
    });
}
