//! Model-based property tests: the FAST-FAIR-style B+-tree must agree
//! with `BTreeMap` on every operation sequence.

use std::collections::BTreeMap;
use std::sync::Arc;

use pmem::{DeviceConfig, PmemDevice};
use proptest::prelude::*;
use workloads::alloc_api::AllocatorKind;
use workloads::fastfair::FastFair;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Get(u64),
    Update(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = TreeOp> {
    // Small key space so operations collide often (updates of existing
    // keys, repeat inserts).
    let key = 0u64..500;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        3 => key.clone().prop_map(TreeOp::Get),
        2 => (key, any::<u64>()).prop_map(|(k, v)| TreeOp::Update(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn agrees_with_btreemap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let tree = FastFair::new(alloc).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    // Tree values of 0 are fine but `update` result None vs
                    // Some(0) must match the model.
                    let old = tree.insert(k, v).unwrap();
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old, model_old, "insert({}) old-value mismatch", k);
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(k), model.get(&k).copied(), "get({}) mismatch", k);
                }
                TreeOp::Update(k, v) => {
                    let old = tree.update(k, v);
                    let model_old = if model.contains_key(&k) { model.insert(k, v) } else { None };
                    prop_assert_eq!(old, model_old, "update({}) mismatch", k);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len() as u64);
        // Final sweep: every model key present with the right value.
        for (k, v) in model {
            prop_assert_eq!(tree.get(k), Some(v));
        }
    }

    #[test]
    fn dense_sequential_and_sparse_random_keys(
        dense in 1u64..600,
        sparse in proptest::collection::hash_set(any::<u64>(), 0..120),
    ) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Makalu.build(dev);
        let tree = FastFair::new(alloc).unwrap();
        for k in 0..dense {
            tree.insert(k, !k).unwrap();
        }
        for &k in &sparse {
            tree.insert(k, k ^ 0xFF).unwrap();
        }
        for k in 0..dense {
            let expect = if sparse.contains(&k) { k ^ 0xFF } else { !k };
            prop_assert_eq!(tree.get(k), Some(expect));
        }
        for &k in &sparse {
            if k >= dense {
                prop_assert_eq!(tree.get(k), Some(k ^ 0xFF));
            }
        }
    }
}
