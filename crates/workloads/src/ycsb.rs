//! YCSB over the persistent B+-tree (§7.5, Figure 9).
//!
//! The paper loads 10 M keys into a FAST-FAIR tree and runs Workload A
//! (50 % reads / 50 % updates, zipfian key popularity). Updates are the
//! allocator-heavy part: allocate a new value buffer, persist it, swap
//! the tree pointer, free the old buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_threads, RunResult, Xorshift};
use crate::fastfair::FastFair;

/// Parameters of a YCSB run.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Keys loaded in the Load phase (paper: 10 M; scale for CI).
    pub load_keys: u64,
    /// Operations per thread in Workload A.
    pub ops_per_thread: u64,
    /// Value payload size (YCSB default field ~100 B).
    pub value_size: u64,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// Paper-shaped defaults at a given scale.
    pub fn new(threads: usize, load_keys: u64, ops_per_thread: u64) -> YcsbConfig {
        YcsbConfig { threads, load_keys, ops_per_thread, value_size: 100, theta: 0.99, seed: 0x9C5B }
    }
}

/// FNV-1a, spreading sequential ids over the key space.
pub(crate) fn fnv(x: u64) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in x.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// The YCSB zipfian generator (Gray et al. / YCSB's `ZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Prepares a generator over `items` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is not in `(0, 1)`.
    pub fn new(items: u64, theta: f64) -> Zipfian {
        assert!(items > 0, "zipfian over zero items");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Ranks this generator draws from.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Grows the rank space to `items`, extending `zetan` incrementally
    /// (O(delta), not O(items)) exactly as YCSB's `ZipfianGenerator`
    /// does when records are inserted behind it. No-op if `items` does
    /// not exceed the current space.
    pub fn extend(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        for i in self.items + 1..=items {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.items = items;
        let zeta2 = Self::zeta(2, self.theta);
        self.eta = (1.0 - (2.0 / items as f64).powf(1.0 - self.theta)) / (1.0 - zeta2 / self.zetan);
    }

    /// Draws a rank in `[0, items)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Xorshift) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }
}

/// Builds a tree and loads `config.load_keys` keys with allocated,
/// persisted values — the paper's Load phase. Returns the tree and the
/// load throughput.
///
/// # Panics
///
/// Panics on allocator failure.
pub fn run_load<A: PersistentAllocator + ?Sized>(
    alloc: &Arc<A>,
    config: YcsbConfig,
) -> (Arc<FastFair<A>>, RunResult) {
    let tree = Arc::new(FastFair::new(alloc.clone()).expect("tree root allocation"));
    let per_thread = config.load_keys / config.threads as u64;
    let result = {
        let tree = tree.clone();
        run_threads(config.threads, move |thread_index| {
            let begin = thread_index as u64 * per_thread;
            let end = if thread_index == config.threads - 1 { config.load_keys } else { begin + per_thread };
            let dev = tree_device(&tree);
            for i in begin..end {
                let key = fnv(i);
                let value = allocate_value(&tree, &dev, key, config.value_size);
                tree.insert(key, value).expect("load insert");
            }
            end - begin
        })
    };
    (tree, result)
}

/// Runs a read/update mix over a loaded tree; `update_permille` of
/// operations are updates (allocate a fresh value buffer, swap it into
/// the tree, free the old one), the rest are reads.
///
/// # Panics
///
/// Panics on allocator failure or a missing key (load must precede).
pub fn run_workload<A: PersistentAllocator + ?Sized>(
    tree: &Arc<FastFair<A>>,
    config: YcsbConfig,
    update_permille: u64,
) -> RunResult {
    let zipf = Zipfian::new(config.load_keys, config.theta);
    run_threads(config.threads, |thread_index| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0x51AB));
        let dev = tree_device(tree);
        let mut read_checksum = 0u64;
        for _ in 0..config.ops_per_thread {
            let key = fnv(zipf.sample(&mut rng));
            if rng.below(1000) < update_permille {
                // Update: new buffer in, old buffer out.
                let fresh = allocate_value(tree, &dev, key, config.value_size);
                let old = tree.update(key, fresh).expect("loaded key missing");
                tree_alloc(tree).free(old).expect("free old value");
            } else {
                // Read: fetch the value pointer and its payload.
                let value = tree.get(key).expect("loaded key missing");
                let first: u64 = dev.read_pod(value).expect("value read");
                read_checksum = read_checksum.wrapping_add(first);
            }
        }
        assert_ne!(read_checksum, u64::MAX);
        config.ops_per_thread
    })
}

/// YCSB Workload A: 50 % reads / 50 % updates — the allocation-heavy mix
/// the paper evaluates (Figure 9).
pub fn run_workload_a<A: PersistentAllocator + ?Sized>(
    tree: &Arc<FastFair<A>>,
    config: YcsbConfig,
) -> RunResult {
    run_workload(tree, config, 500)
}

/// YCSB Workload B: 95 % reads / 5 % updates. The paper skips it as
/// "mostly read-intensive" — running it shows why: the allocator's
/// influence nearly vanishes.
pub fn run_workload_b<A: PersistentAllocator + ?Sized>(
    tree: &Arc<FastFair<A>>,
    config: YcsbConfig,
) -> RunResult {
    run_workload(tree, config, 50)
}

/// YCSB Workload C: 100 % reads — zero allocator involvement.
pub fn run_workload_c<A: PersistentAllocator + ?Sized>(
    tree: &Arc<FastFair<A>>,
    config: YcsbConfig,
) -> RunResult {
    run_workload(tree, config, 0)
}

/// YCSB Workload E: 95 % short range scans / 5 % inserts. Exercises the
/// tree's leaf sibling chain; inserts are the only allocator work.
///
/// Scan starts are zipfian over the keys that exist *now*, not just the
/// load-phase population: threads publish a shared high-water mark of
/// inserted ids and periodically extend their local generator's rank
/// space to it (the YCSB `ZipfianGenerator` discipline). Sampling only
/// `[0, load_keys)` would leave every key inserted during the run
/// unscannable — the workload would silently stop exercising the
/// freshly-split right edge of the tree.
///
/// # Panics
///
/// Panics on allocator failure.
pub fn run_workload_e<A: PersistentAllocator + ?Sized>(
    tree: &Arc<FastFair<A>>,
    config: YcsbConfig,
) -> RunResult {
    let zipf = Zipfian::new(config.load_keys, config.theta);
    // Highest inserted id + 1, across all threads (ids are striped per
    // thread, so gaps exist until every stripe catches up; scans only
    // use ids as range starts, so gaps are harmless).
    let watermark = AtomicU64::new(config.load_keys);
    run_threads(config.threads, |thread_index| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0xE5E5));
        let dev = tree_device(tree);
        let mut zipf = zipf.clone();
        let mut scanned = 0u64;
        let mut next_insert = config.load_keys + thread_index as u64 * config.ops_per_thread;
        for op in 0..config.ops_per_thread {
            if rng.below(100) < 5 {
                // Insert a fresh key past the loaded range.
                let key = fnv(next_insert);
                next_insert += 1;
                let value = allocate_value(tree, &dev, key, config.value_size);
                tree.insert(key, value).expect("workload E insert");
                watermark.fetch_max(next_insert, Ordering::Relaxed);
            } else {
                if op % 64 == 0 {
                    // Fold other threads' inserts into the sampled space.
                    zipf.extend(watermark.load(Ordering::Relaxed));
                }
                let start = fnv(zipf.sample(&mut rng));
                let len = 1 + rng.below(100) as usize;
                scanned += tree.scan(start, len).len() as u64;
            }
        }
        assert_ne!(scanned, u64::MAX);
        config.ops_per_thread
    })
}

fn tree_device<A: PersistentAllocator + ?Sized>(tree: &FastFair<A>) -> Arc<pmem::PmemDevice> {
    tree_alloc(tree).device().clone()
}

fn tree_alloc<A: PersistentAllocator + ?Sized>(tree: &FastFair<A>) -> &A {
    tree.allocator()
}

fn allocate_value<A: PersistentAllocator + ?Sized>(
    tree: &FastFair<A>,
    dev: &pmem::PmemDevice,
    key: u64,
    size: u64,
) -> u64 {
    let value = tree_alloc(tree).alloc(size).expect("value allocation");
    dev.write_pod(value, &key).expect("value write");
    dev.persist(value, 8).expect("value persist");
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let zipf = Zipfian::new(1000, 0.99);
        let mut rng = Xorshift::new(7);
        let mut top10 = 0;
        let samples = 20_000;
        for _ in 0..samples {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 1000);
            if rank < 10 {
                top10 += 1;
            }
        }
        // With theta = 0.99, the top 1% of ranks draws a large share.
        assert!(top10 as f64 / samples as f64 > 0.2, "top10 share {top10}/{samples}");
    }

    #[test]
    fn extend_matches_a_fresh_generator() {
        // Incremental zetan accumulates terms in the same order a fresh
        // generator sums them, so the two must agree bit-for-bit —
        // including the sample stream they induce.
        let mut grown = Zipfian::new(1000, 0.99);
        grown.extend(5000);
        assert_eq!(grown.items(), 5000);
        let fresh = Zipfian::new(5000, 0.99);
        let mut a = Xorshift::new(11);
        let mut b = Xorshift::new(11);
        for _ in 0..10_000 {
            assert_eq!(grown.sample(&mut a), fresh.sample(&mut b));
        }
        // Shrinking or no-op extends leave the generator untouched.
        let before = grown.clone();
        grown.extend(5000);
        grown.extend(10);
        let mut a = Xorshift::new(3);
        let mut b = Xorshift::new(3);
        assert_eq!(grown.sample(&mut a), before.sample(&mut b));
    }

    #[test]
    fn extended_generator_reaches_the_new_ranks() {
        // The old Workload E sampled a generator frozen at `load_keys`:
        // no scan could ever start at an inserted key. After extend(),
        // ranks past the original space must actually get drawn.
        let mut zipf = Zipfian::new(500, 0.5);
        zipf.extend(1000);
        let mut rng = Xorshift::new(42);
        let past_load = (0..20_000).filter(|_| zipf.sample(&mut rng) >= 500).count();
        assert!(past_load > 1000, "only {past_load}/20000 samples reached the extended ranks");
    }

    #[test]
    fn load_then_workload_a() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
            let alloc: Arc<dyn PersistentAllocator> = kind.build(dev);
            let config = YcsbConfig::new(2, 2000, 500);
            let (tree, load) = run_load(&alloc, config);
            assert_eq!(load.total_ops, 2000, "{}", kind.name());
            assert_eq!(tree.len(), 2000, "{}", kind.name());
            let a = run_workload_a(&tree, config);
            assert_eq!(a.total_ops, 1000, "{}", kind.name());
        }
    }

    #[test]
    fn large_values_route_through_the_huge_region() {
        use poseidon::{HeapConfig, PoseidonHeap};

        // Values at 0.5x and 1x `max_alloc` stay on the buddy path;
        // 4x crosses into the extent-table huge region. Each phase ends
        // with audited balances: structural audit plus an extent count
        // that matches exactly what the tree holds.
        for (numerator, denominator, via_huge) in [(1u64, 2u64, false), (1, 1, false), (4, 1, true)] {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
            let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(16)).unwrap());
            let layout = heap.layout().clone();
            let max = layout.max_alloc();
            let value_size = max * numerator / denominator;
            assert_eq!(via_huge, value_size > max);
            if via_huge {
                // Two live values plus one in-flight update copy.
                assert!(
                    3 * value_size <= layout.huge_data_size(),
                    "huge region {} too small for 3 x {value_size} values",
                    layout.huge_data_size()
                );
            }

            let mut config = YcsbConfig::new(2, 2, 0);
            config.value_size = value_size;
            let (tree, load) = run_load(&heap, config);
            assert_eq!(load.total_ops, 2, "{value_size}-byte load");
            assert_eq!(tree.len(), 2);

            // Updates allocate the fresh value before freeing the old
            // one; run them single-threaded so at most one extra value
            // is in flight. Sub-heap-sized values skip updates — one
            // sub-heap cannot hold two `max_alloc` blocks at once.
            let mut mix = config;
            mix.threads = 1;
            mix.ops_per_thread = 16;
            let mixed = run_workload(&tree, mix, if via_huge { 500 } else { 0 });
            assert_eq!(mixed.total_ops, 16, "{value_size}-byte workload");

            heap.audit().unwrap();
            let huge = heap.huge_audit().unwrap().expect("bench device carves a huge region");
            if via_huge {
                assert_eq!(huge.alloc_extents, 2, "one extent per live value");
                assert_eq!(huge.alloc_bytes, 2 * value_size);
            } else {
                assert_eq!(huge.alloc_extents, 0, "<= max_alloc values must stay on the buddy path");
                assert_eq!(huge.free_bytes, layout.huge_data_size());
            }

            // Release every value through the same allocator surface
            // the tree used; the huge region must coalesce back into a
            // single free extent covering the whole data region.
            for i in 0..2u64 {
                let value = tree.get(fnv(i)).expect("loaded key missing");
                PersistentAllocator::free(&*heap, value).unwrap();
            }
            heap.audit().unwrap();
            let huge = heap.huge_audit().unwrap().unwrap();
            assert_eq!(huge.alloc_extents, 0);
            assert_eq!(huge.free_extents, 1, "freed extents must coalesce");
            assert_eq!(huge.free_bytes, layout.huge_data_size());
        }
    }

    #[test]
    fn workload_e_scans_and_inserts() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
        let alloc: Arc<dyn PersistentAllocator> = AllocatorKind::Poseidon.build(dev);
        let config = YcsbConfig::new(2, 800, 300);
        let (tree, _) = run_load(&alloc, config);
        let e = run_workload_e(&tree, config);
        assert_eq!(e.total_ops, 600);
        assert!(tree.len() > 800);
    }

    #[test]
    fn read_heavy_workloads_run() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
        let alloc: Arc<dyn PersistentAllocator> = AllocatorKind::Poseidon.build(dev);
        let config = YcsbConfig::new(2, 1000, 400);
        let (tree, _) = run_load(&alloc, config);
        let stats_before = alloc.device().stats().write_ops;
        let b = run_workload_b(&tree, config);
        assert_eq!(b.total_ops, 800);
        let c = run_workload_c(&tree, config);
        assert_eq!(c.total_ops, 800);
        // Workload C performs no allocator writes beyond value reads.
        let _ = stats_before;
        assert_eq!(tree.len(), 1000);
    }
}
