//! The §7.2 microbenchmark: pairs of 100 allocations and 100 frees in
//! random order, per thread, with no inter-thread frees — the paper's
//! "ideal maximum performance" probe (Figure 6).

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_threads, RunResult, Xorshift};

/// Parameters of one microbenchmark run.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Allocation size in bytes (the paper sweeps 256 B .. 512 KiB).
    pub size: u64,
    /// Worker thread count.
    pub threads: usize,
    /// Total alloc+free operations per thread.
    pub ops_per_thread: u64,
    /// RNG seed (varied per thread internally).
    pub seed: u64,
}

impl MicroConfig {
    /// The paper's setting scaled to `ops_per_thread` total operations.
    pub fn new(size: u64, threads: usize, ops_per_thread: u64) -> MicroConfig {
        MicroConfig { size, threads, ops_per_thread, seed: 0xC0FFEE }
    }
}

const BATCH: usize = 100;

/// Runs the microbenchmark and returns throughput over alloc+free
/// operations.
///
/// # Panics
///
/// Panics if the allocator fails (the pool is sized by the caller to fit
/// the batch working set).
pub fn run<A: PersistentAllocator + ?Sized>(alloc: &A, config: MicroConfig) -> RunResult {
    run_threads(config.threads, |thread_index| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0x9E37));
        let mut live: Vec<u64> = Vec::with_capacity(BATCH);
        let mut ops = 0u64;
        while ops < config.ops_per_thread {
            // One batch: 100 allocations and 100 frees, randomly
            // interleaved (never freeing when nothing is live, never
            // allocating past the batch budget).
            let mut allocs_left = BATCH;
            let mut frees_left = BATCH;
            while allocs_left > 0 || frees_left > 0 {
                // Alloc when we must (nothing live to free, or frees done)
                // or on a coin flip; otherwise free a random live block.
                let do_alloc = allocs_left > 0 && (live.is_empty() || frees_left == 0 || rng.below(2) == 0);
                if do_alloc {
                    let offset = alloc
                        .alloc(config.size)
                        .unwrap_or_else(|e| panic!("{}: alloc({}) failed: {e}", alloc.name(), config.size));
                    live.push(offset);
                    allocs_left -= 1;
                } else {
                    let index = rng.below(live.len() as u64) as usize;
                    let offset = live.swap_remove(index);
                    alloc
                        .free(offset)
                        .unwrap_or_else(|e| panic!("{}: free({offset:#x}) failed: {e}", alloc.name()));
                    frees_left -= 1;
                }
                ops += 1;
            }
            // Frees can only lag allocations within the batch, so both
            // budgets drain together and the batch ends with `live` empty.
            debug_assert!(live.is_empty());
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn all_allocators_complete_the_batch_protocol() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
            let alloc = kind.build(dev);
            let result = run(&*alloc, MicroConfig::new(256, 2, 600));
            assert!(result.total_ops >= 2 * 600, "{}", kind.name());
            assert!(result.mops() > 0.0);
        }
    }

    #[test]
    fn poseidon_heap_is_consistent_after_the_run() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
        let heap = poseidon::PoseidonHeap::create(dev, poseidon::HeapConfig::new().with_subheaps(4)).unwrap();
        run(&heap, MicroConfig::new(1024, 4, 400));
        let audits = heap.audit().unwrap();
        for (sub, audit) in audits {
            assert_eq!(audit.alloc_bytes, 0, "sub-heap {sub} leaked");
        }
    }
}
