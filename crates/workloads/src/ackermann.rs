//! The Ackermann benchmark (§7.4): allocate a large cache region, fill it
//! with memoised Ackermann results, free it, repeat. The paper uses a
//! 1 GiB region and A(4, 5) repeated 100,000 times; the defaults here are
//! scaled down but configurable up to paper scale.

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_threads, RunResult};

/// Parameters of an Ackermann run.
#[derive(Debug, Clone, Copy)]
pub struct AckermannConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Allocate/compute/free iterations per thread.
    pub iterations: u64,
    /// Size of the memo-cache allocation (paper: 1 GiB).
    pub cache_bytes: u64,
    /// Ackermann `m` (kept ≤ 3; the memoised table bounds recursion).
    pub m: u64,
    /// Ackermann `n`.
    pub n: u64,
}

impl AckermannConfig {
    /// Scaled defaults: A(3, n) over a `cache_bytes` region.
    pub fn new(threads: usize, iterations: u64, cache_bytes: u64) -> AckermannConfig {
        AckermannConfig { threads, iterations, cache_bytes, m: 3, n: 6 }
    }
}

/// Memo-table width per `m` row (values of `n` that fit).
const N_COLUMNS: u64 = 256;

/// Computes A(m, n) memoised in the device-resident table at `base`
/// (slots hold `value + 1`; 0 = unknown).
fn ackermann(dev: &pmem::PmemDevice, base: u64, m: u64, n: u64) -> u64 {
    if m == 0 {
        return n + 1;
    }
    if n < N_COLUMNS {
        let slot = base + (m * N_COLUMNS + n) * 8;
        let cached: u64 = dev.read_pod(slot).expect("memo read");
        if cached != 0 {
            return cached - 1;
        }
        let value = if n == 0 {
            ackermann(dev, base, m - 1, 1)
        } else {
            let inner = ackermann(dev, base, m, n - 1);
            ackermann(dev, base, m - 1, inner)
        };
        dev.write_pod(slot, &(value + 1)).expect("memo write");
        return value;
    }
    // Outside the memo table: recurse unmemoised (m ≤ 3 keeps this sane).
    if n == 0 {
        ackermann(dev, base, m - 1, 1)
    } else {
        let inner = ackermann(dev, base, m, n - 1);
        ackermann(dev, base, m - 1, inner)
    }
}

/// Runs the benchmark. Operations counted = allocator calls (one alloc +
/// one free per iteration), matching the figure's allocator-throughput
/// framing.
///
/// # Panics
///
/// Panics on allocator failure or `m > 3` (unmemoisable blowup).
pub fn run<A: PersistentAllocator + ?Sized>(alloc: &A, config: AckermannConfig) -> RunResult {
    assert!(config.m <= 3, "A(m>3, _) does not terminate in benchmark time");
    assert!(config.cache_bytes >= 4 * N_COLUMNS * 8, "cache must hold the memo table");
    run_threads(config.threads, |_| {
        let mut ops = 0u64;
        let mut checksum = 0u64;
        for _ in 0..config.iterations {
            let base = alloc
                .alloc(config.cache_bytes)
                .unwrap_or_else(|e| panic!("{}: ackermann alloc failed: {e}", alloc.name()));
            checksum ^= ackermann(alloc.device(), base, config.m, config.n);
            alloc.device().persist(base, 4 * N_COLUMNS * 8).expect("persist memo");
            alloc.free(base).unwrap_or_else(|e| panic!("{}: ackermann free failed: {e}", alloc.name()));
            ops += 2;
        }
        // A(3, 6) = 509; keep the computation observable.
        assert_ne!(checksum, u64::MAX);
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn ackermann_values_are_correct() {
        let dev = PmemDevice::new(DeviceConfig::bench(16 << 20));
        assert_eq!(ackermann(&dev, 0, 0, 5), 6);
        assert_eq!(ackermann(&dev, 65536, 1, 5), 7);
        assert_eq!(ackermann(&dev, 131072, 2, 5), 13);
        assert_eq!(ackermann(&dev, 262144, 3, 5), 253);
    }

    #[test]
    fn all_allocators_run_the_loop() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
            let alloc = kind.build(dev);
            let result = run(&*alloc, AckermannConfig::new(2, 3, 64 * 1024));
            assert_eq!(result.total_ops, 2 * 3 * 2, "{}", kind.name());
        }
    }
}
