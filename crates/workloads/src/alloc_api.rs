//! The allocator interface every benchmark drives.
//!
//! All three allocators (Poseidon, PMDK-sim, Makalu-sim) run on the same
//! simulated device; this trait lets each workload swap them without
//! caring which is underneath. Implementations derive the executing CPU
//! from [`pmem::numa::current_cpu`], which the [`driver`](crate::driver)
//! pins per worker thread.

use std::sync::Arc;

use baselines::{BaselineError, MakaluSim, PmdkSim};
use pmem::contention::LockProfile;
use pmem::{numa, PmemDevice};
use poseidon::{PoseidonError, PoseidonHeap};

/// Why an allocation or free could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The pool is out of memory for this request.
    OutOfMemory,
    /// The allocator rejected the request (e.g. Poseidon detecting a
    /// double free) — baselines never produce this; that asymmetry *is*
    /// the paper's safety result.
    Rejected(String),
    /// Any other failure (device fault, corruption, ...).
    Other(String),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("out of memory"),
            AllocError::Rejected(why) => write!(f, "request rejected: {why}"),
            AllocError::Other(why) => write!(f, "allocator failure: {why}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl From<PoseidonError> for AllocError {
    fn from(err: PoseidonError) -> Self {
        match err {
            PoseidonError::NoSpace { .. } | PoseidonError::TooLarge { .. } => AllocError::OutOfMemory,
            PoseidonError::InvalidFree { .. } | PoseidonError::DoubleFree { .. } => {
                AllocError::Rejected(err.to_string())
            }
            other => AllocError::Other(other.to_string()),
        }
    }
}

impl From<BaselineError> for AllocError {
    fn from(err: BaselineError) -> Self {
        match err {
            BaselineError::OutOfMemory { .. } | BaselineError::TooLarge { .. } => AllocError::OutOfMemory,
            other => AllocError::Other(other.to_string()),
        }
    }
}

/// A persistent allocator under benchmark: allocations return device
/// offsets of usable payload, accessed through [`device`](Self::device).
pub trait PersistentAllocator: Send + Sync {
    /// Allocates `size` bytes for the calling thread (whose CPU comes
    /// from [`numa::current_cpu`]), returning the payload's device
    /// offset.
    ///
    /// # Errors
    ///
    /// [`AllocError`] on failure.
    fn alloc(&self, size: u64) -> Result<u64, AllocError>;

    /// Frees the allocation whose payload starts at `offset`.
    ///
    /// # Errors
    ///
    /// [`AllocError`] on failure (for allocators that validate at all).
    fn free(&self, offset: u64) -> Result<(), AllocError>;

    /// The device this allocator manages.
    fn device(&self) -> &Arc<PmemDevice>;

    /// Short display name ("poseidon", "pmdk", "makalu").
    fn name(&self) -> &'static str;

    /// Serial-time profile of the allocator's locks (for scalability
    /// projection); empty when the allocator is lock-free.
    fn contention_profile(&self) -> Vec<LockProfile> {
        Vec::new()
    }

    /// Zeroes the lock counters (between benchmark phases).
    fn reset_contention(&self) {}
}

impl PersistentAllocator for PoseidonHeap {
    fn alloc(&self, size: u64) -> Result<u64, AllocError> {
        let ptr = PoseidonHeap::alloc(self, size)?;
        Ok(self.raw_offset(ptr)?)
    }

    fn free(&self, offset: u64) -> Result<(), AllocError> {
        let ptr = self.nvmptr_of(offset)?;
        PoseidonHeap::free(self, ptr)?;
        Ok(())
    }

    fn device(&self) -> &Arc<PmemDevice> {
        PoseidonHeap::device(self)
    }

    fn name(&self) -> &'static str {
        "poseidon"
    }

    fn contention_profile(&self) -> Vec<LockProfile> {
        PoseidonHeap::contention_profile(self)
    }

    fn reset_contention(&self) {
        PoseidonHeap::reset_contention(self)
    }
}

impl PersistentAllocator for PmdkSim {
    fn alloc(&self, size: u64) -> Result<u64, AllocError> {
        Ok(PmdkSim::alloc(self, numa::current_cpu(), size)?)
    }

    fn free(&self, offset: u64) -> Result<(), AllocError> {
        Ok(PmdkSim::free(self, numa::current_cpu(), offset)?)
    }

    fn device(&self) -> &Arc<PmemDevice> {
        PmdkSim::device(self)
    }

    fn name(&self) -> &'static str {
        "pmdk"
    }

    fn contention_profile(&self) -> Vec<LockProfile> {
        PmdkSim::contention_profile(self)
    }

    fn reset_contention(&self) {
        PmdkSim::reset_contention(self)
    }
}

impl PersistentAllocator for MakaluSim {
    fn alloc(&self, size: u64) -> Result<u64, AllocError> {
        Ok(MakaluSim::alloc(self, numa::current_cpu(), size)?)
    }

    fn free(&self, offset: u64) -> Result<(), AllocError> {
        Ok(MakaluSim::free(self, numa::current_cpu(), offset)?)
    }

    fn device(&self) -> &Arc<PmemDevice> {
        MakaluSim::device(self)
    }

    fn name(&self) -> &'static str {
        "makalu"
    }

    fn contention_profile(&self) -> Vec<LockProfile> {
        MakaluSim::contention_profile(self)
    }

    fn reset_contention(&self) {
        MakaluSim::reset_contention(self)
    }
}

/// The three allocators under test, as trait objects over a shared
/// factory — convenience for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// The paper's contribution.
    Poseidon,
    /// PMDK `libpmemobj` model.
    Pmdk,
    /// Makalu model.
    Makalu,
}

impl AllocatorKind {
    /// All three, in the paper's presentation order.
    pub const ALL: [AllocatorKind; 3] = [AllocatorKind::Poseidon, AllocatorKind::Pmdk, AllocatorKind::Makalu];

    /// Instantiates this allocator on a fresh pool over `dev`.
    ///
    /// # Panics
    ///
    /// Panics if pool creation fails (benchmark setup is infallible by
    /// construction).
    pub fn build(self, dev: Arc<PmemDevice>) -> Arc<dyn PersistentAllocator> {
        match self {
            AllocatorKind::Poseidon => Arc::new(
                PoseidonHeap::create(dev, poseidon::HeapConfig::new()).expect("poseidon heap creation"),
            ),
            AllocatorKind::Pmdk => Arc::new(PmdkSim::new(dev).expect("pmdk pool creation")),
            AllocatorKind::Makalu => Arc::new(MakaluSim::new(dev).expect("makalu pool creation")),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Poseidon => "poseidon",
            AllocatorKind::Pmdk => "pmdk",
            AllocatorKind::Makalu => "makalu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::DeviceConfig;

    #[test]
    fn all_three_allocate_through_the_trait() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
            let alloc = kind.build(dev);
            let a = alloc.alloc(128).unwrap();
            let b = alloc.alloc(128).unwrap();
            assert_ne!(a, b, "{}", kind.name());
            alloc.device().write(a, &[1u8; 128]).unwrap();
            alloc.free(a).unwrap();
            alloc.free(b).unwrap();
        }
    }

    #[test]
    fn poseidon_rejections_map_to_rejected() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let a = alloc.alloc(64).unwrap();
        alloc.free(a).unwrap();
        assert!(matches!(alloc.free(a), Err(AllocError::Rejected(_))));
    }

    #[test]
    fn oom_maps_to_out_of_memory() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(2 << 20)));
        let alloc = AllocatorKind::Pmdk.build(dev);
        let mut last = Ok(0);
        for _ in 0..64 {
            last = alloc.alloc(200 * 1024);
            if last.is_err() {
                break;
            }
        }
        assert_eq!(last.unwrap_err(), AllocError::OutOfMemory);
    }
}
