//! The Larson server benchmark (§7.3, Figure 7).
//!
//! Larson & Krishnan's classic allocator stress: a shared slot array that
//! every thread mutates — pick a random slot, free whatever lives there
//! (often allocated by *another* thread), allocate a new object of random
//! size, store it. This exercises cross-thread frees, the case §5.7
//! identifies as Poseidon's only source of sub-heap lock contention.

use platform::sync::Mutex;

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_timed, RunResult, Xorshift};
use std::time::Duration;

/// Parameters of a Larson run.
#[derive(Debug, Clone, Copy)]
pub struct LarsonConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Run duration (the paper uses 10 s; scale down for CI).
    pub duration: Duration,
    /// Slots per thread in the shared array.
    pub slots_per_thread: usize,
    /// Minimum object size.
    pub min_size: u64,
    /// Maximum object size (exclusive).
    pub max_size: u64,
    /// RNG seed.
    pub seed: u64,
}

impl LarsonConfig {
    /// Paper-like defaults at the given scale.
    pub fn new(threads: usize, duration: Duration) -> LarsonConfig {
        LarsonConfig { threads, duration, slots_per_thread: 512, min_size: 8, max_size: 512, seed: 0x1A250 }
    }
}

/// Runs the benchmark; one operation = one free (if the slot was
/// occupied) plus one allocation.
///
/// # Panics
///
/// Panics on allocator failure.
pub fn run<A: PersistentAllocator + ?Sized>(alloc: &A, config: LarsonConfig) -> RunResult {
    let slots: Vec<Mutex<u64>> =
        (0..config.threads * config.slots_per_thread).map(|_| Mutex::new(0)).collect();
    let result = run_timed(config.threads, config.duration, |thread_index, stop| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0xABCD));
        let mut ops = 0u64;
        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
            let slot = &slots[rng.below(slots.len() as u64) as usize];
            let size = config.min_size + rng.below(config.max_size - config.min_size);
            let mut guard = slot.lock();
            if *guard != 0 {
                alloc.free(*guard).unwrap_or_else(|e| panic!("{}: larson free failed: {e}", alloc.name()));
            }
            let offset =
                alloc.alloc(size).unwrap_or_else(|e| panic!("{}: larson alloc failed: {e}", alloc.name()));
            *guard = offset;
            drop(guard);
            ops += 1;
        }
        ops
    });
    // Drain the slots so the allocator ends balanced (and Poseidon's audit
    // can verify zero leaks in tests).
    for slot in &slots {
        let offset = *slot.lock();
        if offset != 0 {
            let _ = alloc.free(offset);
        }
    }
    result
}

/// Operation-bounded variant (for the bench harness, which needs deterministic
/// work per iteration): every thread performs exactly `ops_per_thread`
/// slot replacements.
///
/// # Panics
///
/// Panics on allocator failure.
pub fn run_ops<A: PersistentAllocator + ?Sized>(
    alloc: &A,
    config: LarsonConfig,
    ops_per_thread: u64,
) -> RunResult {
    let slots: Vec<Mutex<u64>> =
        (0..config.threads * config.slots_per_thread).map(|_| Mutex::new(0)).collect();
    let result = crate::driver::run_threads(config.threads, |thread_index| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0xABCD));
        for _ in 0..ops_per_thread {
            let slot = &slots[rng.below(slots.len() as u64) as usize];
            let size = config.min_size + rng.below(config.max_size - config.min_size);
            let mut guard = slot.lock();
            if *guard != 0 {
                alloc.free(*guard).unwrap_or_else(|e| panic!("{}: larson free failed: {e}", alloc.name()));
            }
            *guard =
                alloc.alloc(size).unwrap_or_else(|e| panic!("{}: larson alloc failed: {e}", alloc.name()));
        }
        ops_per_thread
    });
    for slot in &slots {
        let offset = *slot.lock();
        if offset != 0 {
            let _ = alloc.free(offset);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn cross_thread_churn_on_all_allocators() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
            let alloc = kind.build(dev);
            let result = run(&*alloc, LarsonConfig::new(4, Duration::from_millis(100)));
            assert!(result.total_ops > 0, "{}", kind.name());
        }
    }

    #[test]
    fn poseidon_balanced_after_drain() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
        let heap = poseidon::PoseidonHeap::create(dev, poseidon::HeapConfig::new().with_subheaps(4)).unwrap();
        run(&heap, LarsonConfig::new(4, Duration::from_millis(100)));
        for (sub, audit) in heap.audit().unwrap() {
            assert_eq!(audit.alloc_bytes, 0, "sub-heap {sub} leaked after drain");
        }
    }
}
