//! A FAST-FAIR-style persistent B+-tree (Hwang et al., FAST '18), the
//! index §7.5 layers YCSB on.
//!
//! Nodes are persistent (allocated from the allocator under test, written
//! through the device); in-leaf insertion follows FAST-FAIR's discipline —
//! shift entries with ordered persisted stores, bump the entry count last
//! as the commit point. Concurrency: lookups and in-leaf writes share a
//! tree-level read lock plus a per-leaf lock; structural changes (splits,
//! root growth) take the tree write lock. That keeps the allocator — not
//! the index — as the contended resource, which is what Figure 9
//! measures.
//!
//! The root offset is volatile here (benchmarks never reload mid-run);
//! persistence-aware applications anchor it via their allocator's root
//! pointer, as `examples/kv_store.rs` demonstrates with Poseidon.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use platform::sync::{Mutex, MutexGuard, RwLock};
use pmem::pod_struct;

use crate::alloc_api::{AllocError, PersistentAllocator};

/// Keys per node.
pub const FANOUT: usize = 14;
/// Node footprint in bytes.
pub const NODE_BYTES: u64 = 248;

const LEAF_LOCKS: usize = 1024;

pod_struct! {
    /// One B+-tree node: header, sorted keys, and values (leaf) or
    /// children (internal; `ptrs[count]` is the rightmost child).
    pub struct Node {
        /// 1 for leaves.
        pub is_leaf: u32,
        /// Number of keys in use.
        pub count: u32,
        /// Right sibling (leaves only; 0 = none).
        pub next: u64,
        /// Sorted keys.
        pub keys: [u64; 14],
        /// Values (leaf) or children (internal, `count + 1` of them).
        pub ptrs: [u64; 15],
    }
}

const _: () = assert!(std::mem::size_of::<Node>() as u64 == NODE_BYTES);

/// Called under the tree write lock whenever the root node changes (root
/// growth), with the new root's device offset — before the new root
/// becomes visible to readers. Persistence-aware services anchor the
/// offset durably here (see [`kvserve`](crate::kvserve)), so a crash
/// leaves the anchor at most one structural change behind, a gap the
/// leaf-chain move-right fallback in [`FastFair::get`] covers.
pub type RootHook = Box<dyn Fn(u64) + Send + Sync>;

/// A concurrent persistent B+-tree over any [`PersistentAllocator`].
pub struct FastFair<A: PersistentAllocator + ?Sized> {
    alloc: Arc<A>,
    root: AtomicU64,
    tree_lock: RwLock<()>,
    leaf_locks: Box<[Mutex<()>]>,
    root_hook: Option<RootHook>,
}

impl<A: PersistentAllocator + ?Sized> std::fmt::Debug for FastFair<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastFair").field("root", &self.root.load(Ordering::Relaxed)).finish_non_exhaustive()
    }
}

impl<A: PersistentAllocator + ?Sized> FastFair<A> {
    /// Creates an empty tree whose nodes come from `alloc`.
    ///
    /// # Errors
    ///
    /// [`AllocError`] if the root leaf cannot be allocated.
    pub fn new(alloc: Arc<A>) -> Result<FastFair<A>, AllocError> {
        let root = Self::alloc_node(&alloc, true)?;
        Ok(Self::open(alloc, root))
    }

    /// Re-attaches to an existing tree whose root node lives at device
    /// offset `root`, as previously anchored via
    /// [`root_offset`](Self::root_offset) — the restart path of a
    /// persistent service. No nodes are allocated or written.
    pub fn open(alloc: Arc<A>, root: u64) -> FastFair<A> {
        FastFair {
            alloc,
            root: AtomicU64::new(root),
            tree_lock: RwLock::new(()),
            leaf_locks: (0..LEAF_LOCKS).map(|_| Mutex::new(())).collect(),
            root_hook: None,
        }
    }

    /// Installs a [`RootHook`] (must be called before the tree is
    /// shared).
    pub fn on_root_change(&mut self, hook: RootHook) {
        self.root_hook = Some(hook);
    }

    /// Device offset of the root node (for anchoring in a root pointer).
    pub fn root_offset(&self) -> u64 {
        self.root.load(Ordering::Acquire)
    }

    /// The allocator backing this tree's nodes.
    pub fn allocator(&self) -> &A {
        &self.alloc
    }

    fn alloc_node(alloc: &Arc<A>, is_leaf: bool) -> Result<u64, AllocError> {
        let off = alloc.alloc(NODE_BYTES)?;
        let node = Node { is_leaf: is_leaf as u32, ..Default::default() };
        let dev = alloc.device();
        dev.write_pod(off, &node).map_err(|e| AllocError::Other(e.to_string()))?;
        dev.persist(off, NODE_BYTES).map_err(|e| AllocError::Other(e.to_string()))?;
        Ok(off)
    }

    fn read_node(&self, off: u64) -> Node {
        self.alloc.device().read_pod(off).expect("node read")
    }

    fn write_range(&self, off: u64, node: &Node, from_byte: u64, len: u64) {
        use pmem::Pod;
        let bytes = node.as_bytes();
        let dev = self.alloc.device();
        dev.write(off + from_byte, &bytes[from_byte as usize..(from_byte + len) as usize])
            .expect("node write");
        dev.persist(off + from_byte, len).expect("node persist");
    }

    fn write_node(&self, off: u64, node: &Node) {
        self.write_range(off, node, 0, NODE_BYTES);
    }

    /// Descends to the leaf the internal structure routes `key` to
    /// (under a held tree lock). The result can be *left* of the owning
    /// leaf (a reopened stale root strands recent right-halves outside
    /// the anchored subtree) — never right of it — so callers must walk
    /// the sibling chain: via [`move_right`](Self::move_right) when they
    /// exclude in-leaf writers (the tree write lock), or via
    /// [`locked_leaf`](Self::locked_leaf) when they do not.
    fn find_leaf(&self, key: u64) -> u64 {
        let mut off = self.root.load(Ordering::Acquire);
        loop {
            let node = self.read_node(off);
            if node.is_leaf == 1 {
                return off;
            }
            off = node.ptrs[child_index(&node, key)];
        }
    }

    /// Finds and locks the leaf that owns `key`: descends, then walks
    /// the sibling chain under the per-leaf locks (one at a time — the
    /// locks are striped, so holding two could self-deadlock) until the
    /// locked leaf's high key admits `key`. Returns the leaf's offset,
    /// its held lock, and a consistent snapshot of the node.
    ///
    /// The move-right decision *must* be made under the leaf lock: a
    /// FAST-FAIR in-leaf insert shifts entries with individual persisted
    /// stores, so an unlocked read can tear mid-shift and observe
    /// `keys[count-1]` transiently holding the *previous* entry — a
    /// lower key. A reader chasing exactly that high key would conclude
    /// it lies further right, skip the owning leaf, and miss a present
    /// key.
    fn locked_leaf(&self, key: u64) -> (u64, MutexGuard<'_, ()>, Node) {
        let mut off = self.find_leaf(key);
        loop {
            let guard = self.leaf_lock(off).lock();
            let node = self.read_node(off);
            let count = node.count as usize;
            if count == 0 || node.next == 0 || key <= node.keys[count - 1] {
                return (off, guard, node);
            }
            off = node.next;
            drop(guard);
        }
    }

    /// B-link-style fallback: if `key` is beyond every key in `leaf`,
    /// follow the sibling chain right until a leaf that could own it.
    /// Reads nodes unlocked, so it is only sound where in-leaf writers
    /// are excluded — i.e. under the tree write lock (`insert_rec`);
    /// shared-lock paths use [`locked_leaf`](Self::locked_leaf) instead.
    ///
    /// In a quiesced, fully-anchored tree the descent already lands on
    /// the owning leaf and this loop runs zero iterations. It matters
    /// after a crash reopened the tree from an anchored root that is one
    /// structural change stale (the anchor persists *before* a new root
    /// becomes visible, so a crash in between strands the latest split's
    /// right sibling outside the anchored subtree): split right-halves
    /// are always durably linked into the leaf chain before their parent
    /// pointer exists, so chasing `next` recovers exactly the keys the
    /// stale upper structure cannot route to.
    fn move_right(&self, mut off: u64, leaf: &Node, key: u64) -> u64 {
        let mut node = *leaf;
        loop {
            let count = node.count as usize;
            if count == 0 || node.next == 0 || key <= node.keys[count - 1] {
                return off;
            }
            off = node.next;
            node = self.read_node(off);
        }
    }

    fn leaf_lock(&self, leaf: u64) -> &Mutex<()> {
        &self.leaf_locks[(leaf as usize / 64) % LEAF_LOCKS]
    }

    /// Looks up `key`, returning its value.
    pub fn get(&self, key: u64) -> Option<u64> {
        let _tree = self.tree_lock.read();
        let (_off, _leaf, leaf) = self.locked_leaf(key);
        leaf_search(&leaf, key).map(|i| leaf.ptrs[i])
    }

    /// Replaces `key`'s value, returning the old one (None = absent,
    /// nothing written).
    pub fn update(&self, key: u64, value: u64) -> Option<u64> {
        let _tree = self.tree_lock.read();
        let (leaf_off, _leaf, mut leaf) = self.locked_leaf(key);
        let index = leaf_search(&leaf, key)?;
        let old = leaf.ptrs[index];
        leaf.ptrs[index] = value;
        self.write_range(leaf_off, &leaf, ptr_byte(index), 8);
        Some(old)
    }

    /// Inserts `key -> value`. An existing key is overwritten (returns
    /// the old value like [`update`](Self::update)).
    ///
    /// # Errors
    ///
    /// [`AllocError`] if a split cannot allocate a node.
    pub fn insert(&self, key: u64, value: u64) -> Result<Option<u64>, AllocError> {
        // Fast path: in-leaf insertion under the shared lock.
        {
            let _tree = self.tree_lock.read();
            let (leaf_off, _leaf, mut leaf) = self.locked_leaf(key);
            if let Some(index) = leaf_search(&leaf, key) {
                let old = leaf.ptrs[index];
                leaf.ptrs[index] = value;
                self.write_range(leaf_off, &leaf, ptr_byte(index), 8);
                return Ok(Some(old));
            }
            if (leaf.count as usize) < FANOUT {
                self.leaf_insert_fastfair(leaf_off, &mut leaf, key, value);
                return Ok(None);
            }
        }
        // Slow path: structural change under the exclusive lock.
        let _tree = self.tree_lock.write();
        let root = self.root.load(Ordering::Acquire);
        if let Some((promoted, right)) = self.insert_rec(root, key, value)? {
            let new_root_off = Self::alloc_node(&self.alloc, false)?;
            let mut new_root = Node { is_leaf: 0, count: 1, ..Default::default() };
            new_root.keys[0] = promoted;
            new_root.ptrs[0] = root;
            new_root.ptrs[1] = right;
            self.write_node(new_root_off, &new_root);
            // Anchor before the new root becomes visible: the hook's
            // durable store may only ever point at a fully-written root,
            // and a crash inside the hook leaves the previous (still
            // valid) anchor in place.
            if let Some(hook) = &self.root_hook {
                hook(new_root_off);
            }
            self.root.store(new_root_off, Ordering::Release);
        }
        Ok(None)
    }

    /// FAST-FAIR in-leaf insertion: shift entries right with persisted
    /// stores (highest first), store the new entry, then bump `count`
    /// last — the 8-byte commit point.
    fn leaf_insert_fastfair(&self, leaf_off: u64, leaf: &mut Node, key: u64, value: u64) {
        let count = leaf.count as usize;
        let pos = leaf.keys[..count].partition_point(|&k| k < key);
        let mut i = count;
        while i > pos {
            leaf.keys[i] = leaf.keys[i - 1];
            leaf.ptrs[i] = leaf.ptrs[i - 1];
            self.write_range(leaf_off, leaf, key_byte(i), 8);
            self.write_range(leaf_off, leaf, ptr_byte(i), 8);
            i -= 1;
        }
        leaf.keys[pos] = key;
        leaf.ptrs[pos] = value;
        self.write_range(leaf_off, leaf, key_byte(pos), 8);
        self.write_range(leaf_off, leaf, ptr_byte(pos), 8);
        leaf.count += 1;
        self.write_range(leaf_off, leaf, 0, 8); // header (count) last
    }

    fn insert_rec(&self, node_off: u64, key: u64, value: u64) -> Result<Option<(u64, u64)>, AllocError> {
        let mut node = self.read_node(node_off);
        if node.is_leaf == 1 {
            // Same sibling-chain fallback as reads: after a crash
            // reopened a stale anchor, the descent can land left of the
            // owning leaf; inserting there would break the chain's key
            // order. Splits of a moved-to leaf promote into the descent
            // parent, which keeps that parent's separators locally
            // valid — the chain, not the upper structure, is the source
            // of truth.
            let owner = self.move_right(node_off, &node, key);
            if owner != node_off {
                node = self.read_node(owner);
            }
            let node_off = owner;
            if let Some(index) = leaf_search(&node, key) {
                node.ptrs[index] = value;
                self.write_range(node_off, &node, ptr_byte(index), 8);
                return Ok(None);
            }
            if (node.count as usize) < FANOUT {
                self.leaf_insert_fastfair(node_off, &mut node, key, value);
                return Ok(None);
            }
            // Split the leaf.
            let right_off = Self::alloc_node(&self.alloc, true)?;
            let mid = FANOUT / 2;
            let mut right =
                Node { is_leaf: 1, count: (FANOUT - mid) as u32, next: node.next, ..Default::default() };
            right.keys[..FANOUT - mid].copy_from_slice(&node.keys[mid..FANOUT]);
            right.ptrs[..FANOUT - mid].copy_from_slice(&node.ptrs[mid..FANOUT]);
            self.write_node(right_off, &right);
            node.count = mid as u32;
            node.next = right_off;
            self.write_range(node_off, &node, 0, 16); // count + next
            let promoted = right.keys[0];
            if key < promoted {
                self.leaf_insert_fastfair(node_off, &mut node, key, value);
            } else {
                self.leaf_insert_fastfair(right_off, &mut right, key, value);
            }
            return Ok(Some((promoted, right_off)));
        }
        let child_at = child_index(&node, key);
        let Some((promoted, right_child)) = self.insert_rec(node.ptrs[child_at], key, value)? else {
            return Ok(None);
        };
        if (node.count as usize) < FANOUT {
            self.internal_insert(node_off, &mut node, promoted, right_child);
            return Ok(None);
        }
        // Split the internal node: middle key moves up.
        let right_off = Self::alloc_node(&self.alloc, false)?;
        let mid = FANOUT / 2;
        let up = node.keys[mid];
        let mut right = Node { is_leaf: 0, count: (FANOUT - mid - 1) as u32, ..Default::default() };
        right.keys[..FANOUT - mid - 1].copy_from_slice(&node.keys[mid + 1..FANOUT]);
        right.ptrs[..FANOUT - mid].copy_from_slice(&node.ptrs[mid + 1..FANOUT + 1]);
        self.write_node(right_off, &right);
        node.count = mid as u32;
        self.write_range(node_off, &node, 0, 8);
        if promoted < up {
            self.internal_insert(node_off, &mut node, promoted, right_child);
        } else {
            self.internal_insert(right_off, &mut right, promoted, right_child);
        }
        Ok(Some((up, right_off)))
    }

    fn internal_insert(&self, node_off: u64, node: &mut Node, key: u64, right_child: u64) {
        let count = node.count as usize;
        let pos = node.keys[..count].partition_point(|&k| k < key);
        let mut i = count;
        while i > pos {
            node.keys[i] = node.keys[i - 1];
            node.ptrs[i + 1] = node.ptrs[i];
            i -= 1;
        }
        node.keys[pos] = key;
        node.ptrs[pos + 1] = right_child;
        node.count += 1;
        // Internal nodes are only mutated under the tree write lock, so a
        // single rewrite is race-free; ordering (entries before count)
        // still holds within the buffer.
        self.write_node(node_off, node);
    }

    /// Removes `key`, returning its value if present. FAST-FAIR-style
    /// lazy deletion: the entry is shifted out of its leaf (ordered
    /// persisted stores, count bumped last); internal nodes keep their
    /// separator keys and leaves are never merged — standard practice for
    /// persistent B+-trees, trading occupancy for simple crash
    /// consistency.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let _tree = self.tree_lock.read();
        let (leaf_off, _leaf, mut leaf) = self.locked_leaf(key);
        let index = leaf_search(&leaf, key)?;
        let old = leaf.ptrs[index];
        let count = leaf.count as usize;
        // Shift left with ordered persisted stores (lowest first), then
        // bump the count down as the commit point.
        let mut i = index;
        while i + 1 < count {
            leaf.keys[i] = leaf.keys[i + 1];
            leaf.ptrs[i] = leaf.ptrs[i + 1];
            self.write_range(leaf_off, &leaf, key_byte(i), 8);
            self.write_range(leaf_off, &leaf, ptr_byte(i), 8);
            i += 1;
        }
        leaf.count -= 1;
        self.write_range(leaf_off, &leaf, 0, 8);
        Some(old)
    }

    /// Collects up to `limit` key-value pairs with keys `>= start`, in
    /// ascending key order (the YCSB scan operation), walking the leaf
    /// sibling chain.
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        let _tree = self.tree_lock.read();
        let mut out = Vec::with_capacity(limit);
        let mut leaf_off = self.find_leaf(start);
        while leaf_off != 0 && out.len() < limit {
            let _leaf = self.leaf_lock(leaf_off).lock();
            let leaf = self.read_node(leaf_off);
            let count = leaf.count as usize;
            let from = leaf.keys[..count].partition_point(|&k| k < start);
            for i in from..count {
                if out.len() == limit {
                    break;
                }
                out.push((leaf.keys[i], leaf.ptrs[i]));
            }
            leaf_off = leaf.next;
        }
        out
    }

    /// In-order key count (test/diagnostic helper; walks leaf chain).
    pub fn len(&self) -> u64 {
        let _tree = self.tree_lock.read();
        let mut off = self.root.load(Ordering::Acquire);
        loop {
            let node = self.read_node(off);
            if node.is_leaf == 1 {
                break;
            }
            off = node.ptrs[0];
        }
        let mut total = 0;
        while off != 0 {
            let node = self.read_node(off);
            total += node.count as u64;
            off = node.next;
        }
        total
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn key_byte(index: usize) -> u64 {
    16 + index as u64 * 8
}

fn ptr_byte(index: usize) -> u64 {
    16 + 14 * 8 + index as u64 * 8
}

fn leaf_search(node: &Node, key: u64) -> Option<usize> {
    let count = node.count as usize;
    let pos = node.keys[..count].partition_point(|&k| k < key);
    (pos < count && node.keys[pos] == key).then_some(pos)
}

fn child_index(node: &Node, key: u64) -> usize {
    node.keys[..node.count as usize].partition_point(|&k| k <= key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};

    fn tree() -> FastFair<dyn PersistentAllocator> {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        FastFair::new(alloc).unwrap()
    }

    #[test]
    fn insert_get_roundtrip_with_splits() {
        let t = tree();
        for i in 0..2000u64 {
            t.insert(i * 7 + 1, i).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for i in 0..2000u64 {
            assert_eq!(t.get(i * 7 + 1), Some(i), "key {}", i * 7 + 1);
        }
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn reverse_and_random_insert_orders() {
        let t = tree();
        let mut keys: Vec<u64> = (0..1500).map(|i| i * 13 + 5).collect();
        // Deterministic shuffle.
        let mut state = 99u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (state as usize) % (i + 1));
        }
        for &k in &keys {
            t.insert(k, k * 2).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(k * 2));
        }
        // Leaf chain is sorted.
        assert_eq!(t.len(), 1500);
    }

    #[test]
    fn update_swaps_values() {
        let t = tree();
        t.insert(42, 1).unwrap();
        assert_eq!(t.update(42, 2), Some(1));
        assert_eq!(t.get(42), Some(2));
        assert_eq!(t.update(404, 9), None);
        // Insert over an existing key behaves like update.
        assert_eq!(t.insert(42, 3).unwrap(), Some(2));
        assert_eq!(t.get(42), Some(3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(tree());
        platform::thread::scope(|s| {
            for thread in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    pmem::numa::set_current_cpu(thread as usize);
                    for i in 0..500u64 {
                        let key = thread * 10_000 + i;
                        t.insert(key, key + 1).unwrap();
                        assert_eq!(t.get(key), Some(key + 1));
                    }
                });
            }
        });
        assert_eq!(t.len(), 2000);
        for thread in 0..4u64 {
            for i in 0..500u64 {
                let key = thread * 10_000 + i;
                assert_eq!(t.get(key), Some(key + 1));
            }
        }
    }

    #[test]
    fn get_of_leaf_high_key_survives_concurrent_in_leaf_shifts() {
        // Regression: the move-right decision must be made under the
        // leaf lock. An in-leaf insert shifts entries right with
        // individual persisted stores, so an unlocked reader could
        // observe the leaf's high key transiently replaced by its left
        // neighbour, conclude the key lives further right, skip the
        // owning leaf, and report a present key as missing.
        let t = Arc::new(tree());
        for i in 1..=15u64 {
            t.insert(i * 10, i * 100).unwrap(); // two leaves: [10..70] [80..150]
        }
        assert_eq!(t.get(70), Some(700));
        let readers_left = Arc::new(AtomicU64::new(2));
        platform::thread::scope(|s| {
            // Writer: churn a low slot of the left leaf so its upper
            // entries — the high key 70 included — keep shifting. Runs
            // until the last reader finishes.
            let writer_t = t.clone();
            let writer_gate = readers_left.clone();
            s.spawn(move || {
                pmem::numa::set_current_cpu(0);
                let mut i = 0u64;
                while writer_gate.load(Ordering::Acquire) > 0 {
                    writer_t.insert(15, i).unwrap();
                    assert_eq!(writer_t.remove(15), Some(i));
                    i += 1;
                }
            });
            for reader in 0..2 {
                let t = t.clone();
                let readers_left = readers_left.clone();
                s.spawn(move || {
                    pmem::numa::set_current_cpu(1 + reader);
                    // Decrement on the way out even if an assert fires,
                    // so the writer always terminates and the panic
                    // propagates instead of deadlocking the scope.
                    struct Done(Arc<AtomicU64>);
                    impl Drop for Done {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::Release);
                        }
                    }
                    let _done = Done(readers_left);
                    for _ in 0..60_000 {
                        assert_eq!(t.get(70), Some(700), "leaf high key vanished mid-shift");
                    }
                });
            }
        });
        assert_eq!(t.get(70), Some(700));
        assert_eq!(t.get(15), None);
    }

    #[test]
    fn remove_deletes_and_scan_orders() {
        let t = tree();
        for i in 0..500u64 {
            t.insert(i * 2, i).unwrap();
        }
        assert_eq!(t.remove(100), Some(50));
        assert_eq!(t.remove(100), None);
        assert_eq!(t.get(100), None);
        assert_eq!(t.len(), 499);
        // Neighbours survive.
        assert_eq!(t.get(98), Some(49));
        assert_eq!(t.get(102), Some(51));

        // Scan across leaf boundaries.
        let scanned = t.scan(90, 10);
        assert_eq!(scanned.len(), 10);
        let keys: Vec<u64> = scanned.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![90, 92, 94, 96, 98, 102, 104, 106, 108, 110]);
        // Scan past the end clips.
        assert_eq!(t.scan(997, 10), vec![(998, 499)]);
        assert!(t.scan(2000, 10).is_empty());
    }

    #[test]
    fn remove_everything_then_reinsert() {
        let t = tree();
        for i in 0..300u64 {
            t.insert(i, i).unwrap();
        }
        for i in 0..300u64 {
            assert_eq!(t.remove(i), Some(i), "remove {i}");
        }
        assert_eq!(t.len(), 0);
        for i in 0..300u64 {
            t.insert(i, i + 1).unwrap();
        }
        for i in 0..300u64 {
            assert_eq!(t.get(i), Some(i + 1));
        }
    }

    #[test]
    fn stale_root_reopen_reaches_every_key() {
        // Reopening from ANY historical root anchor must still find every
        // key: splits link right-halves into the leaf chain before any
        // parent pointer exists, and lookups move right along the chain
        // when the (stale) upper structure routes them short. This is the
        // crash window a service's root anchor can be behind by.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let t = FastFair::new(alloc.clone()).unwrap();
        let mut historical = vec![t.root_offset()];
        for i in 0..3000u64 {
            t.insert(i * 11 + 3, i).unwrap();
            if *historical.last().unwrap() != t.root_offset() {
                historical.push(t.root_offset());
            }
        }
        assert!(historical.len() >= 3, "root never grew; test is vacuous");
        for &old_root in &historical {
            let stale = FastFair::open(alloc.clone(), old_root);
            for i in (0..3000u64).step_by(17) {
                assert_eq!(stale.get(i * 11 + 3), Some(i), "key lost from stale root {old_root:#x}");
            }
            // Inserts through a stale root stay chain-ordered (the
            // resumed-service path): new keys are findable and scans
            // stay sorted.
            stale.insert(u64::MAX - 1, 77).unwrap();
            assert_eq!(stale.get(u64::MAX - 1), Some(77));
            let tail = stale.scan(3000 * 11, 50);
            let mut sorted = tail.clone();
            sorted.sort_unstable();
            assert_eq!(tail, sorted, "sibling-chain order broken after stale-root insert");
            assert_eq!(stale.remove(u64::MAX - 1), Some(77));
        }
    }

    #[test]
    fn root_hook_sees_every_root_change_before_visibility() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let mut t = FastFair::new(alloc).unwrap();
        let anchored = Arc::new(platform::sync::Mutex::new(vec![t.root_offset()]));
        let sink = anchored.clone();
        t.on_root_change(Box::new(move |root| sink.lock().push(root)));
        for i in 0..2000u64 {
            t.insert(i * 5, i).unwrap();
            // The anchor is never behind the visible root.
            assert_eq!(*anchored.lock().last().unwrap(), t.root_offset());
        }
        assert!(anchored.lock().len() >= 3, "hook never fired on root growth");
    }

    #[test]
    fn works_on_all_allocators() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(128 << 20)));
            let t = FastFair::new(kind.build(dev)).unwrap();
            for i in 0..300u64 {
                t.insert(i, i).unwrap();
            }
            for i in 0..300u64 {
                assert_eq!(t.get(i), Some(i), "{}", kind.name());
            }
        }
    }
}
