//! A persistent KV *service* soak harness — traffic-shaped, with live
//! fault events.
//!
//! The figure benchmarks ([`ycsb`](crate::ycsb)) measure steady-state
//! throughput of one phase at a time. This module instead runs the shape
//! a real service sees, all at once: `threads` clients issue a mixed
//! zipfian read/update/insert/scan stream against `shards` independent
//! [`FastFair`] trees sharing one [`PoseidonHeap`], while a coordinator
//! thread injects the three events a long-lived deployment must survive:
//!
//! * **kill-and-resume** — the heap is dropped mid-load without
//!   [`close`](PoseidonHeap::close) (a crash), the device's unpersisted
//!   lines are scrambled, and the service reopens via
//!   [`PoseidonHeap::load`]; every acknowledged operation must still be
//!   there, and reopen time must reflect Poseidon's O(metadata) recovery,
//!   not an O(data) rescan;
//! * **live media faults** — value blocks are poisoned while serving;
//!   workers heal damaged values by rewriting them through the self-heal
//!   path (alloc fresh, swap, free the damaged block, which the budgeted
//!   [`scrub_step`](PoseidonHeap::scrub_step) then quarantines);
//! * **online grow** — the pool grows under load; workers that hit
//!   `NoSpace` raise a pressure flag and retry until the grown capacity
//!   absorbs the spill.
//!
//! Every operation's latency lands in a per-thread, per-class lock-free
//! [`LatencyHistogram`](crate::histogram::LatencyHistogram); the
//! coordinator merges them into periodic interval snapshots so a
//! regression shows up as a moving p99/p999, not just a final average.
//!
//! # Durability contract
//!
//! The service heap always runs with the DRAM cache disabled
//! ([`HeapConfig::without_cache`]): every allocation is committed in NVMM
//! when `alloc` returns, so an operation is *acknowledged* (and must
//! survive a kill) the moment its tree call returns. With the cache on,
//! checked-out blocks only become crash-safe at the next
//! [`set_root`](PoseidonHeap::set_root)/`close` publish, which is a
//! checkpointed model, not a per-op service model.
//!
//! Shard roots live in a small persistent *directory block* anchored as
//! the heap root; [`FastFair`]'s root-change hook persists a shard's new
//! root into its directory slot *before* the new root becomes visible,
//! and lookups recover from a momentarily-stale anchored root by moving
//! right along the persistent leaf chain.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use platform::sync::RwLock;
use pmem::{CrashMode, DeviceConfig, PmemDevice, PmemError};
use poseidon::{HeapConfig, HeapHealth, PoseidonHeap};

use crate::alloc_api::{AllocError, PersistentAllocator};
use crate::fastfair::FastFair;
use crate::histogram::{HistogramSnapshot, LatencyHistogram, LatencySummary};
use crate::ycsb::{fnv, Zipfian};

/// First word of the shard-root directory block.
const DIR_MAGIC: u64 = 0x4B56_5345_5256_4531; // "KVSERVE1"
/// Salt folded into the second payload word of every value.
const VALUE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Bytes of each value actually written and verified.
const PAYLOAD_BYTES: u64 = 16;
/// Ops between a worker refreshing its zipfian rank space.
const ZIPF_REFRESH: u64 = 64;
/// Bounded retries for transient per-op failures before declaring the
/// service dead.
const RETRY_LIMIT: u64 = 20_000;

/// One class of client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Point lookup plus payload verification.
    Read,
    /// Allocate a fresh value, swap it in, free the old one.
    Update,
    /// Insert a never-seen key with a fresh value.
    Insert,
    /// Short ascending range scan along the leaf chain.
    Scan,
}

impl OpClass {
    /// Every class, in histogram-index order.
    pub const ALL: [OpClass; 4] = [OpClass::Read, OpClass::Update, OpClass::Insert, OpClass::Scan];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Read => 0,
            OpClass::Update => 1,
            OpClass::Insert => 2,
            OpClass::Scan => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Update => "update",
            OpClass::Insert => "insert",
            OpClass::Scan => "scan",
        }
    }
}

/// A fault event the coordinator injects mid-soak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakEvent {
    /// Crash the service (drop without close, scramble unpersisted
    /// lines) and resume it, verifying acknowledged data and timing the
    /// reopen.
    Kill,
    /// Poison live value blocks while serving.
    Poison,
    /// Grow the pool online while serving.
    Grow,
}

impl SoakEvent {
    /// Parses `"kill"`, `"poison"` or `"grow"`.
    pub fn parse(s: &str) -> Option<SoakEvent> {
        match s {
            "kill" => Some(SoakEvent::Kill),
            "poison" => Some(SoakEvent::Poison),
            "grow" => Some(SoakEvent::Grow),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SoakEvent::Kill => "kill",
            SoakEvent::Poison => "poison",
            SoakEvent::Grow => "grow",
        }
    }
}

/// Parameters of a soak run.
#[derive(Debug, Clone)]
pub struct KvServeConfig {
    /// Client worker threads.
    pub threads: usize,
    /// Independent [`FastFair`] shards (keys route by hash).
    pub shards: usize,
    /// Keys loaded before the soak starts.
    pub load_keys: u64,
    /// Mixed operations per worker thread.
    pub ops_per_thread: u64,
    /// Value allocation size in bytes (>= 16; only the first 16 carry
    /// the verified payload).
    pub value_size: u64,
    /// Size-class drift of value allocations: sizes ramp from
    /// `value_size` up through `value_size << spread` across the
    /// expected allocation count, modelling values that grow over the
    /// service's lifetime. Updates then free small-class blocks that
    /// are never reallocated — the freed buddies pile up side by side,
    /// which is exactly the coalescing debt the maintenance engine
    /// retires. `0` (the default) keeps every value the same size.
    pub value_spread: u64,
    /// Zipfian skew of the key popularity.
    pub theta: f64,
    /// Permille of operations that are updates.
    pub update_permille: u64,
    /// Permille of operations that are inserts.
    pub insert_permille: u64,
    /// Permille of operations that are scans (the rest are reads).
    pub scan_permille: u64,
    /// RNG seed (every worker derives its own stream from it).
    pub seed: u64,
    /// Initial device capacity in bytes.
    pub capacity: u64,
    /// Online-growth ceiling in bytes (equal to `capacity` = not
    /// growable).
    pub max_capacity: u64,
    /// Sub-heaps of the service heap.
    pub subheaps: u16,
    /// Events to inject, fired in order at evenly spaced progress
    /// thresholds.
    pub events: Vec<SoakEvent>,
    /// Latency-interval snapshots to take over the run.
    pub intervals: u64,
    /// Crash persistency mode used by kill events.
    pub crash_mode: CrashMode,
    /// Acknowledged keys verified after each kill (`0` = every one).
    pub verify_sample: u64,
    /// Committed value blocks poisoned by each poison event.
    pub poison_keys: u64,
    /// Units examined per coordinator scrub tick.
    pub scrub_budget: usize,
    /// Work units per coordinator maintenance tick (`0` disables the
    /// maintenance engine for the run — the comparison baseline).
    pub maint_budget: usize,
    /// Grow early when the continuously-tracked largest free huge extent
    /// ([`PoseidonHeap::huge_largest_free`]) drops below this many bytes
    /// (`0` disables the headroom trigger; `NoSpace` pressure still
    /// grows). Requires [`SoakEvent::Grow`] in the event list.
    pub huge_headroom: u64,
}

impl KvServeConfig {
    /// Service-shaped defaults at a given scale: 60 % reads, 25 %
    /// updates, 10 % inserts, 5 % scans, theta 0.99, 128 MiB pool
    /// growable to 512 MiB, all three events.
    pub fn new(threads: usize, shards: usize, load_keys: u64, ops_per_thread: u64) -> KvServeConfig {
        KvServeConfig {
            threads,
            shards,
            load_keys,
            ops_per_thread,
            value_size: 100,
            value_spread: 0,
            theta: 0.99,
            update_permille: 250,
            insert_permille: 100,
            scan_permille: 50,
            seed: 0x5EA5_0A4B,
            capacity: 128 << 20,
            max_capacity: 512 << 20,
            subheaps: 8,
            events: vec![SoakEvent::Kill, SoakEvent::Poison, SoakEvent::Grow],
            intervals: 8,
            crash_mode: CrashMode::Strict,
            verify_sample: 0,
            poison_keys: 4,
            scrub_budget: 4,
            maint_budget: 4,
            huge_headroom: 0,
        }
    }

    /// Replaces the event list.
    pub fn with_events(mut self, events: Vec<SoakEvent>) -> KvServeConfig {
        self.events = events;
        self
    }

    /// Sets initial capacity and growth ceiling.
    pub fn with_capacity(mut self, capacity: u64, max: u64) -> KvServeConfig {
        self.capacity = capacity;
        self.max_capacity = max.max(capacity);
        self
    }

    /// Sets the per-tick maintenance budget (`0` = engine off).
    pub fn with_maint(mut self, budget: usize) -> KvServeConfig {
        self.maint_budget = budget;
        self
    }

    /// Sets the huge-extent headroom below which the grow event fires
    /// early (`0` = disabled).
    pub fn with_huge_headroom(mut self, bytes: u64) -> KvServeConfig {
        self.huge_headroom = bytes;
        self
    }

    /// Sets the value size-class spread (`0` = every value equal-sized).
    pub fn with_value_spread(mut self, spread: u64) -> KvServeConfig {
        self.value_spread = spread;
        self
    }

    fn total_ops(&self) -> u64 {
        self.threads as u64 * self.ops_per_thread
    }
}

/// One point of the fragmentation-over-time series: the heap's
/// [`fragmentation`](PoseidonHeap::fragmentation) totals sampled by the
/// coordinator at an interval edge (plus one final sample after the run
/// quiesces).
#[derive(Debug, Clone, Copy)]
pub struct FragSample {
    /// Global op count when the sample was taken.
    pub at_op: u64,
    /// Total free bytes across sub-heaps and the huge region.
    pub free_bytes: u64,
    /// Free bytes outside the largest coalescable runs, summed per
    /// class — the headline fragmentation figure.
    pub frag_bytes: u64,
    /// Largest single free buddy block across the sub-heaps.
    pub largest_block: u64,
    /// Largest free huge extent (`None`: no usable huge region).
    pub huge_largest_free: Option<u64>,
}

/// Latency summaries of one snapshot interval.
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Interval ordinal (0-based).
    pub index: u64,
    /// Wall-clock time since the previous interval edge.
    pub elapsed: Duration,
    /// Operations completed in the interval, across all classes.
    pub ops: u64,
    /// Per-class latency summaries of the interval's operations only.
    pub classes: Vec<(OpClass, LatencySummary)>,
}

/// What one injected event observed.
#[derive(Debug, Clone)]
pub enum EventReport {
    /// A kill-and-resume cycle.
    Kill {
        /// Global op count when the event fired.
        at_op: u64,
        /// Time from crash to the service accepting traffic again
        /// (recovery load + shard reopen, excluding verification).
        reopen: Duration,
        /// Keys live (acknowledged) at the crash.
        population: u64,
        /// Acknowledged keys re-read and checksum-verified after reopen.
        verified: u64,
    },
    /// A live poison injection.
    Poison {
        /// Global op count when the event fired.
        at_op: u64,
        /// Value blocks poisoned.
        keys: u64,
    },
    /// An online grow.
    Grow {
        /// Global op count when the event fired.
        at_op: u64,
        /// Capacity before.
        old_capacity: u64,
        /// Capacity after.
        new_capacity: u64,
        /// Sub-heaps materialised by the grow.
        new_subheaps: u16,
    },
}

/// Soft-failure accounting of a soak run (hard failures panic).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoakCounters {
    /// Damaged values healed by rewrite (read path).
    pub healed: u64,
    /// Freshly allocated blocks returned to the free pool because their
    /// payload lines were already poisoned.
    pub dirty_allocs: u64,
    /// Operations that retried after a transient `NoSpace` (resolved by
    /// an online grow).
    pub space_stalls: u64,
    /// Reads that retried because a concurrent update recycled the value
    /// block mid-read.
    pub read_races: u64,
    /// Frees of replaced values that failed (damaged record paths); the
    /// block leaks, the scrubber owns it from there.
    pub free_errors: u64,
}

/// The result of [`run_soak`].
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Total operations completed (always `threads * ops_per_thread`).
    pub ops: u64,
    /// Wall-clock soak duration (excluding the load phase).
    pub elapsed: Duration,
    /// Keys loaded before the soak.
    pub loaded: u64,
    /// Keys inserted during the soak.
    pub inserted: u64,
    /// Per-interval latency summaries.
    pub intervals: Vec<IntervalReport>,
    /// Whole-run per-class latency summaries.
    pub totals: Vec<(OpClass, LatencySummary)>,
    /// One report per injected event, in firing order.
    pub events: Vec<EventReport>,
    /// Fragmentation-over-time series (one sample per interval edge plus
    /// a final post-quiesce sample).
    pub fragmentation: Vec<FragSample>,
    /// Soft-failure accounting.
    pub counters: SoakCounters,
    /// Heap health at the end of the run.
    pub health: HeapHealth,
    /// Blocks the final audit found in durable quarantine. Unlike the
    /// volatile `health` counters this survives kill-and-resume, so it
    /// is what the poison-balance invariant checks against.
    pub quarantined_blocks: u64,
    /// Final tree population summed over shards.
    pub population: u64,
}

impl SoakReport {
    /// Asserts the cross-cutting invariants every soak must satisfy:
    /// all ops accounted, every configured event fired and reported,
    /// post-fault damage traced in health accounting, and latency totals
    /// consistent with the op ledger.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn assert_invariants(&self, config: &KvServeConfig) {
        assert_eq!(self.ops, config.total_ops(), "ops lost or double-counted");
        assert_eq!(self.events.len(), config.events.len(), "an event failed to fire");
        let recorded: u64 = self.totals.iter().map(|(_, s)| s.count).sum();
        assert_eq!(recorded, self.ops, "histogram counts disagree with the op counter");
        assert!(!self.fragmentation.is_empty(), "fragmentation series never sampled");
        for sample in &self.fragmentation {
            assert!(sample.frag_bytes <= sample.free_bytes, "fragmented bytes exceed free bytes");
        }
        if config.maint_budget > 0 {
            assert!(self.health.maint_steps > 0, "maintenance engine enabled but never stepped");
        }
        assert_eq!(self.population, self.loaded + self.inserted, "population drifted from the ack ledger");
        for (event, report) in config.events.iter().zip(&self.events) {
            let matches = matches!(
                (event, report),
                (SoakEvent::Kill, EventReport::Kill { .. })
                    | (SoakEvent::Poison, EventReport::Poison { .. })
                    | (SoakEvent::Grow, EventReport::Grow { .. })
            );
            assert!(matches, "event {event:?} produced mismatched report {report:?}");
        }
        if config.events.contains(&SoakEvent::Poison) {
            assert!(
                self.health.live_media_errors() > 0
                    || self.health.blocks_quarantined_live > 0
                    || self.counters.healed > 0,
                "poison event left no trace in health accounting: {:?}",
                self.health
            );
            // Balanced books, per damaged block rather than per heal
            // (racing workers can heal the same key twice, and the
            // second heal frees the first's clean replacement): each
            // poisoned line damages exactly one value block, and that
            // block must end the run in durable quarantine — routed
            // there when its holder freed it, or swept by the final
            // scrub if it was free when the poison landed — unless the
            // free itself failed and was counted. A shortfall means a
            // damaged block went back into circulation.
            let poisoned: u64 = self
                .events
                .iter()
                .map(|e| if let EventReport::Poison { keys, .. } = e { *keys } else { 0 })
                .sum();
            assert!(
                self.quarantined_blocks + self.counters.free_errors >= poisoned,
                "quarantine accounting out of balance: {poisoned} blocks poisoned but only {} \
                 quarantined (+{} failed frees)",
                self.quarantined_blocks,
                self.counters.free_errors
            );
        }
    }
}

/// The live service: replaced wholesale by a kill-and-resume.
struct ServiceState {
    heap: Arc<PoseidonHeap>,
    shards: Vec<Arc<FastFair<PoseidonHeap>>>,
}

/// Everything workers and the coordinator share.
struct Soak {
    config: KvServeConfig,
    dev: Arc<PmemDevice>,
    state: RwLock<Option<ServiceState>>,
    /// Per-worker count of fully acknowledged (durable) inserts.
    completed: Vec<AtomicU64>,
    /// Sum of `completed` (the zipfian key-space watermark).
    inserted_total: AtomicU64,
    /// Global allocation sequence driving the `value_spread` size cycle.
    alloc_seq: AtomicU64,
    ops_done: AtomicU64,
    workers_done: AtomicU64,
    /// Set by a worker that hit `NoSpace`; cleared by a grow.
    pressure: AtomicBool,
    /// `[worker][class]` latency histograms.
    hists: Vec<Vec<LatencyHistogram>>,
    healed: AtomicU64,
    dirty_allocs: AtomicU64,
    space_stalls: AtomicU64,
    read_races: AtomicU64,
    free_errors: AtomicU64,
}

impl Soak {
    fn heap_config(&self) -> HeapConfig {
        // Service contract: no DRAM cache, so every returning op is
        // already durable (see the module docs).
        HeapConfig::new().with_subheaps(self.config.subheaps).without_cache()
    }

    fn shard_of(&self, key: u64) -> usize {
        (key % self.config.shards as u64) as usize
    }

    fn stripe_base(&self, worker: usize) -> u64 {
        self.config.load_keys + worker as u64 * self.config.ops_per_thread
    }

    /// Maps a zipfian rank over `[0, load_keys + inserted_total)` to a
    /// key id that is guaranteed acknowledged: ranks past the loaded
    /// range address per-worker insert stripes round-robin, falling back
    /// to the loaded range when a stripe has not caught up to the rank.
    fn sample_id(&self, rank: u64) -> u64 {
        if rank < self.config.load_keys {
            return rank;
        }
        let past = rank - self.config.load_keys;
        let worker = (past % self.config.threads as u64) as usize;
        let index = past / self.config.threads as u64;
        if index < self.completed[worker].load(Ordering::Acquire) {
            self.stripe_base(worker) + index
        } else {
            rank % self.config.load_keys
        }
    }

    /// Writes and persists the 16-byte checksummed payload of `key`.
    fn write_payload(&self, offset: u64, key: u64) -> Result<(), PmemError> {
        self.dev.write_pod(offset, &key)?;
        self.dev.write_pod(offset + 8, &(key ^ VALUE_SALT))?;
        self.dev.persist(offset, PAYLOAD_BYTES)
    }

    /// Reads the payload at `offset`, checking it belongs to `key`.
    fn payload_matches(&self, offset: u64, key: u64) -> Result<bool, PmemError> {
        let a: u64 = self.dev.read_pod(offset)?;
        let b: u64 = self.dev.read_pod(offset + 8)?;
        Ok(a == key && b == (key ^ VALUE_SALT))
    }

    /// Allocates a value block and commits `key`'s payload into it,
    /// riding out `NoSpace` (pressure + retry, resolved by an online
    /// grow) and already-poisoned fresh blocks (freed back — the
    /// scrubber will quarantine them — and retried on other capacity).
    /// Size of the next value allocation: `value_size` ramped across
    /// `value_spread + 1` buddy classes over the run's expected
    /// allocation count (load + one per op is the upper bound; reads
    /// and scans allocate nothing, so late steps may not be reached).
    fn value_size(&self) -> u64 {
        let spread = self.config.value_spread;
        if spread == 0 {
            return self.config.value_size;
        }
        let expected = self.config.load_keys + self.config.total_ops();
        let ramp = (expected / (spread + 1)).max(1);
        let step = (self.alloc_seq.fetch_add(1, Ordering::Relaxed) / ramp).min(spread);
        self.config.value_size << step
    }

    fn alloc_value(&self, heap: &PoseidonHeap, key: u64) -> u64 {
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            assert!(attempts <= RETRY_LIMIT, "allocation retries exhausted for key {key:#x}");
            match PersistentAllocator::alloc(heap, self.value_size()) {
                Ok(offset) => match self.write_payload(offset, key) {
                    Ok(()) => return offset,
                    Err(PmemError::Uncorrectable { .. }) => {
                        // The free pool handed us a block whose lines are
                        // already poisoned. Put it back where the
                        // scrubber hunts, ask for another, and make
                        // progress deterministic by scrubbing inline.
                        self.dirty_allocs.fetch_add(1, Ordering::Relaxed);
                        if PersistentAllocator::free(heap, offset).is_err() {
                            self.free_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        let _ = heap.scrub_step(usize::MAX);
                    }
                    Err(e) => panic!("payload write failed: {e}"),
                },
                Err(AllocError::OutOfMemory) => {
                    assert!(
                        self.config.events.contains(&SoakEvent::Grow),
                        "pool exhausted and no grow event configured"
                    );
                    self.space_stalls.fetch_add(1, Ordering::Relaxed);
                    self.pressure.store(true, Ordering::Release);
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) => panic!("value allocation failed: {e}"),
            }
        }
    }

    /// Rewrites `key`'s damaged value through the self-heal path: fresh
    /// committed block in, tree pointer swapped, damaged block freed for
    /// the scrubber to quarantine.
    fn heal_value(&self, st: &ServiceState, key: u64) {
        let fresh = self.alloc_value(&st.heap, key);
        match st.shards[self.shard_of(key)].update(key, fresh) {
            Some(old) if old != fresh => {
                if PersistentAllocator::free(&*st.heap, old).is_err() {
                    self.free_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(_) => {}
            None => panic!("healing a key that vanished: {key:#x}"),
        }
        self.healed.fetch_add(1, Ordering::Relaxed);
    }

    /// One verified read: poison heals by rewrite, a concurrent update
    /// recycling the block mid-read retries against the current pointer.
    fn do_read(&self, st: &ServiceState, key: u64) {
        let shard = &st.shards[self.shard_of(key)];
        for _ in 0..RETRY_LIMIT {
            let offset = shard.get(key).unwrap_or_else(|| panic!("acknowledged key missing: {key:#x}"));
            match self.payload_matches(offset, key) {
                Ok(true) => return,
                Ok(false) => {
                    // Torn against a concurrent update: the offset we
                    // read was freed and recycled under us. Re-fetch.
                    self.read_races.fetch_add(1, Ordering::Relaxed);
                }
                Err(PmemError::Uncorrectable { .. }) => self.heal_value(st, key),
                Err(e) => panic!("value read failed: {e}"),
            }
        }
        panic!("read of key {key:#x} never stabilised");
    }

    fn do_update(&self, st: &ServiceState, key: u64) {
        let fresh = self.alloc_value(&st.heap, key);
        let old = st.shards[self.shard_of(key)]
            .update(key, fresh)
            .unwrap_or_else(|| panic!("acknowledged key missing on update: {key:#x}"));
        if PersistentAllocator::free(&*st.heap, old).is_err() {
            self.free_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn do_insert(&self, st: &ServiceState, worker: usize, local: u64) {
        let id = self.stripe_base(worker) + local;
        let key = fnv(id);
        let value = self.alloc_value(&st.heap, key);
        let mut attempts = 0u64;
        loop {
            match st.shards[self.shard_of(key)].insert(key, value) {
                Ok(_) => break,
                Err(AllocError::OutOfMemory) => {
                    attempts += 1;
                    assert!(attempts <= RETRY_LIMIT, "insert retries exhausted");
                    assert!(
                        self.config.events.contains(&SoakEvent::Grow),
                        "tree node allocation exhausted the pool and no grow event configured"
                    );
                    self.space_stalls.fetch_add(1, Ordering::Relaxed);
                    self.pressure.store(true, Ordering::Release);
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
        // Acknowledge: the insert returned, so (uncached heap) it is
        // durable. Publish it to the sampling space and the kill ledger.
        self.completed[worker].store(local + 1, Ordering::Release);
        self.inserted_total.fetch_add(1, Ordering::Relaxed);
    }

    fn do_scan(&self, st: &ServiceState, start_key: u64, len: usize) {
        let pairs = st.shards[self.shard_of(start_key)].scan(start_key, len);
        let mut last = None;
        for &(key, _) in &pairs {
            assert!(Some(key) > last, "scan returned keys out of order");
            last = Some(key);
        }
    }

    fn worker(&self, worker: usize) {
        pmem::numa::set_current_cpu(worker);
        let mut rng =
            crate::driver::Xorshift::new(self.config.seed ^ (worker as u64 + 1).wrapping_mul(0x5E4B_11CE));
        let mut zipf = Zipfian::new(self.config.load_keys, self.config.theta);
        let update_cut = self.config.update_permille;
        let insert_cut = update_cut + self.config.insert_permille;
        let scan_cut = insert_cut + self.config.scan_permille;
        let mut local_inserted = 0u64;
        for op in 0..self.config.ops_per_thread {
            if op % ZIPF_REFRESH == 0 {
                zipf.extend(self.config.load_keys + self.inserted_total.load(Ordering::Relaxed));
            }
            let dice = rng.below(1000);
            let rank = zipf.sample(&mut rng);
            let scan_len = 1 + rng.below(16) as usize;
            // The read guard serialises against event transitions; the
            // clock starts after it is held so event pauses are not
            // billed to the op that happened to arrive during one.
            let guard = self.state.read();
            let st = guard.as_ref().expect("service state missing");
            let class;
            let start = Instant::now();
            if dice < update_cut {
                class = OpClass::Update;
                self.do_update(st, fnv(self.sample_id(rank)));
            } else if dice < insert_cut {
                class = OpClass::Insert;
                self.do_insert(st, worker, local_inserted);
                local_inserted += 1;
            } else if dice < scan_cut {
                class = OpClass::Scan;
                self.do_scan(st, fnv(self.sample_id(rank)), scan_len);
            } else {
                class = OpClass::Read;
                self.do_read(st, fnv(self.sample_id(rank)));
            }
            self.hists[worker][class.index()].record(start.elapsed().as_nanos() as u64);
            drop(guard);
            self.ops_done.fetch_add(1, Ordering::Release);
        }
    }

    /// Builds the persistent shard directory and fresh shard trees on a
    /// new heap, anchoring the directory as the heap root.
    fn create_shards(&self, heap: &Arc<PoseidonHeap>) -> Vec<Arc<FastFair<PoseidonHeap>>> {
        let shards = self.config.shards as u64;
        let dir = PersistentAllocator::alloc(&**heap, (2 + shards) * 8).expect("directory allocation");
        self.dev.write_pod(dir, &DIR_MAGIC).expect("directory magic");
        self.dev.write_pod(dir + 8, &shards).expect("directory count");
        let mut out = Vec::with_capacity(self.config.shards);
        for s in 0..self.config.shards {
            let mut tree = FastFair::new(heap.clone()).expect("shard root allocation");
            let slot = dir + 16 + s as u64 * 8;
            self.dev.write_pod(slot, &tree.root_offset()).expect("directory root");
            self.install_root_hook(&mut tree, slot);
            out.push(Arc::new(tree));
        }
        self.dev.persist(dir, (2 + shards) * 8).expect("directory persist");
        let root = heap.nvmptr_of(dir).expect("directory pointer");
        heap.set_root(root).expect("anchor directory");
        out
    }

    /// Reopens the shard trees of a recovered heap from its anchored
    /// directory block.
    fn open_shards(&self, heap: &Arc<PoseidonHeap>) -> Vec<Arc<FastFair<PoseidonHeap>>> {
        let root = heap.root().expect("read heap root");
        assert!(!root.is_null(), "recovered heap lost its root anchor");
        let dir = heap.raw_offset(root).expect("resolve directory");
        let magic: u64 = self.dev.read_pod(dir).expect("directory magic");
        assert_eq!(magic, DIR_MAGIC, "directory block corrupt after recovery");
        let shards: u64 = self.dev.read_pod(dir + 8).expect("directory count");
        assert_eq!(shards, self.config.shards as u64, "shard count changed across recovery");
        let mut out = Vec::with_capacity(self.config.shards);
        for s in 0..self.config.shards {
            let slot = dir + 16 + s as u64 * 8;
            let anchored: u64 = self.dev.read_pod(slot).expect("directory root");
            let mut tree = FastFair::open(heap.clone(), anchored);
            self.install_root_hook(&mut tree, slot);
            out.push(Arc::new(tree));
        }
        out
    }

    /// Persists a shard's root into its directory slot before the new
    /// root becomes visible (anchor-before-visible: a crash between the
    /// two leaves a *stale* anchor, which leaf-chain move-right lookups
    /// tolerate, never a dangling one).
    fn install_root_hook(&self, tree: &mut FastFair<PoseidonHeap>, slot: u64) {
        let dev = self.dev.clone();
        tree.on_root_change(Box::new(move |root| {
            dev.write_pod(slot, &root).expect("anchor shard root");
            dev.persist(slot, 8).expect("persist shard root");
        }));
    }

    /// Kill-and-resume: crash the service at a quiesced point, recover,
    /// verify every acknowledged key, resume.
    fn event_kill(&self, at_op: u64) -> EventReport {
        let mut guard = self.state.write();
        let st = guard.take().expect("service state missing");
        drop(st); // Shards then heap: no close() — this is the crash.
        self.dev.simulate_crash(self.config.crash_mode, self.config.seed ^ at_op);

        let reopen_start = Instant::now();
        let heap = Arc::new(PoseidonHeap::load(self.dev.clone(), self.heap_config()).expect("recovery load"));
        let shards = self.open_shards(&heap);
        let reopen = reopen_start.elapsed();

        let st = ServiceState { heap, shards };
        let (population, verified) = self.verify_acknowledged(&st);
        *guard = Some(st);
        EventReport::Kill { at_op, reopen, population, verified }
    }

    /// Checks acknowledged keys (all loaded keys plus every insert a
    /// worker published) survived with intact payloads. Damaged-but-
    /// present payloads are healed, not counted lost. Returns
    /// `(population, keys verified)`.
    fn verify_acknowledged(&self, st: &ServiceState) -> (u64, u64) {
        let mut acked: Vec<u64> = (0..self.config.load_keys).collect();
        for worker in 0..self.config.threads {
            let n = self.completed[worker].load(Ordering::Acquire);
            acked.extend((0..n).map(|i| self.stripe_base(worker) + i));
        }
        let population = acked.len() as u64;
        let step = population.checked_div(self.config.verify_sample).unwrap_or(1).max(1) as usize;
        let mut verified = 0u64;
        for &id in acked.iter().step_by(step) {
            let key = fnv(id);
            self.do_read(st, key);
            verified += 1;
        }
        (population, verified)
    }

    /// Poisons the value blocks of the hottest committed keys while the
    /// service keeps running. Returns the poisoned keys via `poisoned`
    /// for end-of-run verification.
    fn event_poison(&self, at_op: u64, poisoned: &mut Vec<u64>) -> EventReport {
        let guard = self.state.read();
        let st = guard.as_ref().expect("service state missing");
        let mut keys = 0;
        for id in 0..self.config.poison_keys.min(self.config.load_keys) {
            let key = fnv(id);
            if let Some(offset) = st.shards[self.shard_of(key)].get(key) {
                self.dev.poison(offset, PAYLOAD_BYTES).expect("poison value");
                poisoned.push(key);
                keys += 1;
            }
        }
        EventReport::Poison { at_op, keys }
    }

    /// Grows the pool online (doubling, clamped to the ceiling).
    fn event_grow(&self, at_op: u64) -> EventReport {
        let guard = self.state.read();
        let st = guard.as_ref().expect("service state missing");
        let old = self.dev.capacity();
        let target = (old * 2).clamp(old, self.config.max_capacity);
        assert!(target > old, "grow event configured but the pool is already at max capacity");
        let report = st.heap.grow(target).expect("online grow");
        self.pressure.store(false, Ordering::Release);
        EventReport::Grow {
            at_op,
            old_capacity: report.old_capacity,
            new_capacity: report.new_capacity,
            new_subheaps: report.new_subheaps,
        }
    }

    /// Samples the heap's fragmentation totals (refreshing the trigger
    /// watermarks and the cached huge headroom figure as a side effect).
    fn frag_sample(&self, at_op: u64) -> Option<FragSample> {
        let guard = self.state.read();
        let st = guard.as_ref()?;
        let report = st.heap.fragmentation().ok()?;
        Some(FragSample {
            at_op,
            free_bytes: report.free_bytes(),
            frag_bytes: report.frag_bytes(),
            largest_block: report.subheaps.iter().map(|s| s.largest_block).max().unwrap_or(0),
            huge_largest_free: st.heap.huge_largest_free(),
        })
    }

    /// Merges every worker's histogram for `class` into one snapshot.
    fn merged(&self, class: OpClass) -> HistogramSnapshot {
        let mut merged = self.hists[0][class.index()].snapshot();
        for worker in &self.hists[1..] {
            merged.merge(&worker[class.index()].snapshot());
        }
        merged
    }

    /// The coordinator: fires events at progress thresholds, ticks the
    /// scrubber once poison is live, grows early under space pressure,
    /// and cuts interval snapshots.
    fn coordinate(
        &self,
        events_out: &mut Vec<EventReport>,
        poisoned: &mut Vec<u64>,
        frag_out: &mut Vec<FragSample>,
    ) -> Vec<IntervalReport> {
        let total = self.config.total_ops();
        let n_events = self.config.events.len() as u64;
        let event_at: Vec<u64> = (0..n_events).map(|i| total * (i + 1) / (n_events + 1)).collect();
        let mut next_event = 0usize;
        let intervals = self.config.intervals.max(1);
        let mut next_edge = (total / intervals).max(1);
        let mut out = Vec::new();
        let mut prev: Vec<HistogramSnapshot> = OpClass::ALL.iter().map(|&c| self.merged(c)).collect();
        let mut prev_instant = Instant::now();
        let mut prev_ops = 0u64;
        let mut poison_live = false;
        let mut grown = false;
        loop {
            let finished = self.workers_done.load(Ordering::Acquire) == self.config.threads as u64;
            let done = self.ops_done.load(Ordering::Acquire);
            while next_event < event_at.len() && done >= event_at[next_event] {
                let report = match self.config.events[next_event] {
                    SoakEvent::Kill => self.event_kill(done),
                    SoakEvent::Poison => {
                        poison_live = true;
                        self.event_poison(done, poisoned)
                    }
                    SoakEvent::Grow if grown => {
                        // A pressure-triggered grow already ran in its
                        // place; nothing left to do.
                        next_event += 1;
                        continue;
                    }
                    SoakEvent::Grow => {
                        grown = true;
                        self.event_grow(done)
                    }
                };
                events_out.push(report);
                next_event += 1;
            }
            if !grown
                && self.pressure.load(Ordering::Acquire)
                && self.config.events.contains(&SoakEvent::Grow)
            {
                // Workers are stalling on NoSpace: fire the configured
                // grow early rather than waiting for its threshold.
                grown = true;
                events_out.push(self.event_grow(done));
            }
            if !grown
                && self.config.huge_headroom > 0
                && self.config.events.contains(&SoakEvent::Grow)
                && self.dev.capacity() < self.config.max_capacity
            {
                // Headroom policy: the continuously-exposed largest free
                // huge extent (refreshed by fragmentation sampling and by
                // any TooLarge miss) fell below the configured floor —
                // grow *before* a huge allocation actually fails, instead
                // of waiting for NoSpace pressure.
                let low = {
                    let guard = self.state.read();
                    guard
                        .as_ref()
                        .and_then(|st| st.heap.huge_largest_free())
                        .is_some_and(|lf| lf < self.config.huge_headroom)
                };
                if low {
                    grown = true;
                    events_out.push(self.event_grow(done));
                }
            }
            if poison_live {
                let guard = self.state.read();
                if let Some(st) = guard.as_ref() {
                    let _ = st.heap.scrub_step(self.config.scrub_budget);
                }
            }
            if self.config.maint_budget > 0 {
                // Maintenance tick: the engine self-schedules off its
                // trigger policy (pressure flag + fragmentation
                // watermarks); a tick on a tidy heap is a no-op.
                let guard = self.state.read();
                if let Some(st) = guard.as_ref() {
                    let _ = st.heap.maint_tick(self.config.maint_budget);
                }
            }
            while done >= next_edge || (finished && prev_ops < done) {
                let now = Instant::now();
                let current: Vec<HistogramSnapshot> = OpClass::ALL.iter().map(|&c| self.merged(c)).collect();
                let classes: Vec<(OpClass, LatencySummary)> = OpClass::ALL
                    .iter()
                    .zip(current.iter().zip(&prev))
                    .map(|(&c, (cur, pre))| (c, cur.delta(pre).summary()))
                    .collect();
                let ops: u64 = classes.iter().map(|(_, s)| s.count).sum();
                out.push(IntervalReport {
                    index: out.len() as u64,
                    elapsed: now - prev_instant,
                    ops,
                    classes,
                });
                prev = current;
                prev_instant = now;
                prev_ops = done;
                // Fragmentation time series: one sample per interval edge.
                // The walk also refreshes the maintenance trigger
                // watermarks and the cached huge-headroom figure.
                if let Some(sample) = self.frag_sample(done) {
                    frag_out.push(sample);
                }
                next_edge += (total / intervals).max(1);
                if finished {
                    break;
                }
            }
            if finished {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        out
    }
}

/// Runs the full soak: load, mixed traffic with injected events, final
/// verification and audit. See the module docs for the scenario.
///
/// # Panics
///
/// Panics on any correctness violation: an acknowledged key missing or
/// corrupt, a scan out of order, recovery failure, audit failure, or a
/// worker unable to make progress. Soft degradation (healing, retries,
/// stalls) is returned in [`SoakReport::counters`] instead.
pub fn run_soak(config: &KvServeConfig) -> SoakReport {
    assert!(config.threads >= 1 && config.shards >= 1, "need at least one thread and shard");
    assert!(config.value_size >= PAYLOAD_BYTES, "values carry a 16-byte payload");
    assert!(
        config.update_permille + config.insert_permille + config.scan_permille <= 1000,
        "op mix exceeds 1000 permille"
    );
    let dev = Arc::new(PmemDevice::new(
        DeviceConfig::new(config.capacity).growable_to(config.max_capacity).with_media_faults(true),
    ));
    let soak = Soak {
        config: config.clone(),
        dev: dev.clone(),
        state: RwLock::new(None),
        completed: (0..config.threads).map(|_| AtomicU64::new(0)).collect(),
        inserted_total: AtomicU64::new(0),
        alloc_seq: AtomicU64::new(0),
        ops_done: AtomicU64::new(0),
        workers_done: AtomicU64::new(0),
        pressure: AtomicBool::new(false),
        hists: (0..config.threads)
            .map(|_| OpClass::ALL.iter().map(|_| LatencyHistogram::new()).collect())
            .collect(),
        healed: AtomicU64::new(0),
        dirty_allocs: AtomicU64::new(0),
        space_stalls: AtomicU64::new(0),
        read_races: AtomicU64::new(0),
        free_errors: AtomicU64::new(0),
    };

    // Build + load.
    let heap = Arc::new(PoseidonHeap::create(dev, soak.heap_config()).expect("create service heap"));
    let shards = soak.create_shards(&heap);
    let st = ServiceState { heap, shards };
    let per_thread = config.load_keys / config.threads as u64;
    platform::thread::scope(|scope| {
        for worker in 0..config.threads {
            let soak = &soak;
            let st = &st;
            scope.spawn(move || {
                pmem::numa::set_current_cpu(worker);
                let begin = worker as u64 * per_thread;
                let end = if worker == config.threads - 1 { config.load_keys } else { begin + per_thread };
                for id in begin..end {
                    let key = fnv(id);
                    let value = soak.alloc_value(&st.heap, key);
                    st.shards[soak.shard_of(key)].insert(key, value).expect("load insert");
                }
            });
        }
    });
    *soak.state.write() = Some(st);

    // Soak.
    let mut events = Vec::new();
    let mut poisoned = Vec::new();
    let mut fragmentation = Vec::new();
    let mut intervals = Vec::new();
    let mut elapsed = Duration::ZERO;
    let barrier = Barrier::new(config.threads + 1);
    platform::thread::scope(|scope| {
        for worker in 0..config.threads {
            let soak = &soak;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                // Count the worker done even if it panics (the guard runs
                // on unwind): the coordinator's exit condition is
                // `workers_done == threads`, and a dead worker must end
                // the run as a propagated panic, not an infinite
                // coordinator wait for ops that will never come.
                struct Done<'a>(&'a AtomicU64);
                impl Drop for Done<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_add(1, Ordering::Release);
                    }
                }
                let _done = Done(&soak.workers_done);
                soak.worker(worker);
            });
        }
        barrier.wait();
        let start = Instant::now();
        intervals = soak.coordinate(&mut events, &mut poisoned, &mut fragmentation);
        elapsed = start.elapsed();
    });

    // Final verification: every poisoned key must be re-readable (healed
    // by traffic or healed here), the heap must audit clean, and the
    // scrubber gets a full pass to quarantine freed damage.
    let guard = soak.state.read();
    let st = guard.as_ref().expect("service state missing");
    for _ in 0..2 {
        let _ = st.heap.scrub_step(usize::MAX);
    }
    if config.maint_budget > 0 {
        // Quiesce the maintenance engine: the final fragmentation sample
        // then reflects a fully-coalesced heap, which is what the
        // engine-on/engine-off comparison measures.
        loop {
            let step = st.heap.maint_step(usize::MAX).expect("final maintenance pass");
            if step.fully_defragged {
                break;
            }
        }
    }
    for &key in &poisoned {
        soak.do_read(st, key);
    }
    if let Some(sample) = soak.frag_sample(soak.ops_done.load(Ordering::Acquire)) {
        fragmentation.push(sample);
    }
    let audit = st.heap.audit().expect("final audit");
    let quarantined_blocks: u64 = audit.iter().map(|(_, a)| a.quarantined_blocks).sum();
    let health = st.heap.health();
    let population: u64 = st.shards.iter().map(|s| s.len()).sum();
    let totals: Vec<(OpClass, LatencySummary)> =
        OpClass::ALL.iter().map(|&c| (c, soak.merged(c).summary())).collect();

    let report = SoakReport {
        ops: soak.ops_done.load(Ordering::Acquire),
        elapsed,
        loaded: config.load_keys,
        inserted: soak.inserted_total.load(Ordering::Acquire),
        intervals,
        totals,
        events,
        counters: SoakCounters {
            healed: soak.healed.load(Ordering::Relaxed),
            dirty_allocs: soak.dirty_allocs.load(Ordering::Relaxed),
            space_stalls: soak.space_stalls.load(Ordering::Relaxed),
            read_races: soak.read_races.load(Ordering::Relaxed),
            free_errors: soak.free_errors.load(Ordering::Relaxed),
        },
        fragmentation,
        health,
        quarantined_blocks,
        population,
    };
    report.assert_invariants(config);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(events: Vec<SoakEvent>) -> KvServeConfig {
        KvServeConfig::new(2, 2, 400, 300).with_events(events).with_capacity(96 << 20, 96 << 20)
    }

    #[test]
    fn soak_without_events_serves_and_accounts() {
        let config = small(vec![]);
        let report = run_soak(&config);
        assert_eq!(report.ops, 600);
        assert_eq!(report.loaded, 400);
        assert!(report.events.is_empty());
        assert!(!report.intervals.is_empty());
        let read_count =
            report.totals.iter().find(|(c, _)| *c == OpClass::Read).map(|(_, s)| s.count).unwrap();
        assert!(read_count > 0, "default mix must produce reads");
    }

    #[test]
    fn soak_kill_event_recovers_every_acknowledged_key() {
        let config = small(vec![SoakEvent::Kill]);
        let report = run_soak(&config);
        assert_eq!(report.events.len(), 1);
        let EventReport::Kill { population, verified, reopen, .. } = report.events[0] else {
            panic!("expected a kill report, got {:?}", report.events[0]);
        };
        assert!(population >= 400, "kill fired before load finished?");
        assert_eq!(verified, population, "verify_sample=0 must check every key");
        assert!(reopen > Duration::ZERO);
    }

    #[test]
    fn soak_poison_event_degrades_and_heals() {
        let mut config = small(vec![SoakEvent::Poison]);
        // All-reads mix: poisoned hot keys are guaranteed to be read.
        config.update_permille = 0;
        config.insert_permille = 0;
        config.scan_permille = 0;
        let report = run_soak(&config);
        let EventReport::Poison { keys, .. } = report.events[0] else {
            panic!("expected a poison report, got {:?}", report.events[0]);
        };
        assert_eq!(keys, config.poison_keys);
        // run_soak's final pass re-read every poisoned key; accounting
        // must show the damage was noticed somewhere.
        assert!(
            report.counters.healed > 0 || report.health.blocks_quarantined_live > 0,
            "poison left no heal/quarantine trace: {:?} {:?}",
            report.counters,
            report.health
        );
    }

    #[test]
    fn soak_grow_event_doubles_capacity_under_load() {
        let mut config = small(vec![SoakEvent::Grow]);
        config = config.with_capacity(64 << 20, 256 << 20);
        let report = run_soak(&config);
        let EventReport::Grow { old_capacity, new_capacity, .. } = report.events[0] else {
            panic!("expected a grow report, got {:?}", report.events[0]);
        };
        assert_eq!(new_capacity, 2 * old_capacity);
    }

    #[test]
    fn soak_maintenance_ticks_step_the_engine_and_sample_fragmentation() {
        // Update-heavy traffic churns blocks so the trigger policy has
        // fragmentation to react to; the engine must actually step and
        // the report must carry a usable time series.
        let mut config = small(vec![]).with_maint(4);
        config.update_permille = 600;
        let report = run_soak(&config);
        assert!(report.health.maint_steps > 0, "no maintenance step ran: {:?}", report.health);
        assert!(!report.fragmentation.is_empty(), "no fragmentation samples");
        let last = report.fragmentation.last().unwrap();
        assert_eq!(last.at_op, report.ops, "final sample must follow the last op");
        // run_soak quiesced the engine before the final sample: anything
        // still counted as fragmented is genuinely pinned by live blocks
        // interleaving the free ones, not deferred coalescing work.
        assert!(last.frag_bytes <= last.free_bytes);
    }

    #[test]
    fn soak_headroom_policy_grows_before_huge_allocations_fail() {
        // An unreachably high headroom floor means the very first
        // coordinator pass after a fragmentation sample sees the largest
        // free huge extent below the floor and fires the configured grow
        // early — well before its op-count threshold (half the run).
        let mut config = KvServeConfig::new(2, 2, 400, 5_000)
            .with_events(vec![SoakEvent::Grow])
            .with_capacity(64 << 20, 256 << 20)
            .with_huge_headroom(u64::MAX);
        config.intervals = 64;
        let report = run_soak(&config);
        assert_eq!(report.events.len(), 1, "exactly one grow must fire");
        let EventReport::Grow { at_op, new_capacity, old_capacity, .. } = report.events[0] else {
            panic!("expected a grow report, got {:?}", report.events[0]);
        };
        assert_eq!(new_capacity, 2 * old_capacity);
        assert!(
            at_op < report.ops / 2,
            "headroom grow fired at op {at_op}, not before the threshold ({})",
            report.ops / 2
        );
    }
}
