//! The measurement driver: thread spawning, CPU pinning, and throughput
//! accounting shared by every benchmark.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use pmem::numa;

/// The outcome of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Total operations completed across all threads.
    pub total_ops: u64,
    /// Wall-clock time from the start barrier to the last thread
    /// finishing.
    pub elapsed: Duration,
    /// Number of worker threads.
    pub threads: usize,
    /// Total CPU time consumed by the workers (the run's *work*,
    /// independent of how many cores the host timesliced it over).
    pub cpu_ns: u64,
}

impl RunResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.mops() * 1e6
    }
}

/// Runs `work(thread_index)` on `threads` workers, each pinned to logical
/// CPU `thread_index`, starting simultaneously. Each worker returns its
/// operation count.
pub fn run_threads<F>(threads: usize, work: F) -> RunResult
where
    F: Fn(usize) -> u64 + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let mut total_ops = 0;
    let mut cpu_ns = 0;
    let mut elapsed = Duration::ZERO;
    platform::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread_index| {
                let barrier = &barrier;
                let work = &work;
                scope.spawn(move || {
                    numa::set_current_cpu(thread_index);
                    barrier.wait();
                    let cpu0 = pmem::contention::thread_cpu_ns();
                    let ops = work(thread_index);
                    (ops, pmem::contention::thread_cpu_ns() - cpu0)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            let (ops, cpu) = handle.join().expect("worker panicked");
            total_ops += ops;
            cpu_ns += cpu;
        }
        elapsed = start.elapsed();
    });
    RunResult { total_ops, elapsed, threads, cpu_ns }
}

/// Like [`run_threads`], but time-bounded: workers run
/// `work(thread_index, &stop)` until the driver sets `stop` after
/// `duration`.
pub fn run_timed<F>(threads: usize, duration: Duration, work: F) -> RunResult
where
    F: Fn(usize, &AtomicBool) -> u64 + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let stop = AtomicBool::new(false);
    let mut total_ops = 0;
    let mut cpu_ns = 0;
    let mut elapsed = Duration::ZERO;
    platform::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread_index| {
                let barrier = &barrier;
                let work = &work;
                let stop = &stop;
                scope.spawn(move || {
                    numa::set_current_cpu(thread_index);
                    barrier.wait();
                    let cpu0 = pmem::contention::thread_cpu_ns();
                    let ops = work(thread_index, stop);
                    (ops, pmem::contention::thread_cpu_ns() - cpu0)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (ops, cpu) = handle.join().expect("worker panicked");
            total_ops += ops;
            cpu_ns += cpu;
        }
        elapsed = start.elapsed();
    });
    RunResult { total_ops, elapsed, threads, cpu_ns }
}

/// The per-thread workload RNG (no global state, one per thread,
/// reproducible across runs). An alias for [`platform::rng::Rng`], which
/// keeps the exact xorshift64 sequence this crate has always produced, so
/// op-stream digests are stable across the dependency refactor.
pub use platform::rng::Rng as Xorshift;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_threads_sums_ops_and_pins_cpus() {
        let result = run_threads(4, |thread_index| {
            assert_eq!(numa::current_cpu(), thread_index);
            (thread_index as u64 + 1) * 10
        });
        assert_eq!(result.total_ops, 10 + 20 + 30 + 40);
        assert_eq!(result.threads, 4);
        assert!(result.mops() >= 0.0);
    }

    #[test]
    fn run_timed_stops_workers() {
        let result = run_timed(2, Duration::from_millis(50), |_, stop| {
            let mut ops = 0;
            while !stop.load(Ordering::Relaxed) {
                ops += 1;
                std::hint::spin_loop();
            }
            ops
        });
        assert!(result.total_ops > 0);
        assert!(result.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            assert!(a.below(17) < 17);
            let u = a.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
