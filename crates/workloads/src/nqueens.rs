//! The N-Queens benchmark (§7.4): each iteration makes one 32-byte
//! allocation, solves the 8-queens puzzle, records the solution count in
//! the allocation, and frees it — the smallest-allocation, highest-rate
//! member of the paper's compute benchmarks.

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_threads, RunResult};

/// Parameters of an N-Queens run.
#[derive(Debug, Clone, Copy)]
pub struct NQueensConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Puzzles per thread (paper: 100,000).
    pub iterations: u64,
    /// Board size (paper: 8).
    pub board: u32,
}

impl NQueensConfig {
    /// Paper-shaped defaults.
    pub fn new(threads: usize, iterations: u64) -> NQueensConfig {
        NQueensConfig { threads, iterations, board: 8 }
    }
}

/// Counts N-Queens solutions with the classic bitmask recursion.
fn solve(columns: u32, left_diagonals: u32, right_diagonals: u32, full: u32) -> u64 {
    if columns == full {
        return 1;
    }
    let mut candidates = !(columns | left_diagonals | right_diagonals) & full;
    let mut solutions = 0;
    while candidates != 0 {
        let place = candidates & candidates.wrapping_neg();
        candidates -= place;
        solutions +=
            solve(columns | place, (left_diagonals | place) << 1, (right_diagonals | place) >> 1, full);
    }
    solutions
}

/// Runs the benchmark; counted operations are allocator calls (one alloc
/// + one free per puzzle).
///
/// # Panics
///
/// Panics on allocator failure, `board == 0`, or `board > 16`.
pub fn run<A: PersistentAllocator + ?Sized>(alloc: &A, config: NQueensConfig) -> RunResult {
    assert!(config.board > 0 && config.board <= 16, "board size out of range");
    let full = (1u32 << config.board) - 1;
    let expected = solve(0, 0, 0, full);
    run_threads(config.threads, |_| {
        let mut ops = 0u64;
        for _ in 0..config.iterations {
            let cell = alloc.alloc(32).unwrap_or_else(|e| panic!("{}: nqueens alloc: {e}", alloc.name()));
            let solutions = solve(0, 0, 0, full);
            alloc.device().write_pod(cell, &solutions).expect("result write");
            alloc.device().persist(cell, 8).expect("result persist");
            debug_assert_eq!(solutions, expected);
            alloc.free(cell).unwrap_or_else(|e| panic!("{}: nqueens free: {e}", alloc.name()));
            ops += 2;
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn eight_queens_has_92_solutions() {
        assert_eq!(solve(0, 0, 0, 0xFF), 92);
        assert_eq!(solve(0, 0, 0, 0x0F), 2); // 4-queens
        assert_eq!(solve(0, 0, 0, 0x3F), 4); // 6-queens
    }

    #[test]
    fn all_allocators_run() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(32 << 20)));
            let alloc = kind.build(dev);
            let result = run(&*alloc, NQueensConfig::new(2, 20));
            assert_eq!(result.total_ops, 2 * 20 * 2, "{}", kind.name());
        }
    }
}
