//! The Poseidon paper's benchmark applications (§7).
//!
//! Every workload drives an allocator through the
//! [`PersistentAllocator`] trait, so Poseidon, PMDK-sim, and Makalu-sim
//! are interchangeable, and measures throughput with the shared
//! [`driver`]:
//!
//! | Module | Paper section | Figure |
//! |---|---|---|
//! | [`micro`] | §7.2 random 100-alloc/100-free pairs | Fig. 6 |
//! | [`larson`] | §7.3 server allocation pattern | Fig. 7 |
//! | [`ackermann`] | §7.4 memo-cache compute benchmark | Fig. 8 |
//! | [`kruskal`] | §7.4 MST compute benchmark | Fig. 8 |
//! | [`nqueens`] | §7.4 8-queens compute benchmark | Fig. 8 |
//! | [`ycsb`] over [`fastfair`] | §7.5 key-value store | Fig. 9 |
//! | [`latency`] | §4.7 constant-time claim | (extension) |
//! | [`kvserve`] over [`histogram`] | traffic-shaped KV service soak | (extension) |

#![warn(missing_docs)]

pub mod ackermann;
pub mod alloc_api;
pub mod driver;
pub mod fastfair;
pub mod histogram;
pub mod kruskal;
pub mod kvserve;
pub mod larson;
pub mod latency;
pub mod micro;
pub mod nqueens;
pub mod ycsb;

pub use alloc_api::{AllocError, AllocatorKind, PersistentAllocator};
pub use driver::{run_threads, run_timed, RunResult, Xorshift};
pub use histogram::{HistogramSnapshot, LatencyHistogram, LatencySummary};
