//! Operation-latency measurement — the §4.7 constant-time claim.
//!
//! Poseidon manages memory-block records in a multi-level hash table so
//! that "regardless of the pool size or allocation size, allocation and
//! free time is constant"; PMDK indexes free chunks in an AVL tree
//! (logarithmic) and rebuilds its DRAM caches by re-scanning NVMM
//! (linear), so its latency grows — and spikes — with heap population.
//! This module measures single-threaded alloc/free latency percentiles
//! at a configurable live-object population.

use crate::alloc_api::PersistentAllocator;

/// Latency percentiles of one measurement run, in nanoseconds of thread
/// CPU time per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyReport {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl LatencyReport {
    fn from_samples(mut samples: Vec<u64>) -> LatencyReport {
        assert!(!samples.is_empty());
        samples.sort_unstable();
        // Nearest-rank (ceil) percentiles: the q-th percentile is the
        // smallest sample with at least ceil(q * len) samples at or below
        // it. A truncating index ((len-1) * q) biases high quantiles low
        // at small sample counts (10 samples: p999 would return the
        // 9th-smallest instead of the max).
        let at = |q: f64| {
            let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        // Sum in u128: len * u64-sized samples overflows a u64 sum.
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        LatencyReport {
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
            p999: at(0.999),
            max: *samples.last().expect("non-empty"),
            mean: (sum / samples.len() as u128) as u64,
        }
    }
}

/// Parameters of a latency run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyConfig {
    /// Live objects resident in the heap while measuring (the §4.7 sweep
    /// variable: constant-time designs are insensitive to it).
    pub live_objects: u64,
    /// Alloc+free pairs to measure.
    pub pairs: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Free every other resident object before measuring, fragmenting
    /// the free space (grows PMDK's AVL tree / Makalu's chunk map with
    /// `live_objects / 2` disjoint ranges).
    pub fragment: bool,
}

impl LatencyConfig {
    /// Defaults at a given population.
    pub fn new(live_objects: u64, pairs: u64) -> LatencyConfig {
        LatencyConfig { live_objects, pairs, size: 256, fragment: false }
    }

    /// Sets the object size.
    pub fn with_size(mut self, size: u64) -> LatencyConfig {
        self.size = size;
        self
    }

    /// Enables free-space fragmentation before measurement.
    pub fn fragmented(mut self) -> LatencyConfig {
        self.fragment = true;
        self
    }
}

/// Fills the heap with `config.live_objects` live blocks, then measures
/// the CPU-time latency of `config.pairs` alloc+free pairs. Returns
/// `(alloc_report, free_report)`.
///
/// # Panics
///
/// Panics on allocator failure (size the pool generously).
pub fn measure<A: PersistentAllocator + ?Sized>(
    alloc: &A,
    config: LatencyConfig,
) -> (LatencyReport, LatencyReport) {
    pmem::numa::set_current_cpu(0);
    let mut resident = Vec::with_capacity(config.live_objects as usize);
    for _ in 0..config.live_objects {
        resident.push(
            alloc.alloc(config.size).unwrap_or_else(|e| panic!("{}: latency fill failed: {e}", alloc.name())),
        );
    }
    if config.fragment {
        // Free every other resident: the surviving neighbours prevent
        // coalescing, so the free-space index holds ~live/2 ranges.
        let mut keep = Vec::with_capacity(resident.len() / 2);
        for (i, offset) in resident.drain(..).enumerate() {
            if i % 2 == 0 {
                alloc.free(offset).unwrap_or_else(|e| panic!("{}: fragment free: {e}", alloc.name()));
            } else {
                keep.push(offset);
            }
        }
        resident = keep;
    }
    let mut alloc_ns = Vec::with_capacity(config.pairs as usize);
    let mut free_ns = Vec::with_capacity(config.pairs as usize);
    for _ in 0..config.pairs {
        let t0 = pmem::contention::thread_cpu_ns();
        let offset = alloc
            .alloc(config.size)
            .unwrap_or_else(|e| panic!("{}: latency alloc failed: {e}", alloc.name()));
        let t1 = pmem::contention::thread_cpu_ns();
        alloc.free(offset).unwrap_or_else(|e| panic!("{}: latency free failed: {e}", alloc.name()));
        let t2 = pmem::contention::thread_cpu_ns();
        alloc_ns.push(t1 - t0);
        free_ns.push(t2 - t1);
    }
    for offset in resident {
        let _ = alloc.free(offset);
    }
    (LatencyReport::from_samples(alloc_ns), LatencyReport::from_samples(free_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn percentiles_are_ordered() {
        let r = LatencyReport::from_samples((1..=1000).collect());
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99 && r.p99 <= r.p999 && r.p999 <= r.max);
        assert_eq!(r.max, 1000);
        assert_eq!(r.mean, 500);
    }

    #[test]
    fn small_sample_percentiles_use_nearest_rank() {
        // 10 samples: nearest-rank p99/p999 are the max. The old
        // truncating index ((len-1) * q) returned the 9th-smallest for
        // both, silently under-reporting the tail.
        let r = LatencyReport::from_samples((1..=10).collect());
        assert_eq!(r.p50, 5, "p50 of 1..=10 is the 5th-smallest (rank ceil(5.0))");
        assert_eq!(r.p90, 9);
        assert_eq!(r.p99, 10, "p99 of 10 samples must be the max");
        assert_eq!(r.p999, 10, "p999 of 10 samples must be the max");
        assert_eq!(r.max, 10);

        // A single outlier must show up in every tail percentile of a
        // small run, not get truncated away.
        let mut spike = vec![100u64; 99];
        spike.push(1_000_000);
        let r = LatencyReport::from_samples(spike);
        assert_eq!(r.p99, 100, "rank ceil(100 * 0.99) = 99 -> the 99th-smallest");
        assert_eq!(r.p999, 1_000_000, "rank ceil(100 * 0.999) = 100 -> the max (old code: 99th)");

        // Degenerate single sample: every percentile is that sample.
        let r = LatencyReport::from_samples(vec![7]);
        assert_eq!((r.p50, r.p90, r.p99, r.p999, r.max, r.mean), (7, 7, 7, 7, 7, 7));
    }

    #[test]
    fn mean_survives_u64_sum_overflow() {
        // Two near-max samples: the old u64 sum wrapped (or panicked in
        // debug builds); the u128 sum reports the true mean.
        let r = LatencyReport::from_samples(vec![u64::MAX, u64::MAX]);
        assert_eq!(r.mean, u64::MAX);
        let r = LatencyReport::from_samples(vec![u64::MAX - 1, u64::MAX]);
        assert_eq!(r.mean, u64::MAX - 1);
    }

    #[test]
    fn measures_all_allocators() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
            let alloc = kind.build(dev);
            let (a, f) = measure(&*alloc, LatencyConfig::new(200, 100));
            assert!(a.p50 > 0, "{}", kind.name());
            assert!(f.p50 > 0, "{}", kind.name());
        }
    }

    #[test]
    fn poseidon_latency_is_population_insensitive() {
        // The §4.7 claim, as a test: p50 at 8000 live blocks is within 4x
        // of p50 at 100 live blocks (generous bound for CI noise).
        let run = |live: u64| {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(1 << 30)));
            let alloc = AllocatorKind::Poseidon.build(dev);
            measure(&*alloc, LatencyConfig::new(live, 300)).0
        };
        let small = run(100);
        let large = run(8_000);
        assert!(
            large.p50 < small.p50 * 4,
            "alloc p50 grew with population: {} -> {} ns",
            small.p50,
            large.p50
        );
    }
}
