//! Lock-free log-bucketed latency histograms for the service harness.
//!
//! [`latency`](crate::latency) sorts a `Vec<u64>` of samples — fine for a
//! bounded single-threaded sweep, unusable for a long-running service
//! where millions of operations stream in from many threads and latency
//! must be reportable *over time*. This module keeps an HDR-style
//! histogram instead: values are bucketed by power-of-two magnitude with
//! [`SUB_BUCKETS`] linear sub-buckets per octave (≤ 1/16 relative value
//! error), every bucket is a relaxed atomic counter so recording is a
//! single wait-free `fetch_add`, and snapshots are plain count vectors
//! that merge across threads and subtract across time for per-interval
//! percentiles.
//!
//! Percentile semantics match the nearest-rank convention of
//! [`LatencyReport`](crate::latency::LatencyReport): the q-th percentile
//! is the smallest recorded bucket with at least `ceil(q * count)`
//! samples at or below its upper bound, so small-count tails are never
//! biased low.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (16: ≤ 6.25% value error).
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 4
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index of `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = (magnitude - SUB_BITS + 1) as usize;
    let sub = ((value >> (magnitude - SUB_BITS)) as usize) - SUB_BUCKETS;
    group * SUB_BUCKETS + sub
}

/// Largest value mapping to bucket `index` (what percentiles report, so
/// bucketing error can only over-state a latency, never hide it).
fn bucket_upper(index: usize) -> u64 {
    let group = index / SUB_BUCKETS;
    let sub = (index % SUB_BUCKETS) as u64;
    if group == 0 {
        return sub;
    }
    let shift = (group - 1) as u32;
    let lower = (SUB_BUCKETS as u64 + sub) << shift;
    lower + ((1u64 << shift) - 1)
}

/// A wait-free multi-writer latency histogram: one `record` is one
/// relaxed `fetch_add` per counter touched, with no locks anywhere, so
/// worker threads on the service fast path never serialise on
/// measurement.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (typically nanoseconds).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters. Concurrent recorders may be
    /// mid-update, so a snapshot is consistent to within the in-flight
    /// operations of the moment — exactly the tolerance a live dashboard
    /// has anyway.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience: the summary of everything recorded so far.
    pub fn summary(&self) -> LatencySummary {
        self.snapshot().summary()
    }
}

/// Plain (non-atomic) histogram counters: mergeable across threads,
/// subtractable across time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { counts: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Total samples in this snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another snapshot's counts into this one (e.g. merging
    /// per-thread histograms into a service-wide view).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The samples recorded between `earlier` and this snapshot of the
    /// same histogram(s) — the per-interval view. The interval maximum is
    /// reconstructed from the highest non-empty delta bucket, so it is
    /// exact to bucket resolution rather than to the sample.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has more samples than `self` (snapshots out of
    /// order).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert!(self.count >= earlier.count, "delta against a later snapshot");
        let counts: Vec<u64> = self.counts.iter().zip(&earlier.counts).map(|(now, was)| now - was).collect();
        let max = counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(i, _)| bucket_upper(i).min(self.max))
            .unwrap_or(0);
        HistogramSnapshot { counts, count: self.count - earlier.count, sum: self.sum - earlier.sum, max }
    }

    /// Nearest-rank percentile: the upper bound of the bucket holding the
    /// `ceil(q * count)`-th smallest sample (0 when empty).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The standard service summary of this snapshot.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max: self.max,
            mean: self.sum.checked_div(self.count).unwrap_or(0),
        }
    }
}

/// Percentile summary of one histogram (snapshot or interval), in the
/// recorded unit (nanoseconds throughout the service harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples summarised.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed (exact for cumulative snapshots, bucket-resolution
    /// for interval deltas).
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} p999={} max={} mean={}",
            self.count, self.p50, self.p90, self.p99, self.p999, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_every_value() {
        let mut probe = vec![0u64, 1, 2, 15, 16, 17, 31, 32, 1000, u64::MAX];
        let mut rng = platform::rng::Rng::new(7);
        for _ in 0..10_000 {
            probe.push(rng.next_u64() >> (rng.below(60) as u32));
        }
        for &v in &probe {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(v <= upper, "value {v} above its bucket upper {upper}");
            // Upper bound over-states by at most one sub-bucket width.
            assert!(upper - v <= upper / SUB_BUCKETS as u64 + 1, "value {v} upper {upper}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "value {v} not above previous bucket");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_a_sorted_reference() {
        let hist = LatencyHistogram::new();
        let mut rng = platform::rng::Rng::new(42);
        let mut reference: Vec<u64> = (0..50_000).map(|_| 30 + rng.below(2_000_000)).collect();
        for &v in &reference {
            hist.record(v);
        }
        reference.sort_unstable();
        let summary = hist.summary();
        assert_eq!(summary.count, 50_000);
        for (q, got) in [(0.50, summary.p50), (0.90, summary.p90), (0.99, summary.p99), (0.999, summary.p999)]
        {
            let rank = ((reference.len() as f64 * q).ceil() as usize).clamp(1, reference.len());
            let want = reference[rank - 1];
            // Log-bucketing reports the bucket upper bound: never below
            // the true value, within one sub-bucket width above it.
            assert!(got >= want, "p{q}: {got} < exact {want}");
            assert!(got <= want + want / SUB_BUCKETS as u64 + 1, "p{q}: {got} too far above {want}");
        }
        assert_eq!(summary.max, *reference.last().unwrap());
        let exact_mean = reference.iter().sum::<u64>() / reference.len() as u64;
        assert_eq!(summary.mean, exact_mean);
    }

    #[test]
    fn small_count_tail_is_nearest_rank() {
        // The same regression the Vec-based report had: with 10 samples,
        // p999 must land in the max's bucket, not the 9th-smallest's.
        let hist = LatencyHistogram::new();
        for v in 1..=10u64 {
            hist.record(v);
        }
        let s = hist.summary();
        assert_eq!(s.p999, 10);
        assert_eq!(s.p99, 10);
        assert_eq!(s.p50, 5);
        assert_eq!(s.max, 10);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let whole = LatencyHistogram::new();
        let mut rng = platform::rng::Rng::new(9);
        for i in 0..20_000u64 {
            let v = rng.below(1 << 40);
            if i % 2 == 0 { &a } else { &b }.record(v);
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn interval_deltas_isolate_their_window() {
        let hist = LatencyHistogram::new();
        for _ in 0..100 {
            hist.record(1_000);
        }
        let t1 = hist.snapshot();
        for _ in 0..50 {
            hist.record(8_000_000);
        }
        let t2 = hist.snapshot();
        let interval = t2.delta(&t1);
        assert_eq!(interval.count(), 50);
        // Everything in the window is a slow op; the earlier fast ops
        // must not dilute the interval percentiles.
        assert!(interval.percentile(0.5) >= 8_000_000);
        assert!(t1.percentile(0.999) <= 1_000 + 1_000 / SUB_BUCKETS as u64 + 1);
        let s = interval.summary();
        assert!(s.max >= 8_000_000);
        assert_eq!(s.mean, 8_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = LatencyHistogram::new();
        platform::thread::scope(|s| {
            for t in 0..4u64 {
                let hist = &hist;
                s.spawn(move || {
                    let mut rng = platform::rng::Rng::new(t + 1);
                    for _ in 0..25_000 {
                        hist.record(rng.below(1 << 30));
                    }
                });
            }
        });
        assert_eq!(hist.count(), 100_000);
        let snap = hist.snapshot();
        assert_eq!(snap.counts.iter().sum::<u64>(), 100_000);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = LatencyHistogram::new().summary();
        assert_eq!(s, LatencySummary::default());
        assert_eq!(HistogramSnapshot::empty().summary().count, 0);
    }
}
