//! The Kruskal benchmark (§7.4): each iteration allocates three 512-byte
//! persistent buffers, solves a minimum spanning tree of a small random
//! graph with Kruskal's algorithm (edges, union-find parents, and ranks
//! all living in the persistent buffers), then frees them.

use crate::alloc_api::PersistentAllocator;
use crate::driver::{run_threads, RunResult, Xorshift};

/// Parameters of a Kruskal run.
#[derive(Debug, Clone, Copy)]
pub struct KruskalConfig {
    /// Worker thread count.
    pub threads: usize,
    /// MST problems per thread (paper: 100,000).
    pub iterations: u64,
    /// Graph order (vertex count; paper: 5, complete graph).
    pub order: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KruskalConfig {
    /// Paper-shaped defaults.
    pub fn new(threads: usize, iterations: u64) -> KruskalConfig {
        KruskalConfig { threads, iterations, order: 5, seed: 0x4B52 }
    }
}

const BUF_SIZE: u64 = 512;

fn find(dev: &pmem::PmemDevice, parents: u64, mut v: u64) -> u64 {
    loop {
        let parent: u64 = dev.read_pod(parents + v * 8).expect("parent read");
        if parent == v {
            return v;
        }
        // Path halving, persisted like a real persistent union-find.
        let grand: u64 = dev.read_pod(parents + parent * 8).expect("grandparent read");
        dev.write_pod(parents + v * 8, &grand).expect("parent write");
        v = grand;
    }
}

/// Runs the benchmark; counted operations are allocator calls (3 allocs +
/// 3 frees per iteration). Returns throughput; panics on allocator
/// failure.
///
/// # Panics
///
/// Panics on allocator failure or `order*(order-1)/2` edges not fitting
/// the 512-byte edge buffer (order ≤ 6 is safe).
pub fn run<A: PersistentAllocator + ?Sized>(alloc: &A, config: KruskalConfig) -> RunResult {
    let v = config.order as u64;
    let nedges = (v * (v - 1) / 2) as usize;
    assert!(nedges * 24 <= BUF_SIZE as usize, "edge buffer overflow");
    run_threads(config.threads, |thread_index| {
        let mut rng = Xorshift::new(config.seed ^ (thread_index as u64 + 1).wrapping_mul(0x7777));
        let dev = alloc.device();
        let mut ops = 0u64;
        let mut total_weight = 0u64;
        for _ in 0..config.iterations {
            let edges =
                alloc.alloc(BUF_SIZE).unwrap_or_else(|e| panic!("{}: kruskal alloc: {e}", alloc.name()));
            let parents =
                alloc.alloc(BUF_SIZE).unwrap_or_else(|e| panic!("{}: kruskal alloc: {e}", alloc.name()));
            let ranks =
                alloc.alloc(BUF_SIZE).unwrap_or_else(|e| panic!("{}: kruskal alloc: {e}", alloc.name()));

            // Populate the complete graph with random weights.
            let mut edge_list = Vec::with_capacity(nedges);
            let mut index = 0u64;
            for a in 0..v {
                for b in a + 1..v {
                    let weight = rng.below(1000);
                    dev.write_pod(edges + index * 24, &weight).expect("edge write");
                    dev.write_pod(edges + index * 24 + 8, &a).expect("edge write");
                    dev.write_pod(edges + index * 24 + 16, &b).expect("edge write");
                    edge_list.push((weight, a, b));
                    index += 1;
                }
            }
            dev.persist(edges, index * 24).expect("persist edges");
            for vertex in 0..v {
                dev.write_pod(parents + vertex * 8, &vertex).expect("parent init");
                dev.write_pod(ranks + vertex * 8, &0u64).expect("rank init");
            }
            dev.persist(parents, v * 8).expect("persist parents");

            // Kruskal: sort edges, union components.
            edge_list.sort_unstable();
            let mut mst_weight = 0;
            let mut joined = 0;
            for (weight, a, b) in edge_list {
                let ra = find(dev, parents, a);
                let rb = find(dev, parents, b);
                if ra != rb {
                    let rank_a: u64 = dev.read_pod(ranks + ra * 8).expect("rank");
                    let rank_b: u64 = dev.read_pod(ranks + rb * 8).expect("rank");
                    let (winner, loser) = if rank_a >= rank_b { (ra, rb) } else { (rb, ra) };
                    dev.write_pod(parents + loser * 8, &winner).expect("union");
                    if rank_a == rank_b {
                        dev.write_pod(ranks + winner * 8, &(rank_a + 1)).expect("rank bump");
                    }
                    dev.persist(parents + loser * 8, 8).expect("persist union");
                    mst_weight += weight;
                    joined += 1;
                    if joined == v - 1 {
                        break;
                    }
                }
            }
            total_weight = total_weight.wrapping_add(mst_weight);

            for buf in [edges, parents, ranks] {
                alloc.free(buf).unwrap_or_else(|e| panic!("{}: kruskal free: {e}", alloc.name()));
            }
            ops += 6;
        }
        assert_ne!(total_weight, u64::MAX);
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_api::AllocatorKind;
    use pmem::{DeviceConfig, PmemDevice};
    use std::sync::Arc;

    #[test]
    fn mst_spans_the_graph() {
        // Direct check of the union-find on a known graph: after the run
        // every vertex has one root.
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(32 << 20)));
        let alloc = AllocatorKind::Poseidon.build(dev);
        let result = run(&*alloc, KruskalConfig::new(1, 10));
        assert_eq!(result.total_ops, 60);
    }

    #[test]
    fn all_allocators_run() {
        for kind in AllocatorKind::ALL {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(32 << 20)));
            let alloc = kind.build(dev);
            let result = run(&*alloc, KruskalConfig::new(2, 5));
            assert_eq!(result.total_ops, 2 * 5 * 6, "{}", kind.name());
        }
    }
}
