//! Simulated Intel Memory Protection Keys (MPK).
//!
//! Intel MPK tags each page-table entry with one of 16 protection keys and
//! gives every hardware thread a private `PKRU` register holding two bits
//! per key (*access-disable* and *write-disable*). Userspace flips
//! permissions with the unprivileged `wrpkru` instruction in ~23 cycles,
//! without touching the page tables. Poseidon (Middleware '20) uses this to
//! keep its persistent-heap metadata read-only except inside allocator code.
//!
//! Real MPK needs pkey-capable hardware and kernel support, so this crate
//! provides a faithful software model:
//!
//! * [`MpkDomain`] — the per-process key space: 16 keys, key 0 reserved and
//!   always read-write, `pkey_alloc`/`pkey_free`, and the default rights
//!   that a thread starts from (the analogue of the init value Linux gives
//!   `PKRU` for keys allocated with `PKEY_DISABLE_WRITE`).
//! * [`Pkru`] — a per-thread register value, two bits per key, read and
//!   written through the domain (`rdpkru`/`wrpkru`). Each `wrpkru` is
//!   charged [`WRPKRU_CYCLES`] simulated cycles in the domain statistics.
//! * [`PkruGuard`] — an RAII guard that grants the current thread write
//!   access to one key and restores the previous `PKRU` value on drop,
//!   which is exactly how Poseidon brackets its allocation/free paths.
//!
//! Enforcement happens at the memory substrate: the `pmem` crate tags
//! device pages with keys and consults [`MpkDomain::access_allowed`] on
//! every load/store, turning a would-be SIGSEGV into a
//! `ProtectionFault` error.
//!
//! # Examples
//!
//! ```
//! use mpk::{AccessKind, AccessRights, MpkDomain};
//!
//! # fn main() -> Result<(), mpk::MpkError> {
//! let domain = MpkDomain::new();
//! let key = domain.pkey_alloc(AccessRights::ReadOnly)?;
//!
//! // By default the key is read-only on every thread.
//! assert!(domain.access_allowed(key, AccessKind::Read));
//! assert!(!domain.access_allowed(key, AccessKind::Write));
//!
//! // Inside the guard the current thread (and only it) may write.
//! {
//!     let _guard = domain.grant_write(key);
//!     assert!(domain.access_allowed(key, AccessKind::Write));
//! }
//! assert!(!domain.access_allowed(key, AccessKind::Write));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod guard;
mod keys;
mod pkru;

pub use guard::PkruGuard;
pub use keys::{AccessRights, MpkDomain, MpkError, MpkStats, ProtectionKey, NUM_KEYS};
pub use pkru::{AccessKind, Pkru, WRPKRU_CYCLES};
