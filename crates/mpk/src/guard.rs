//! RAII permission guards.

use crate::keys::{MpkDomain, ProtectionKey};

/// An RAII guard granting the current thread write access to one protection
/// key; the previous `PKRU` value is restored on drop.
///
/// This is the bracket Poseidon places around every allocator operation
/// (§4.3): the metadata region becomes read-writable *for the executing
/// thread only* at operation entry and reverts at exit. Save/restore (rather
/// than unconditionally disabling on drop) makes guards nestable, which the
/// recovery path relies on when it frees micro-logged addresses while
/// already holding a guard.
///
/// # Examples
///
/// ```
/// use mpk::{AccessKind, AccessRights, MpkDomain};
///
/// # fn main() -> Result<(), mpk::MpkError> {
/// let domain = MpkDomain::new();
/// let key = domain.pkey_alloc(AccessRights::ReadOnly)?;
/// {
///     let _outer = domain.grant_write(key);
///     {
///         let _inner = domain.grant_write(key);
///     }
///     // Still writable: the inner guard restored the outer grant.
///     assert!(domain.access_allowed(key, AccessKind::Write));
/// }
/// assert!(!domain.access_allowed(key, AccessKind::Write));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PkruGuard<'d> {
    domain: &'d MpkDomain,
    saved: u32,
}

impl MpkDomain {
    /// Grants the calling thread write access to `key` until the returned
    /// guard is dropped. Executes one `wrpkru` now and one on drop.
    pub fn grant_write(&self, key: ProtectionKey) -> PkruGuard<'_> {
        let saved = self.rdpkru();
        self.wrpkru(saved.with_key_writable(key.index()));
        PkruGuard { domain: self, saved: saved.0 }
    }
}

impl Drop for PkruGuard<'_> {
    fn drop(&mut self) {
        self.domain.wrpkru(crate::Pkru(self.saved));
    }
}

#[cfg(test)]
mod tests {
    use crate::{AccessKind, AccessRights, MpkDomain};

    #[test]
    fn guard_grants_and_restores() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        assert!(!d.access_allowed(k, AccessKind::Write));
        {
            let _g = d.grant_write(k);
            assert!(d.access_allowed(k, AccessKind::Write));
        }
        assert!(!d.access_allowed(k, AccessKind::Write));
    }

    #[test]
    fn nested_guards_keep_outer_grant() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        let outer = d.grant_write(k);
        {
            let _inner = d.grant_write(k);
            assert!(d.access_allowed(k, AccessKind::Write));
        }
        assert!(d.access_allowed(k, AccessKind::Write));
        drop(outer);
        assert!(!d.access_allowed(k, AccessKind::Write));
    }

    #[test]
    fn guard_counts_two_wrpkru() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        let before = d.stats().wrpkru_count;
        drop(d.grant_write(k));
        assert_eq!(d.stats().wrpkru_count, before + 2);
    }

    #[test]
    fn guard_only_affects_its_key() {
        let d = MpkDomain::new();
        let k1 = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        let k2 = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        let _g = d.grant_write(k1);
        assert!(d.access_allowed(k1, AccessKind::Write));
        assert!(!d.access_allowed(k2, AccessKind::Write));
    }
}
