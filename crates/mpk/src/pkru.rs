//! The per-thread `PKRU` register model.

use std::cell::RefCell;
use std::collections::HashMap;

/// Simulated cost of one `wrpkru` instruction, in CPU cycles.
///
/// The Poseidon paper (§4.3, citing libmpk) reports "around 23 CPU cycles";
/// the domain statistics charge this per permission change so that cost
/// models can account for protection overhead.
pub const WRPKRU_CYCLES: u64 = 23;

/// The kind of memory access being checked against a thread's [`Pkru`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from the protected region.
    Read,
    /// A store to the protected region.
    Write,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A value of the `PKRU` register: two bits per protection key.
///
/// Bit `2k` is the *access-disable* (AD) bit of key `k` — when set, both
/// loads and stores fault. Bit `2k + 1` is the *write-disable* (WD) bit —
/// when set, stores fault. This matches the Intel SDM layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pkru(pub u32);

impl Pkru {
    /// The register value granting full access to every key.
    pub const ALL_ACCESS: Pkru = Pkru(0);

    /// Returns the access-disable bit mask of `key`.
    #[inline]
    pub fn ad_bit(key: u8) -> u32 {
        1u32 << (2 * key as u32)
    }

    /// Returns the write-disable bit mask of `key`.
    #[inline]
    pub fn wd_bit(key: u8) -> u32 {
        1u32 << (2 * key as u32 + 1)
    }

    /// Returns whether this register value permits `kind` accesses under `key`.
    #[inline]
    pub fn allows(self, key: u8, kind: AccessKind) -> bool {
        if self.0 & Self::ad_bit(key) != 0 {
            return false;
        }
        match kind {
            AccessKind::Read => true,
            AccessKind::Write => self.0 & Self::wd_bit(key) == 0,
        }
    }

    /// Returns a copy of this value with both disable bits of `key` cleared
    /// (full access to `key`).
    #[inline]
    pub fn with_key_writable(self, key: u8) -> Pkru {
        Pkru(self.0 & !(Self::ad_bit(key) | Self::wd_bit(key)))
    }

    /// Returns a copy of this value with the write-disable bit of `key` set
    /// and the access-disable bit cleared (read-only access to `key`).
    #[inline]
    pub fn with_key_read_only(self, key: u8) -> Pkru {
        Pkru((self.0 & !Self::ad_bit(key)) | Self::wd_bit(key))
    }

    /// Returns a copy of this value with the access-disable bit of `key` set
    /// (no access to `key`).
    #[inline]
    pub fn with_key_no_access(self, key: u8) -> Pkru {
        Pkru(self.0 | Self::ad_bit(key))
    }
}

/// Per-thread register file: one `PKRU` value per [`MpkDomain`]
/// (identified by the domain id), with a one-entry fast-path cache because
/// virtually all programs use a single domain.
///
/// [`MpkDomain`]: crate::MpkDomain
struct PkruTls {
    last_domain: u64,
    last_value: u32,
    others: HashMap<u64, u32>,
}

thread_local! {
    static PKRU_TLS: RefCell<Option<PkruTls>> = const { RefCell::new(None) };
}

/// Reads the current thread's `PKRU` for domain `domain_id`, initialising it
/// to `default` on first use (the simulated analogue of a new thread
/// inheriting the process default).
pub(crate) fn read_tls(domain_id: u64, default: u32) -> u32 {
    PKRU_TLS.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some(tls) if tls.last_domain == domain_id => tls.last_value,
            Some(tls) => {
                let value = *tls.others.entry(domain_id).or_insert(default);
                // Swap the fast-path cache to the domain just used.
                tls.others.insert(tls.last_domain, tls.last_value);
                tls.last_domain = domain_id;
                tls.last_value = value;
                value
            }
            None => {
                *slot = Some(PkruTls { last_domain: domain_id, last_value: default, others: HashMap::new() });
                default
            }
        }
    })
}

/// Writes the current thread's `PKRU` for domain `domain_id`.
pub(crate) fn write_tls(domain_id: u64, value: u32) {
    PKRU_TLS.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_mut() {
            Some(tls) if tls.last_domain == domain_id => tls.last_value = value,
            Some(tls) => {
                tls.others.insert(tls.last_domain, tls.last_value);
                tls.last_domain = domain_id;
                tls.last_value = value;
            }
            None => {
                *slot = Some(PkruTls { last_domain: domain_id, last_value: value, others: HashMap::new() });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_access_allows_everything() {
        for key in 0..16 {
            assert!(Pkru::ALL_ACCESS.allows(key, AccessKind::Read));
            assert!(Pkru::ALL_ACCESS.allows(key, AccessKind::Write));
        }
    }

    #[test]
    fn write_disable_blocks_only_writes() {
        let pkru = Pkru::ALL_ACCESS.with_key_read_only(3);
        assert!(pkru.allows(3, AccessKind::Read));
        assert!(!pkru.allows(3, AccessKind::Write));
        // Other keys are unaffected.
        assert!(pkru.allows(2, AccessKind::Write));
        assert!(pkru.allows(4, AccessKind::Write));
    }

    #[test]
    fn access_disable_blocks_reads_and_writes() {
        let pkru = Pkru::ALL_ACCESS.with_key_no_access(15);
        assert!(!pkru.allows(15, AccessKind::Read));
        assert!(!pkru.allows(15, AccessKind::Write));
    }

    #[test]
    fn writable_clears_both_bits() {
        let pkru = Pkru::ALL_ACCESS.with_key_no_access(7).with_key_read_only(7).with_key_writable(7);
        assert!(pkru.allows(7, AccessKind::Read));
        assert!(pkru.allows(7, AccessKind::Write));
    }

    #[test]
    fn bit_layout_matches_sdm() {
        assert_eq!(Pkru::ad_bit(0), 0b01);
        assert_eq!(Pkru::wd_bit(0), 0b10);
        assert_eq!(Pkru::ad_bit(1), 0b0100);
        assert_eq!(Pkru::wd_bit(1), 0b1000);
    }

    #[test]
    fn tls_initialises_from_default_and_remembers_writes() {
        // Use unlikely domain ids to avoid interference from other tests on
        // this thread.
        let d1 = u64::MAX - 1;
        let d2 = u64::MAX - 2;
        assert_eq!(read_tls(d1, 0xAAAA), 0xAAAA);
        write_tls(d1, 0x1234);
        assert_eq!(read_tls(d1, 0xAAAA), 0x1234);
        // A second domain has an independent register.
        assert_eq!(read_tls(d2, 0x5555), 0x5555);
        assert_eq!(read_tls(d1, 0xAAAA), 0x1234);
    }

    #[test]
    fn tls_is_per_thread() {
        let d = u64::MAX - 3;
        write_tls(d, 0x42);
        std::thread::spawn(move || {
            // The spawned thread starts from the default, not the parent's value.
            assert_eq!(read_tls(d, 0x77), 0x77);
        })
        .join()
        .unwrap();
        assert_eq!(read_tls(d, 0x77), 0x42);
    }
}
