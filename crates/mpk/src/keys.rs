//! Protection-key allocation and the per-process key domain.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use platform::sync::Mutex;

use crate::pkru::{read_tls, write_tls, AccessKind, Pkru, WRPKRU_CYCLES};

/// Number of protection keys per domain (Intel MPK provides 16).
pub const NUM_KEYS: u8 = 16;

/// A protection key handle returned by [`MpkDomain::pkey_alloc`].
///
/// Key 0 is the implicit default key of every page and is never returned by
/// allocation, mirroring Linux's `pkey_alloc(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtectionKey(u8);

impl ProtectionKey {
    /// The default key carried by untagged pages; always fully accessible.
    pub const DEFAULT: ProtectionKey = ProtectionKey(0);

    /// Returns the raw key index (0..16).
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Creates a key handle from a raw index.
    ///
    /// # Errors
    ///
    /// Returns [`MpkError::InvalidKey`] if `index >= NUM_KEYS`.
    pub fn from_index(index: u8) -> Result<ProtectionKey, MpkError> {
        if index < NUM_KEYS {
            Ok(ProtectionKey(index))
        } else {
            Err(MpkError::InvalidKey(index))
        }
    }
}

impl std::fmt::Display for ProtectionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkey{}", self.0)
    }
}

/// Initial access rights installed in the domain's default `PKRU` when a
/// key is allocated — the analogue of `pkey_alloc(2)`'s `init_access_rights`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessRights {
    /// Reads and writes allowed (no disable bits).
    #[default]
    ReadWrite,
    /// Reads allowed, writes fault (`PKEY_DISABLE_WRITE`).
    ReadOnly,
    /// All accesses fault (`PKEY_DISABLE_ACCESS`).
    None,
}

/// Errors reported by the MPK model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpkError {
    /// All 15 allocatable keys are in use.
    OutOfKeys,
    /// The key index is out of range or refers to an unallocated key.
    InvalidKey(u8),
}

impl std::fmt::Display for MpkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpkError::OutOfKeys => f.write_str("no free protection keys (16 per domain, key 0 reserved)"),
            MpkError::InvalidKey(k) => write!(f, "invalid protection key index {k}"),
        }
    }
}

impl std::error::Error for MpkError {}

/// Counters describing protection activity inside a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MpkStats {
    /// Number of `wrpkru` executions (permission changes).
    pub wrpkru_count: u64,
    /// Simulated cycles spent in `wrpkru` ([`WRPKRU_CYCLES`] each).
    pub wrpkru_cycles: u64,
    /// Number of denied accesses observed through [`MpkDomain::access_allowed`].
    pub violations: u64,
}

/// A process-like protection-key domain: 16 keys, a default `PKRU`
/// template for fresh threads, and per-thread registers accessed through
/// `rdpkru`/`wrpkru`.
///
/// The `pmem` crate holds one domain per simulated device and consults it on
/// every guarded access. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct MpkDomain {
    id: u64,
    /// Bitmap of allocated keys; bit 0 (the default key) is always set.
    allocated: Mutex<u16>,
    /// The `PKRU` value a thread starts from the first time it touches this
    /// domain.
    default_pkru: AtomicU32,
    wrpkru_count: AtomicU64,
    violations: AtomicU64,
}

static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

impl MpkDomain {
    /// Creates a fresh domain with all 15 allocatable keys free and an
    /// all-access default `PKRU`.
    pub fn new() -> MpkDomain {
        MpkDomain {
            id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
            allocated: Mutex::new(1),
            default_pkru: AtomicU32::new(Pkru::ALL_ACCESS.0),
            wrpkru_count: AtomicU64::new(0),
            violations: AtomicU64::new(0),
        }
    }

    /// Returns the unique id of this domain (used to index the per-thread
    /// register file).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Allocates a protection key and installs `rights` for it in the
    /// domain's default `PKRU`, so that *every* thread — current and future —
    /// observes those rights until it explicitly executes `wrpkru`.
    ///
    /// Note this is slightly stronger than Linux, where `init_access_rights`
    /// only affects the calling thread; Poseidon additionally re-disables
    /// write access at the end of every allocator operation, so the two
    /// models agree in steady state. We adopt the stronger default so that
    /// threads spawned before heap initialisation are also protected.
    ///
    /// # Errors
    ///
    /// Returns [`MpkError::OutOfKeys`] if all 15 keys are allocated.
    pub fn pkey_alloc(&self, rights: AccessRights) -> Result<ProtectionKey, MpkError> {
        let mut allocated = self.allocated.lock();
        for key in 1..NUM_KEYS {
            let bit = 1u16 << key;
            if *allocated & bit == 0 {
                *allocated |= bit;
                let mut default = Pkru(self.default_pkru.load(Ordering::Relaxed));
                default = match rights {
                    AccessRights::ReadWrite => default.with_key_writable(key),
                    AccessRights::ReadOnly => default.with_key_read_only(key),
                    AccessRights::None => default.with_key_no_access(key),
                };
                self.default_pkru.store(default.0, Ordering::Relaxed);
                return Ok(ProtectionKey(key));
            }
        }
        Err(MpkError::OutOfKeys)
    }

    /// Releases a key allocated with [`pkey_alloc`](Self::pkey_alloc) and
    /// resets its default rights to all-access.
    ///
    /// # Errors
    ///
    /// Returns [`MpkError::InvalidKey`] for key 0 or a key that is not
    /// currently allocated.
    pub fn pkey_free(&self, key: ProtectionKey) -> Result<(), MpkError> {
        if key.index() == 0 {
            return Err(MpkError::InvalidKey(0));
        }
        let mut allocated = self.allocated.lock();
        let bit = 1u16 << key.index();
        if *allocated & bit == 0 {
            return Err(MpkError::InvalidKey(key.index()));
        }
        *allocated &= !bit;
        let default = Pkru(self.default_pkru.load(Ordering::Relaxed)).with_key_writable(key.index());
        self.default_pkru.store(default.0, Ordering::Relaxed);
        Ok(())
    }

    /// Reads the calling thread's `PKRU` value for this domain.
    #[inline]
    pub fn rdpkru(&self) -> Pkru {
        Pkru(read_tls(self.id, self.default_pkru.load(Ordering::Relaxed)))
    }

    /// Writes the calling thread's `PKRU` value, charging the simulated
    /// `wrpkru` cost.
    #[inline]
    pub fn wrpkru(&self, value: Pkru) {
        self.wrpkru_count.fetch_add(1, Ordering::Relaxed);
        write_tls(self.id, value.0);
    }

    /// Returns whether the calling thread may perform a `kind` access to a
    /// page tagged with `key`. A denial is counted in [`MpkStats::violations`].
    #[inline]
    pub fn access_allowed(&self, key: ProtectionKey, kind: AccessKind) -> bool {
        if key.index() == 0 {
            return true;
        }
        let ok = self.rdpkru().allows(key.index(), kind);
        if !ok {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Returns a snapshot of the domain's protection-activity counters.
    pub fn stats(&self) -> MpkStats {
        let wrpkru_count = self.wrpkru_count.load(Ordering::Relaxed);
        MpkStats {
            wrpkru_count,
            wrpkru_cycles: wrpkru_count * WRPKRU_CYCLES,
            violations: self.violations.load(Ordering::Relaxed),
        }
    }

    /// Returns the default `PKRU` value for threads that have not executed
    /// `wrpkru` in this domain.
    pub fn default_pkru(&self) -> Pkru {
        Pkru(self.default_pkru.load(Ordering::Relaxed))
    }
}

impl Default for MpkDomain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_distinct_keys_and_exhausts_at_15() {
        let d = MpkDomain::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            let k = d.pkey_alloc(AccessRights::ReadWrite).unwrap();
            assert!(k.index() >= 1 && k.index() < 16);
            assert!(seen.insert(k));
        }
        assert_eq!(d.pkey_alloc(AccessRights::ReadWrite), Err(MpkError::OutOfKeys));
    }

    #[test]
    fn free_makes_key_reusable() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        d.pkey_free(k).unwrap();
        let k2 = d.pkey_alloc(AccessRights::ReadWrite).unwrap();
        assert_eq!(k, k2);
    }

    #[test]
    fn cannot_free_default_or_unallocated_key() {
        let d = MpkDomain::new();
        assert_eq!(d.pkey_free(ProtectionKey::DEFAULT), Err(MpkError::InvalidKey(0)));
        assert_eq!(d.pkey_free(ProtectionKey::from_index(5).unwrap()), Err(MpkError::InvalidKey(5)));
    }

    #[test]
    fn read_only_key_blocks_writes_by_default() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        assert!(d.access_allowed(k, AccessKind::Read));
        assert!(!d.access_allowed(k, AccessKind::Write));
        assert_eq!(d.stats().violations, 1);
    }

    #[test]
    fn default_key_always_accessible() {
        let d = MpkDomain::new();
        assert!(d.access_allowed(ProtectionKey::DEFAULT, AccessKind::Write));
    }

    #[test]
    fn wrpkru_is_thread_local() {
        let d = std::sync::Arc::new(MpkDomain::new());
        let k = d.pkey_alloc(AccessRights::ReadOnly).unwrap();
        // Grant write on this thread.
        d.wrpkru(d.rdpkru().with_key_writable(k.index()));
        assert!(d.access_allowed(k, AccessKind::Write));
        // Another thread still sees the read-only default.
        let d2 = d.clone();
        std::thread::spawn(move || {
            assert!(!d2.access_allowed(k, AccessKind::Write));
        })
        .join()
        .unwrap();
        // And this thread keeps its grant.
        assert!(d.access_allowed(k, AccessKind::Write));
    }

    #[test]
    fn stats_count_wrpkru_and_cycles() {
        let d = MpkDomain::new();
        d.wrpkru(Pkru::ALL_ACCESS);
        d.wrpkru(Pkru::ALL_ACCESS);
        let s = d.stats();
        assert_eq!(s.wrpkru_count, 2);
        assert_eq!(s.wrpkru_cycles, 2 * WRPKRU_CYCLES);
    }

    #[test]
    fn none_rights_disable_reads() {
        let d = MpkDomain::new();
        let k = d.pkey_alloc(AccessRights::None).unwrap();
        assert!(!d.access_allowed(k, AccessKind::Read));
        assert!(!d.access_allowed(k, AccessKind::Write));
    }
}
