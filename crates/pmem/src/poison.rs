//! Media-error (poison) tracking.
//!
//! Real persistent memory degrades: a DIMM line can become *uncorrectable*,
//! after which loads from it raise a machine-check while the surrounding
//! lines stay readable. The OS records such lines in a "bad block" list
//! (exposed by an Address Range Scrub), and they persist across reboots
//! until explicitly cleared. This module models that failure mode at
//! cache-line granularity: a [`PoisonSet`] is the device's durable set of
//! poisoned lines, consulted on every read and flush.
//!
//! The set is optimised for the overwhelmingly common case of *zero*
//! poisoned lines: a single relaxed atomic load short-circuits every
//! check, so healthy devices pay nothing measurable.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::CACHE_LINE_SIZE;

/// One contiguous run of poisoned bytes, as reported by
/// [`scrub`](crate::PmemDevice::scrub). Always cache-line aligned and a
/// multiple of [`CACHE_LINE_SIZE`](crate::CACHE_LINE_SIZE) long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonRange {
    /// Line-aligned device offset of the first poisoned byte.
    pub offset: u64,
    /// Length of the poisoned run in bytes.
    pub len: u64,
}

impl PoisonRange {
    /// Whether this range overlaps `[offset, offset + len)`.
    pub fn overlaps(&self, offset: u64, len: u64) -> bool {
        len > 0 && offset < self.offset + self.len && self.offset < offset.saturating_add(len)
    }
}

/// The set of poisoned cache lines of one device.
#[derive(Debug, Default)]
pub(crate) struct PoisonSet {
    /// Number of poisoned lines; checked first so unpoisoned devices pay
    /// one relaxed load per access.
    count: AtomicU64,
    /// Poisoned line numbers (`offset / CACHE_LINE_SIZE`), ordered so that
    /// scrubs can coalesce adjacent lines into ranges.
    lines: Mutex<BTreeSet<u64>>,
}

impl PoisonSet {
    pub(crate) fn new() -> PoisonSet {
        PoisonSet::default()
    }

    /// Number of currently poisoned lines.
    pub(crate) fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Poisons every line covering `[offset, offset + len)`; returns how
    /// many lines were newly poisoned.
    pub(crate) fn add(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let mut lines = self.lines.lock().unwrap();
        let mut added = 0;
        for line in offset / CACHE_LINE_SIZE..=(offset + len - 1) / CACHE_LINE_SIZE {
            added += lines.insert(line) as u64;
        }
        self.count.fetch_add(added, Ordering::Relaxed);
        added
    }

    /// Clears every poisoned line covering `[offset, offset + len)`;
    /// returns the line numbers that were cleared (so the device can zero
    /// exactly those lines, as an ARS clear does).
    pub(crate) fn clear(&self, offset: u64, len: u64) -> Vec<u64> {
        if len == 0 || self.len() == 0 {
            return Vec::new();
        }
        let mut lines = self.lines.lock().unwrap();
        let mut cleared = Vec::new();
        for line in offset / CACHE_LINE_SIZE..=(offset + len - 1) / CACHE_LINE_SIZE {
            if lines.remove(&line) {
                cleared.push(line);
            }
        }
        self.count.fetch_sub(cleared.len() as u64, Ordering::Relaxed);
        cleared
    }

    /// Returns the line-aligned offset of the first poisoned line inside
    /// `[offset, offset + len)`, if any.
    pub(crate) fn first_hit(&self, offset: u64, len: u64) -> Option<u64> {
        if len == 0 || self.len() == 0 {
            return None;
        }
        let lines = self.lines.lock().unwrap();
        let first = offset / CACHE_LINE_SIZE;
        let last = (offset + len - 1) / CACHE_LINE_SIZE;
        lines.range(first..=last).next().map(|line| line * CACHE_LINE_SIZE)
    }

    /// All poisoned lines, coalesced into maximal contiguous ranges —
    /// the Address Range Scrub result.
    pub(crate) fn ranges(&self) -> Vec<PoisonRange> {
        let lines = self.lines.lock().unwrap();
        let mut out: Vec<PoisonRange> = Vec::new();
        for &line in lines.iter() {
            let offset = line * CACHE_LINE_SIZE;
            match out.last_mut() {
                Some(range) if range.offset + range.len == offset => range.len += CACHE_LINE_SIZE,
                _ => out.push(PoisonRange { offset, len: CACHE_LINE_SIZE }),
            }
        }
        out
    }

    /// Raw poisoned line numbers, for snapshot serialisation.
    pub(crate) fn line_numbers(&self) -> Vec<u64> {
        self.lines.lock().unwrap().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_clear_and_count() {
        let set = PoisonSet::new();
        assert_eq!(set.len(), 0);
        assert_eq!(set.add(100, 1), 1); // line 1
        assert_eq!(set.add(64, 128), 1); // lines 1..=2, line 1 already in
        assert_eq!(set.len(), 2);
        assert_eq!(set.clear(0, 4096), vec![1, 2]);
        assert_eq!(set.len(), 0);
        assert_eq!(set.add(0, 0), 0);
        assert!(set.clear(0, 4096).is_empty());
    }

    #[test]
    fn first_hit_is_line_aligned_and_ordered() {
        let set = PoisonSet::new();
        set.add(192, 64); // line 3
        set.add(320, 64); // line 5
        assert_eq!(set.first_hit(0, 64), None);
        assert_eq!(set.first_hit(0, 1024), Some(192));
        assert_eq!(set.first_hit(200, 8), Some(192)); // mid-line access
        assert_eq!(set.first_hit(256, 512), Some(320));
        assert_eq!(set.first_hit(384, 1024), None);
    }

    #[test]
    fn ranges_coalesce_adjacent_lines() {
        let set = PoisonSet::new();
        set.add(64, 192); // lines 1..=3
        set.add(448, 64); // line 7
        let ranges = set.ranges();
        assert_eq!(ranges, vec![PoisonRange { offset: 64, len: 192 }, PoisonRange { offset: 448, len: 64 }]);
        assert!(ranges[0].overlaps(0, 65));
        assert!(!ranges[0].overlaps(0, 64));
        assert!(!ranges[1].overlaps(448, 0));
    }
}
