//! Write-combining flush batches.
//!
//! A `clwb` costs a full validation + cache-model round trip per call,
//! and — much worse for a logging allocator — every eager
//! `clwb`+`sfence` pair is a serialising barrier. A [`FlushBatch`]
//! collects the *lines* a caller intends to flush, deduplicating as it
//! goes (two stores to one cache line need one `clwb`, not two), so the
//! caller can issue every flush of an operation back-to-back and pay a
//! single fence for the lot: note ranges while mutating, then
//! [`PmemDevice::flush_batch`](crate::PmemDevice::flush_batch) (or
//! [`MetaView::flush_batch`](crate::MetaView::flush_batch)) + one
//! `sfence` at the ordering point.
//!
//! The batch holds line *numbers*, not data — noting a range never
//! touches the device, so it cannot fail and costs nothing until the
//! flush is issued.

use crate::cache::CACHE_LINE_SIZE;

/// A deduplicated set of cache lines pending `clwb`. See the
/// [module docs](self).
#[derive(Debug, Default, Clone)]
pub struct FlushBatch {
    /// Line numbers (device offset / [`CACHE_LINE_SIZE`]), deduplicated.
    /// Operations touch a handful of lines, so a linear-scan `Vec` beats
    /// a hash set and keeps flush order deterministic (insertion order).
    lines: Vec<u64>,
}

impl FlushBatch {
    /// An empty batch.
    pub fn new() -> FlushBatch {
        FlushBatch::default()
    }

    /// Adds every line covering `[offset, offset + len)` to the batch.
    /// Lines already noted are not added again. A zero-length range adds
    /// nothing.
    pub fn note(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = offset / CACHE_LINE_SIZE;
        let last = (offset + len - 1) / CACHE_LINE_SIZE;
        for line in first..=last {
            if !self.lines.contains(&line) {
                self.lines.push(line);
            }
        }
    }

    /// Whether no lines are pending.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Number of distinct lines pending (= `clwb`s a flush will issue).
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Forgets all pending lines (the batch can be reused).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// The pending line numbers, in insertion order.
    pub(crate) fn lines(&self) -> &[u64] {
        &self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_dedupes_by_line() {
        let mut batch = FlushBatch::new();
        batch.note(0, 8);
        batch.note(8, 8); // same line
        batch.note(63, 2); // lines 0 and 1
        assert_eq!(batch.line_count(), 2);
        batch.note(64, 64); // line 1 again
        assert_eq!(batch.line_count(), 2);
        assert_eq!(batch.lines(), &[0, 1]);
    }

    #[test]
    fn zero_length_note_is_ignored() {
        let mut batch = FlushBatch::new();
        batch.note(128, 0);
        assert!(batch.is_empty());
        assert_eq!(batch.line_count(), 0);
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut batch = FlushBatch::new();
        batch.note(256, 16);
        assert!(!batch.is_empty());
        batch.clear();
        assert!(batch.is_empty());
        batch.note(0, 1);
        assert_eq!(batch.lines(), &[0]);
    }
}
