//! Sparse backing store.
//!
//! Device capacity is virtual: memory materialises in 2 MiB chunks on first
//! write (reads of unmaterialised chunks observe zeros), and
//! [`punch`](ChunkStore::punch) returns a chunk to the store — the analogue
//! of `fallocate(FALLOC_FL_PUNCH_HOLE)` on a DAX file, which Poseidon uses
//! to keep unused hash-table levels free (§5.6).
//!
//! Chunk payloads are arrays of `AtomicU64` words accessed with relaxed
//! loads/stores (plus CAS read-modify-write at unaligned edges), so
//! concurrent access through the device is never undefined behaviour, while
//! aligned bulk copies still move a word per atomic operation. Like real
//! memory, the store provides no ordering by itself; allocators synchronise
//! with their own locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use platform::sync::RwLock;

/// Materialisation granularity of the sparse store (2 MiB).
pub const CHUNK_SIZE: u64 = 1 << 21;

const WORDS_PER_CHUNK: usize = (CHUNK_SIZE / 8) as usize;

/// Chunk-slot directory granularity: slots themselves are host metadata
/// (one lock word per 2 MiB of device), so for TB-scale virtual
/// capacities they are grouped and each group's slot array materialises
/// lazily — an untouched group costs one pointer.
const CHUNKS_PER_GROUP: usize = 512; // 1 GiB of device per group

struct Chunk {
    words: Box<[AtomicU64]>,
}

impl Chunk {
    fn new_zeroed() -> Chunk {
        let words = (0..WORDS_PER_CHUNK).map(|_| AtomicU64::new(0)).collect();
        Chunk { words }
    }
}

type ChunkSlot = RwLock<Option<Box<Chunk>>>;

/// The sparse chunked backing store of a device.
pub(crate) struct ChunkStore {
    groups: Box<[OnceLock<Box<[ChunkSlot]>>]>,
    resident_bytes: AtomicU64,
}

impl ChunkStore {
    pub(crate) fn new(capacity: u64) -> ChunkStore {
        let chunks = capacity.div_ceil(CHUNK_SIZE) as usize;
        let n = chunks.div_ceil(CHUNKS_PER_GROUP);
        ChunkStore { groups: (0..n).map(|_| OnceLock::new()).collect(), resident_bytes: AtomicU64::new(0) }
    }

    /// The slot for `chunk_index` if its group is materialised.
    #[inline]
    fn slot(&self, chunk_index: usize) -> Option<&ChunkSlot> {
        self.groups[chunk_index / CHUNKS_PER_GROUP].get().map(|g| &g[chunk_index % CHUNKS_PER_GROUP])
    }

    /// The slot for `chunk_index`, materialising its group on demand.
    #[inline]
    fn slot_or_init(&self, chunk_index: usize) -> &ChunkSlot {
        let group = self.groups[chunk_index / CHUNKS_PER_GROUP]
            .get_or_init(|| (0..CHUNKS_PER_GROUP).map(|_| RwLock::new(None)).collect());
        &group[chunk_index % CHUNKS_PER_GROUP]
    }

    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    pub(crate) fn is_resident(&self, chunk_index: usize) -> bool {
        chunk_index / CHUNKS_PER_GROUP < self.groups.len()
            && self.slot(chunk_index).is_some_and(|c| c.read().is_some())
    }

    /// Copies `buf.len()` bytes starting at `offset` into `buf`.
    /// The caller has bounds-checked the range.
    pub(crate) fn read(&self, offset: u64, buf: &mut [u8]) {
        self.for_each_segment_len(offset, buf.len(), |chunk_index, in_chunk, range| {
            let Some(slot) = self.slot(chunk_index) else {
                buf[range].fill(0);
                return;
            };
            let guard = slot.read();
            match guard.as_deref() {
                Some(chunk) => chunk_read(&chunk.words, in_chunk, &mut buf[range]),
                None => buf[range].fill(0),
            }
        });
    }

    /// Copies `buf` into the store starting at `offset`, materialising
    /// chunks as needed. The caller has bounds-checked the range.
    pub(crate) fn write(&self, offset: u64, buf: &[u8]) {
        self.for_each_segment_len(offset, buf.len(), |chunk_index, in_chunk, range| {
            let slot = self.slot_or_init(chunk_index);
            let guard = slot.read();
            if let Some(chunk) = guard.as_deref() {
                chunk_write(&chunk.words, in_chunk, &buf[range]);
                return;
            }
            drop(guard);
            let mut guard = slot.write();
            if guard.is_none() {
                *guard = Some(Box::new(Chunk::new_zeroed()));
                self.resident_bytes.fetch_add(CHUNK_SIZE, Ordering::Relaxed);
            }
            // Write under the held write guard: chunk stores are relaxed
            // atomics, so excluding concurrent writers here costs nothing
            // correctness-wise and avoids a drop/reacquire window in which
            // `punch` could remove the chunk we just materialised.
            chunk_write(&guard.as_deref().expect("just materialised").words, in_chunk, &buf[range]);
        });
    }

    /// Atomically applies `f` to the aligned u64 word at `offset`
    /// (read-modify-write), returning the previous value. The caller has
    /// bounds- and alignment-checked the offset.
    pub(crate) fn fetch_update_u64(&self, offset: u64, f: impl Fn(u64) -> u64) -> u64 {
        debug_assert_eq!(offset % 8, 0);
        let chunk_index = (offset / CHUNK_SIZE) as usize;
        let in_chunk = (offset % CHUNK_SIZE) as usize;
        let slot = self.slot_or_init(chunk_index);
        loop {
            let guard = slot.read();
            if let Some(chunk) = guard.as_deref() {
                return chunk.words[in_chunk / 8]
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| Some(f(w)))
                    .expect("closure never returns None");
            }
            drop(guard);
            let mut guard = slot.write();
            if guard.is_none() {
                *guard = Some(Box::new(Chunk::new_zeroed()));
                self.resident_bytes.fetch_add(CHUNK_SIZE, Ordering::Relaxed);
            }
        }
    }

    /// Dematerialises every chunk fully covered by `[offset, offset+len)`
    /// and zero-fills the partial edges. Returns the number of bytes
    /// returned to the store.
    pub(crate) fn punch(&self, offset: u64, len: u64) -> u64 {
        let mut released = 0;
        let end = offset + len;
        // Zero partial edges first so the punched range reads as zeros; the
        // fully covered chunks in between are dematerialised below.
        let first_full = offset.next_multiple_of(CHUNK_SIZE);
        let last_full = (end / CHUNK_SIZE * CHUNK_SIZE).max(first_full);
        if offset < first_full.min(end) {
            let head = (first_full.min(end) - offset) as usize;
            self.write(offset, &vec![0u8; head]);
        }
        if last_full < end && last_full >= offset.max(first_full) {
            self.write(last_full, &vec![0u8; (end - last_full) as usize]);
        }
        let mut chunk = first_full;
        while chunk + CHUNK_SIZE <= end {
            let index = (chunk / CHUNK_SIZE) as usize;
            if let Some(slot) = self.slot(index) {
                let mut guard = slot.write();
                if guard.take().is_some() {
                    self.resident_bytes.fetch_sub(CHUNK_SIZE, Ordering::Relaxed);
                    released += CHUNK_SIZE;
                }
            }
            chunk += CHUNK_SIZE;
        }
        released
    }

    /// Invokes `f(chunk_index, bytes)` for every resident chunk, with the
    /// chunk's current contents copied into a scratch buffer.
    pub(crate) fn for_each_resident(&self, mut f: impl FnMut(usize, &[u8])) {
        let mut scratch = vec![0u8; CHUNK_SIZE as usize];
        for (group_index, group) in self.groups.iter().enumerate() {
            let Some(group) = group.get() else { continue };
            for (slot_index, slot) in group.iter().enumerate() {
                let guard = slot.read();
                if let Some(chunk) = guard.as_deref() {
                    chunk_read(&chunk.words, 0, &mut scratch);
                    f(group_index * CHUNKS_PER_GROUP + slot_index, &scratch);
                }
            }
        }
    }

    fn for_each_segment_len(
        &self,
        offset: u64,
        len: usize,
        mut f: impl FnMut(usize, usize, std::ops::Range<usize>),
    ) {
        let mut remaining = len;
        let mut device_off = offset;
        let mut buf_off = 0usize;
        while remaining > 0 {
            let chunk_index = (device_off / CHUNK_SIZE) as usize;
            let in_chunk = (device_off % CHUNK_SIZE) as usize;
            let take = remaining.min(CHUNK_SIZE as usize - in_chunk);
            f(chunk_index, in_chunk, buf_off..buf_off + take);
            remaining -= take;
            device_off += take as u64;
            buf_off += take;
        }
    }
}

/// Reads bytes `[start, start + buf.len())` of a chunk into `buf`.
fn chunk_read(words: &[AtomicU64], start: usize, buf: &mut [u8]) {
    let mut pos = start;
    let mut out = 0usize;
    let end = start + buf.len();
    while pos < end {
        let word = words[pos / 8].load(Ordering::Relaxed).to_le_bytes();
        let in_word = pos % 8;
        let take = (8 - in_word).min(end - pos);
        buf[out..out + take].copy_from_slice(&word[in_word..in_word + take]);
        pos += take;
        out += take;
    }
}

/// Writes `buf` into bytes `[start, start + buf.len())` of a chunk.
fn chunk_write(words: &[AtomicU64], start: usize, buf: &[u8]) {
    let mut pos = start;
    let mut inp = 0usize;
    let end = start + buf.len();
    while pos < end {
        let in_word = pos % 8;
        let take = (8 - in_word).min(end - pos);
        let word = &words[pos / 8];
        if take == 8 {
            word.store(
                u64::from_le_bytes(buf[inp..inp + 8].try_into().expect("8-byte slice")),
                Ordering::Relaxed,
            );
        } else {
            rmw_bytes(word, in_word, &buf[inp..inp + take]);
        }
        pos += take;
        inp += take;
    }
}

/// Atomically replaces bytes `[byte_off, byte_off + bytes.len())` of a word
/// without disturbing its other bytes.
fn rmw_bytes(word: &AtomicU64, byte_off: usize, bytes: &[u8]) {
    let mut mask = 0u64;
    let mut value = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        let shift = 8 * (byte_off + i) as u32;
        mask |= 0xFFu64 << shift;
        value |= (b as u64) << shift;
    }
    word.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| Some((w & !mask) | value))
        .expect("fetch_update closure never returns None");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmaterialised_reads_are_zero() {
        let store = ChunkStore::new(4 * CHUNK_SIZE);
        let mut buf = [0xFFu8; 32];
        store.read(CHUNK_SIZE + 5, &mut buf);
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let store = ChunkStore::new(4 * CHUNK_SIZE);
        let data: Vec<u8> = (0..100).collect();
        store.write(3, &data);
        let mut buf = vec![0u8; 100];
        store.read(3, &mut buf);
        assert_eq!(buf, data);
        // Neighbouring bytes untouched.
        let mut edge = [9u8; 1];
        store.read(2, &mut edge);
        assert_eq!(edge, [0]);
    }

    #[test]
    fn writes_spanning_chunks() {
        let store = ChunkStore::new(4 * CHUNK_SIZE);
        let data = vec![0xABu8; 64];
        let off = CHUNK_SIZE - 10;
        store.write(off, &data);
        let mut buf = vec![0u8; 64];
        store.read(off, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(store.resident_bytes(), 2 * CHUNK_SIZE);
    }

    #[test]
    fn punch_releases_full_chunks_and_zeroes_edges() {
        let store = ChunkStore::new(4 * CHUNK_SIZE);
        store.write(0, &vec![1u8; (3 * CHUNK_SIZE) as usize]);
        assert_eq!(store.resident_bytes(), 3 * CHUNK_SIZE);
        // Punch from mid-chunk 0 through the end of chunk 1.
        let released = store.punch(CHUNK_SIZE / 2, CHUNK_SIZE / 2 + CHUNK_SIZE);
        assert_eq!(released, CHUNK_SIZE);
        assert!(!store.is_resident(1));
        assert!(store.is_resident(0));
        let mut b = [0u8; 1];
        store.read(CHUNK_SIZE / 2, &mut b);
        assert_eq!(b, [0]); // zeroed edge
        store.read(CHUNK_SIZE / 2 - 1, &mut b);
        assert_eq!(b, [1]); // untouched prefix
        store.read(2 * CHUNK_SIZE, &mut b);
        assert_eq!(b, [1]); // untouched suffix
    }

    #[test]
    fn for_each_resident_visits_written_chunks() {
        let store = ChunkStore::new(4 * CHUNK_SIZE);
        store.write(0, &[1]);
        store.write(2 * CHUNK_SIZE, &[2]);
        let mut seen = Vec::new();
        store.for_each_resident(|index, bytes| {
            seen.push((index, bytes[0]));
        });
        assert_eq!(seen, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let store = std::sync::Arc::new(ChunkStore::new(CHUNK_SIZE));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let store = store.clone();
                std::thread::spawn(move || {
                    let data = vec![t as u8 + 1; 1024];
                    for i in 0..64 {
                        store.write(t * 65536 + i * 1024, &data);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut buf = vec![0u8; 1024];
        for t in 0..8u64 {
            store.read(t * 65536, &mut buf);
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }

    #[test]
    fn huge_virtual_capacity_costs_nothing_untouched() {
        // A 1 TiB virtual store allocates only the group directory; the
        // first write to the tail materialises one group and one chunk.
        let store = ChunkStore::new(1 << 40);
        assert_eq!(store.resident_bytes(), 0);
        let tail = (1u64 << 40) - 16;
        store.write(tail, &[0xEE; 8]);
        assert_eq!(store.resident_bytes(), CHUNK_SIZE);
        let mut buf = [0u8; 8];
        store.read(tail, &mut buf);
        assert_eq!(buf, [0xEE; 8]);
        // Reads far away still see zeros without materialising anything.
        store.read(512 << 30, &mut buf);
        assert_eq!(buf, [0; 8]);
        assert_eq!(store.resident_bytes(), CHUNK_SIZE);
        // Punching an untouched region is a no-op, not a panic.
        assert_eq!(store.punch(256 << 30, 4 * CHUNK_SIZE), 0);
    }

    #[test]
    fn adjacent_byte_writes_do_not_clobber() {
        // Two threads hammering adjacent bytes of the same word must both
        // land (the RMW path is atomic).
        let store = std::sync::Arc::new(ChunkStore::new(CHUNK_SIZE));
        let s1 = store.clone();
        let s2 = store.clone();
        let t1 = std::thread::spawn(move || {
            for _ in 0..10_000 {
                s1.write(0, &[0xAA]);
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..10_000 {
                s2.write(1, &[0xBB]);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let mut buf = [0u8; 2];
        store.read(0, &mut buf);
        assert_eq!(buf, [0xAA, 0xBB]);
    }
}
