//! The simulated persistent-memory device.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use mpk::{AccessKind, MpkDomain, ProtectionKey};

use crate::batch::FlushBatch;
use crate::cache::{splitmix64, CacheModel, CrashMode, CACHE_LINE_SIZE};
use crate::cost::CostModel;
use crate::error::PmemError;
use crate::numa::{current_cpu, NumaTopology};
use crate::pod::Pod;
use crate::poison::{PoisonRange, PoisonSet};
use crate::stats::{DeviceStats, StatsSnapshot};
use crate::store::ChunkStore;
use crate::view::MetaView;

/// Size of a protection/NUMA page (4 KiB, matching x86 and MPK granularity).
pub const PAGE_SIZE: u64 = 4096;

/// Configuration of a [`PmemDevice`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Virtual capacity in bytes (backing memory is materialised lazily).
    pub capacity: u64,
    /// Ceiling for online growth ([`PmemDevice::grow`]). Directory
    /// structures (page maps, chunk groups) are sized for this bound but
    /// materialise lazily, so a large ceiling over a small live capacity
    /// costs only the top-level directories. Values below `capacity` are
    /// clamped up to it, so a default-constructed device is not growable.
    pub max_capacity: u64,
    /// Track dirty cache lines for crash simulation. Disable for pure
    /// throughput benchmarks; [`PmemDevice::simulate_crash`] then has
    /// nothing to revert.
    pub crash_tracking: bool,
    /// Enforce MPK page protection on every access. Disabling it is the
    /// "no protection" ablation.
    pub enforce_protection: bool,
    /// Socket/CPU model used for locality accounting.
    pub topology: NumaTopology,
    /// Event prices used by [`StatsSnapshot::media_time_ns`].
    pub cost_model: CostModel,
    /// Model uncorrectable media errors. When disabled,
    /// [`PmemDevice::poison`] and
    /// [`PmemDevice::arm_poison_after`] are inert and no access can
    /// return [`PmemError::Uncorrectable`].
    pub media_faults: bool,
}

impl DeviceConfig {
    /// A full-featured config with the given capacity, host topology and
    /// DCPMM costs.
    pub fn new(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            capacity,
            max_capacity: capacity,
            crash_tracking: true,
            enforce_protection: true,
            topology: NumaTopology::host(),
            cost_model: CostModel::dcpmm(),
            media_faults: true,
        }
    }

    /// A small (16 MiB) device for unit tests and doc examples.
    pub fn small_test() -> DeviceConfig {
        DeviceConfig::new(16 << 20)
    }

    /// A benchmark config: crash tracking off (no per-write bookkeeping),
    /// protection on (Poseidon always pays for its safety).
    pub fn bench(capacity: u64) -> DeviceConfig {
        DeviceConfig { crash_tracking: false, ..DeviceConfig::new(capacity) }
    }

    /// Returns a copy with crash tracking set to `enabled`.
    pub fn with_crash_tracking(mut self, enabled: bool) -> DeviceConfig {
        self.crash_tracking = enabled;
        self
    }

    /// Returns a copy with protection enforcement set to `enabled`.
    pub fn with_protection(mut self, enabled: bool) -> DeviceConfig {
        self.enforce_protection = enabled;
        self
    }

    /// Returns a copy with the given topology.
    pub fn with_topology(mut self, topology: NumaTopology) -> DeviceConfig {
        self.topology = topology;
        self
    }

    /// Returns a copy with media-fault modelling set to `enabled`.
    pub fn with_media_faults(mut self, enabled: bool) -> DeviceConfig {
        self.media_faults = enabled;
        self
    }

    /// Returns a copy whose device can [`grow`](PmemDevice::grow) online
    /// up to `max` bytes (clamped up to the live capacity).
    pub fn growable_to(mut self, max: u64) -> DeviceConfig {
        self.max_capacity = max;
        self
    }
}

/// A simulated NVMM device. See the [crate docs](crate) for the model.
///
/// All methods take `&self`; the device is meant to be shared across
/// threads in an `Arc`. Like real memory it provides no inter-thread
/// ordering of its own — allocators built on it synchronise with their own
/// locks — but unlike raw memory every access is bounds-checked,
/// MPK-checked, and free of undefined behaviour even under data races
/// (racing byte-writes land atomically).
pub struct PmemDevice {
    config: DeviceConfig,
    /// Live capacity: starts at [`DeviceConfig::capacity`] and only ever
    /// grows (up to [`DeviceConfig::max_capacity`]) via
    /// [`grow`](Self::grow). Like a file's size under `ftruncate`, a
    /// growth is durable the moment it returns — crashes never revert it.
    capacity: AtomicU64,
    store: ChunkStore,
    cache: Option<CacheModel>,
    page_keys: PageMap,
    page_nodes: PageMap,
    domain: Arc<MpkDomain>,
    stats: DeviceStats,
    crashed: AtomicBool,
    /// Remaining mutation events before an injected crash; negative =
    /// disarmed.
    crash_countdown: AtomicI64,
    poison: PoisonSet,
    /// Remaining ranged stores before an injected media fault; negative =
    /// disarmed.
    poison_countdown: AtomicI64,
    /// Seed selecting which line of the triggering store gets poisoned.
    poison_seed: AtomicU64,
    /// Ranges known to carry one uniform protection key, memoized so
    /// [`map_meta`](Self::map_meta) validates a multi-megabyte metadata
    /// region with one key check instead of a per-page scan. Invalidated
    /// whenever page keys change.
    prot_memo: Mutex<Vec<(u64, u64, u8)>>,
    /// Bumped by every page-key change; guards memo inserts against
    /// racing [`set_page_key`](Self::set_page_key) calls.
    prot_epoch: AtomicU64,
}

impl std::fmt::Debug for PmemDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemDevice")
            .field("capacity", &self.capacity())
            .field("resident_bytes", &self.store.resident_bytes())
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Per-page byte attributes (protection key, NUMA node) over the device's
/// growth ceiling, stored as a two-level radix whose leaves materialise on
/// first non-default store: pages of untouched leaves read as 0. This keeps
/// a TB-scale `max_capacity` from eagerly allocating gigabyte-order
/// attribute arrays.
struct PageMap {
    leaves: Box<[std::sync::OnceLock<Box<[AtomicU8]>>]>,
}

/// Pages covered by one [`PageMap`] leaf (128 MiB of device).
const PAGES_PER_LEAF: usize = 1 << 15;

impl PageMap {
    fn new(max_capacity: u64) -> PageMap {
        let pages = max_capacity.div_ceil(PAGE_SIZE) as usize;
        let leaves = pages.div_ceil(PAGES_PER_LEAF).max(1);
        PageMap { leaves: (0..leaves).map(|_| std::sync::OnceLock::new()).collect() }
    }

    #[inline]
    fn get(&self, page: u64) -> u8 {
        let page = page as usize;
        match self.leaves[page / PAGES_PER_LEAF].get() {
            Some(leaf) => leaf[page % PAGES_PER_LEAF].load(Ordering::Relaxed),
            None => 0,
        }
    }

    #[inline]
    fn set(&self, page: u64, value: u8) {
        let page = page as usize;
        let slot = &self.leaves[page / PAGES_PER_LEAF];
        if value == 0 && slot.get().is_none() {
            return; // the default needs no leaf
        }
        let leaf = slot.get_or_init(|| (0..PAGES_PER_LEAF).map(|_| AtomicU8::new(0)).collect());
        leaf[page % PAGES_PER_LEAF].store(value, Ordering::Relaxed);
    }
}

impl PmemDevice {
    /// Creates a device with the given configuration.
    pub fn new(mut config: DeviceConfig) -> PmemDevice {
        config.max_capacity = config.max_capacity.max(config.capacity);
        PmemDevice {
            capacity: AtomicU64::new(config.capacity),
            store: ChunkStore::new(config.max_capacity),
            cache: config.crash_tracking.then(CacheModel::new),
            page_keys: PageMap::new(config.max_capacity),
            page_nodes: PageMap::new(config.max_capacity),
            domain: Arc::new(MpkDomain::new()),
            stats: DeviceStats::new(),
            crashed: AtomicBool::new(false),
            crash_countdown: AtomicI64::new(-1),
            poison: PoisonSet::new(),
            poison_countdown: AtomicI64::new(-1),
            poison_seed: AtomicU64::new(0),
            prot_memo: Mutex::new(Vec::new()),
            prot_epoch: AtomicU64::new(0),
            config,
        }
    }

    /// Live device capacity in bytes (grows via [`grow`](Self::grow)).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// The device's provisioned growth ceiling.
    #[inline]
    pub fn max_capacity(&self) -> u64 {
        self.config.max_capacity
    }

    /// Extends the device online to `new_capacity` bytes — the analogue
    /// of `ftruncate` on a sparse DAX file. Idempotent for the current
    /// capacity; durable immediately (a crash never shrinks the device
    /// back). No backing memory is touched: the grown range materialises
    /// lazily on first write, so growing an almost-empty device costs
    /// nothing on media.
    ///
    /// # Errors
    ///
    /// [`PmemError::BadGrow`] if `new_capacity` would shrink the device
    /// or exceed [`DeviceConfig::max_capacity`];
    /// [`PmemError::Crashed`] on a crashed device.
    pub fn grow(&self, new_capacity: u64) -> Result<(), PmemError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(PmemError::Crashed);
        }
        let max = self.config.max_capacity;
        loop {
            let current = self.capacity();
            if new_capacity < current || new_capacity > max {
                return Err(PmemError::BadGrow { requested: new_capacity, current, max });
            }
            if new_capacity == current {
                return Ok(());
            }
            if self
                .capacity
                .compare_exchange(current, new_capacity, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The MPK domain guarding this device's pages.
    pub fn mpk(&self) -> &Arc<MpkDomain> {
        &self.domain
    }

    /// The NUMA topology used for locality accounting.
    pub fn topology(&self) -> NumaTopology {
        self.config.topology
    }

    /// Bytes of backing memory currently materialised.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the traffic counters to zero.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub(crate) fn store_ref(&self) -> &ChunkStore {
        &self.store
    }

    pub(crate) fn cache_ref(&self) -> Option<&CacheModel> {
        self.cache.as_ref()
    }

    pub(crate) fn stats_ref(&self) -> &DeviceStats {
        &self.stats
    }

    #[inline]
    pub(crate) fn check_range(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        let capacity = self.capacity();
        if offset.checked_add(len).is_none_or(|end| end > capacity) {
            return Err(PmemError::OutOfBounds { offset, len, capacity });
        }
        Ok(())
    }

    #[inline]
    pub(crate) fn check_protection(&self, offset: u64, len: u64, kind: AccessKind) -> Result<(), PmemError> {
        if !self.config.enforce_protection || len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let key = self.page_keys.get(page);
            if key != 0 {
                let pkey = ProtectionKey::from_index(key).expect("stored keys are valid");
                if !self.domain.access_allowed(pkey, kind) {
                    self.stats.record_protection_fault();
                    return Err(PmemError::ProtectionFault { offset: page * PAGE_SIZE, key, kind });
                }
            }
        }
        Ok(())
    }

    /// Protection check over a whole region, memoizing ranges that carry
    /// one uniform key so repeated [`map_meta`](Self::map_meta) calls cost
    /// one key lookup instead of a per-page scan. Faults are attributed to
    /// the first offending page, exactly like
    /// [`check_protection`](Self::check_protection).
    fn check_protection_region(&self, offset: u64, len: u64, kind: AccessKind) -> Result<(), PmemError> {
        if !self.config.enforce_protection || len == 0 {
            return Ok(());
        }
        let memoized =
            { self.prot_memo.lock().unwrap().iter().find(|m| m.0 == offset && m.1 == len).map(|m| m.2) };
        if let Some(key) = memoized {
            if key == 0 {
                return Ok(());
            }
            let pkey = ProtectionKey::from_index(key).expect("stored keys are valid");
            if self.domain.access_allowed(pkey, kind) {
                return Ok(());
            }
            self.stats.record_protection_fault();
            return Err(PmemError::ProtectionFault { offset: (offset / PAGE_SIZE) * PAGE_SIZE, key, kind });
        }
        let epoch = self.prot_epoch.load(Ordering::Acquire);
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        let mut uniform = Some(self.page_keys.get(first));
        for page in first..=last {
            let key = self.page_keys.get(page);
            if uniform != Some(key) {
                uniform = None;
            }
            if key != 0 {
                let pkey = ProtectionKey::from_index(key).expect("stored keys are valid");
                if !self.domain.access_allowed(pkey, kind) {
                    self.stats.record_protection_fault();
                    return Err(PmemError::ProtectionFault { offset: page * PAGE_SIZE, key, kind });
                }
            }
        }
        if let Some(key) = uniform {
            let mut memo = self.prot_memo.lock().unwrap();
            // Only memoize what the scan actually saw: discard the result
            // if the keys changed underneath it.
            if self.prot_epoch.load(Ordering::Acquire) == epoch {
                if memo.len() >= 64 {
                    memo.clear();
                }
                memo.push((offset, len, key));
            }
        }
        Ok(())
    }

    #[inline]
    pub(crate) fn is_remote(&self, offset: u64) -> bool {
        let node = self.page_nodes.get(offset / PAGE_SIZE) as usize;
        self.config.topology.node_of_cpu(current_cpu()) != node
    }

    #[inline]
    pub(crate) fn lines(offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        (offset + len - 1) / CACHE_LINE_SIZE - offset / CACHE_LINE_SIZE + 1
    }

    /// Counts one mutation event against an armed crash countdown.
    /// Returns `Err(Crashed)` if the device is (or just became) crashed.
    #[inline]
    pub(crate) fn mutation_event(&self) -> Result<(), PmemError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(PmemError::Crashed);
        }
        if self.crash_countdown.load(Ordering::Relaxed) >= 0
            && self.crash_countdown.fetch_sub(1, Ordering::Relaxed) == 0
        {
            self.crashed.store(true, Ordering::Relaxed);
            return Err(PmemError::Crashed);
        }
        Ok(())
    }

    /// Fails with [`PmemError::Uncorrectable`] if `[offset, offset + len)`
    /// touches a poisoned line.
    #[inline]
    pub(crate) fn check_poison(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        if let Some(line) = self.poison.first_hit(offset, len) {
            self.stats.record_uncorrectable();
            return Err(PmemError::Uncorrectable { offset: line });
        }
        Ok(())
    }

    /// Counts one ranged store against an armed poison countdown; at zero,
    /// one seed-chosen line of the triggering store turns uncorrectable.
    /// The store itself succeeds — like real media, degradation is silent
    /// until the line is next read or flushed.
    #[inline]
    pub(crate) fn poison_event(&self, offset: u64, len: u64) {
        if len == 0
            || !self.config.media_faults
            || self.poison_countdown.load(Ordering::Relaxed) < 0
            || self.poison_countdown.fetch_sub(1, Ordering::Relaxed) != 0
        {
            return;
        }
        let first = offset / CACHE_LINE_SIZE;
        let line = first + splitmix64(self.poison_seed.load(Ordering::Relaxed)) % Self::lines(offset, len);
        let added = self.poison.add(line * CACHE_LINE_SIZE, CACHE_LINE_SIZE);
        self.stats.record_poisoned(added);
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`] (reads
    /// are allowed on a crashed device, as recovery code must inspect it),
    /// or [`PmemError::Uncorrectable`] if the range touches a poisoned
    /// line.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), PmemError> {
        self.stats.record_validation();
        self.check_range(offset, buf.len() as u64)?;
        self.check_protection(offset, buf.len() as u64, AccessKind::Read)?;
        self.check_poison(offset, buf.len() as u64)?;
        self.store.read(offset, buf);
        self.stats.record_read(
            buf.len() as u64,
            Self::lines(offset, buf.len() as u64),
            self.is_remote(offset),
        );
        Ok(())
    }

    /// Writes `buf` at `offset`. The store lands in the modelled CPU cache;
    /// call [`persist`](Self::persist) (or `clwb` + `sfence`) to make it
    /// durable.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`], or
    /// [`PmemError::Crashed`].
    pub fn write(&self, offset: u64, buf: &[u8]) -> Result<(), PmemError> {
        self.stats.record_validation();
        self.check_range(offset, buf.len() as u64)?;
        self.check_protection(offset, buf.len() as u64, AccessKind::Write)?;
        self.mutation_event()?;
        if buf.is_empty() {
            return Ok(());
        }
        if let Some(cache) = &self.cache {
            cache.before_write(offset, buf.len() as u64, |line_off, line_buf| {
                // Clamp to capacity: the last line of an unaligned capacity
                // may extend past it; the out-of-range tail stays zero.
                let end = (line_off + line_buf.len() as u64).min(self.capacity());
                if line_off < end {
                    self.store.read(line_off, &mut line_buf[..(end - line_off) as usize]);
                }
            });
        }
        self.store.write(offset, buf);
        self.poison_event(offset, buf.len() as u64);
        self.stats.record_write(
            buf.len() as u64,
            Self::lines(offset, buf.len() as u64),
            self.is_remote(offset),
        );
        Ok(())
    }

    /// Reads a [`Pod`] value at `offset`.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read).
    pub fn read_pod<T: Pod>(&self, offset: u64) -> Result<T, PmemError> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    /// Writes a [`Pod`] value at `offset`.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_pod<T: Pod>(&self, offset: u64, value: &T) -> Result<(), PmemError> {
        self.write(offset, value.as_bytes())
    }

    /// Atomically ORs `mask` into the 8-byte-aligned u64 at `offset`,
    /// returning the previous value — the simulated equivalent of a
    /// `lock or` on persistent memory. Subject to the same protection and
    /// crash-tracking rules as [`write`](Self::write).
    ///
    /// # Errors
    ///
    /// [`PmemError::Misaligned`], plus everything [`write`](Self::write)
    /// can return.
    pub fn fetch_or_u64(&self, offset: u64, mask: u64) -> Result<u64, PmemError> {
        self.fetch_update_u64(offset, |w| w | mask)
    }

    /// Atomically ANDs `mask` into the 8-byte-aligned u64 at `offset`,
    /// returning the previous value.
    ///
    /// # Errors
    ///
    /// As for [`fetch_or_u64`](Self::fetch_or_u64).
    pub fn fetch_and_u64(&self, offset: u64, mask: u64) -> Result<u64, PmemError> {
        self.fetch_update_u64(offset, |w| w & mask)
    }

    fn fetch_update_u64(&self, offset: u64, f: impl Fn(u64) -> u64) -> Result<u64, PmemError> {
        self.stats.record_validation();
        if !offset.is_multiple_of(8) {
            return Err(PmemError::Misaligned { value: offset, required: 8 });
        }
        self.check_range(offset, 8)?;
        self.check_protection(offset, 8, AccessKind::Write)?;
        // A read-modify-write loads the line first, so poison faults it.
        self.check_poison(offset, 8)?;
        self.mutation_event()?;
        if let Some(cache) = &self.cache {
            cache.before_write(offset, 8, |line_off, line_buf| {
                let end = (line_off + line_buf.len() as u64).min(self.capacity());
                if line_off < end {
                    self.store.read(line_off, &mut line_buf[..(end - line_off) as usize]);
                }
            });
        }
        let previous = self.store.fetch_update_u64(offset, f);
        self.poison_event(offset, 8);
        self.stats.record_write(8, 1, self.is_remote(offset));
        Ok(previous)
    }

    /// Flushes the cache lines covering `[offset, offset + len)` (`clwb`).
    /// Not durable until the next [`sfence`](Self::sfence).
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::Crashed`], or
    /// [`PmemError::Uncorrectable`] — writing back to a failed line is how
    /// the DIMM reports poison on the store path.
    pub fn clwb(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.stats.record_validation();
        self.check_range(offset, len)?;
        self.check_poison(offset, len)?;
        self.mutation_event()?;
        let lines = match &self.cache {
            Some(cache) => {
                cache.clwb(offset, len);
                Self::lines(offset, len)
            }
            None => Self::lines(offset, len),
        };
        self.stats.record_clwb(lines);
        Ok(())
    }

    /// Commits all pending flushes (`sfence`); flushed lines are durable
    /// afterwards.
    ///
    /// # Errors
    ///
    /// [`PmemError::Crashed`].
    pub fn sfence(&self) -> Result<(), PmemError> {
        self.mutation_event()?;
        if let Some(cache) = &self.cache {
            cache.sfence();
        }
        self.stats.record_sfence();
        Ok(())
    }

    /// `clwb` + `sfence`: makes `[offset, offset + len)` durable.
    ///
    /// # Errors
    ///
    /// As for [`clwb`](Self::clwb) and [`sfence`](Self::sfence).
    pub fn persist(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.clwb(offset, len)?;
        self.sfence()
    }

    /// Issues one `clwb` per line noted in `batch` (see
    /// [`FlushBatch`]): the write-combining flush path. The whole batch
    /// costs a single validation; each line still consults the poison
    /// set and counts one mutation event against an armed crash, so
    /// crash injection can land between any two flushes. The batch is
    /// left untouched — callers [`clear`](FlushBatch::clear) it after
    /// the ordering [`sfence`](Self::sfence).
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::Crashed`], or
    /// [`PmemError::Uncorrectable`] if a noted line is poisoned.
    pub fn flush_batch(&self, batch: &FlushBatch) -> Result<(), PmemError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.stats.record_validation();
        for &line in batch.lines() {
            let offset = line * CACHE_LINE_SIZE;
            let len = CACHE_LINE_SIZE.min(self.capacity().saturating_sub(offset));
            self.check_range(offset, len.max(1))?;
            self.check_poison(offset, len)?;
            self.mutation_event()?;
            if let Some(cache) = &self.cache {
                cache.clwb(offset, len);
            }
        }
        self.stats.record_clwb(batch.line_count() as u64);
        Ok(())
    }

    /// Instrumentation hook for log writers layered on this device:
    /// records that one log entry covering `words` 8-byte words was
    /// appended. Feeds the `undo_entries`/`undo_words` counters of
    /// [`stats`](Self::stats), which benchmarks use to model the
    /// per-word and per-entry persistence baselines.
    pub fn record_undo_append(&self, words: u64) {
        self.stats.record_undo_append(words);
    }

    /// Opens a checked session over `[offset, offset + len)`: bounds,
    /// protection (for `kind` accesses) and poison are validated **once**,
    /// here, and the returned [`MetaView`] then reads and writes the chunk
    /// words directly — no per-access validation, and traffic counters
    /// accumulate locally until the view drops.
    ///
    /// Crash and media-fault fidelity are preserved per access: every
    /// write through the view still captures dirty-line pre-images, counts
    /// a mutation event against an armed crash, and counts a store against
    /// an armed poison injection; reads and flushes still fail on lines
    /// that turned poisoned *after* the map. Writes through a view mapped
    /// [`AccessKind::Read`] fall back to a full per-access protection
    /// check.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`], or
    /// [`PmemError::Uncorrectable`] if any line of the range is already
    /// poisoned (callers quarantine such regions instead of operating on
    /// them).
    pub fn map_meta(&self, offset: u64, len: u64, kind: AccessKind) -> Result<MetaView<'_>, PmemError> {
        self.stats.record_validation();
        self.check_range(offset, len)?;
        self.check_protection_region(offset, len, kind)?;
        self.check_poison(offset, len)?;
        self.stats.record_meta_map();
        Ok(MetaView::new(self, offset, len, kind))
    }

    /// Number of cache lines with stores that are not yet durable
    /// (always 0 when crash tracking is disabled).
    pub fn unpersisted_lines(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.unpersisted_lines())
    }

    /// Tags the pages covering `[offset, offset + len)` with `key`.
    /// This models updating page-table entries and is not itself subject to
    /// protection checks.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn set_page_key(&self, offset: u64, len: u64, key: ProtectionKey) -> Result<(), PmemError> {
        self.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.page_keys.set(page, key.index());
        }
        self.prot_epoch.fetch_add(1, Ordering::Release);
        self.prot_memo.lock().unwrap().clear();
        Ok(())
    }

    /// Returns the protection key of the page containing `offset`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn page_key(&self, offset: u64) -> Result<ProtectionKey, PmemError> {
        self.check_range(offset, 1)?;
        let key = self.page_keys.get(offset / PAGE_SIZE);
        Ok(ProtectionKey::from_index(key).expect("stored keys are valid"))
    }

    /// Assigns the pages covering `[offset, offset + len)` to NUMA node
    /// `node` for locality accounting.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn set_page_node(&self, offset: u64, len: u64, node: u8) -> Result<(), PmemError> {
        self.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.page_nodes.set(page, node);
        }
        Ok(())
    }

    /// Returns the pages covering `[offset, offset + len)` to the sparse
    /// store (the `fallocate` hole-punch analogue): fully covered 2 MiB
    /// backing chunks are dematerialised and the rest is zeroed. The hole
    /// is durable immediately, like the syscall. Returns released bytes.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`] (punching
    /// is a write), or [`PmemError::Crashed`].
    pub fn punch_hole(&self, offset: u64, len: u64) -> Result<u64, PmemError> {
        self.stats.record_validation();
        self.check_range(offset, len)?;
        self.check_protection(offset, len, AccessKind::Write)?;
        self.mutation_event()?;
        let released = self.store.punch(offset, len);
        if let Some(cache) = &self.cache {
            // The hole (and the zeroed edges) are durable immediately;
            // whatever was dirty in the range no longer needs reverting.
            cache.forget_range(offset, len);
        }
        // Punching re-provisions the backing media, clearing any poison
        // (fresh pages cannot carry old uncorrectable lines).
        self.poison.clear(offset, len);
        Ok(released)
    }

    /// Marks every cache line covering `[offset, offset + len)` as
    /// uncorrectable: subsequent reads, read-modify-writes and `clwb`s of
    /// those lines fail with [`PmemError::Uncorrectable`] until the poison
    /// is cleared. Returns the number of newly poisoned lines. Inert (and
    /// `Ok(0)`) when [`DeviceConfig::media_faults`] is disabled.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn poison(&self, offset: u64, len: u64) -> Result<u64, PmemError> {
        self.check_range(offset, len)?;
        if !self.config.media_faults {
            return Ok(0);
        }
        let added = self.poison.add(offset, len);
        self.stats.record_poisoned(added);
        Ok(added)
    }

    /// Clears poison from every line covering `[offset, offset + len)` and
    /// zeroes exactly the lines that were poisoned (an ARS
    /// clear-uncorrectable-error writes zeros; the old data is gone).
    /// The zeroes are durable immediately. Returns the number of lines
    /// cleared.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn clear_poison(&self, offset: u64, len: u64) -> Result<u64, PmemError> {
        self.check_range(offset, len)?;
        let cleared = self.poison.clear(offset, len);
        let zeroes = [0u8; CACHE_LINE_SIZE as usize];
        for &line in &cleared {
            let line_off = line * CACHE_LINE_SIZE;
            let end = (line_off + CACHE_LINE_SIZE).min(self.capacity());
            self.store.write(line_off, &zeroes[..(end - line_off) as usize]);
            if let Some(cache) = &self.cache {
                cache.forget_range(line_off, CACHE_LINE_SIZE);
            }
        }
        Ok(cleared.len() as u64)
    }

    /// Address Range Scrub: enumerates the currently poisoned lines,
    /// coalesced into maximal contiguous [`PoisonRange`]s.
    pub fn scrub(&self) -> Vec<PoisonRange> {
        self.poison.ranges()
    }

    /// Whether `[offset, offset + len)` touches a poisoned line.
    pub fn is_poisoned(&self, offset: u64, len: u64) -> bool {
        self.poison.first_hit(offset, len).is_some()
    }

    /// Number of currently poisoned lines.
    pub fn poisoned_lines(&self) -> u64 {
        self.poison.len()
    }

    /// Arms media-fault injection: on the `events`-th subsequent ranged
    /// store (writes and read-modify-writes each count one), one line of
    /// that store — chosen deterministically from `seed` — turns
    /// uncorrectable. `events = 0` poisons the next store. The store
    /// itself succeeds; the fault surfaces on the next read or flush of
    /// the line, modelling silent media degradation. Inert when
    /// [`DeviceConfig::media_faults`] is disabled.
    pub fn arm_poison_after(&self, events: u64, seed: u64) {
        self.poison_seed.store(seed, Ordering::Relaxed);
        self.poison_countdown.store(events.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Disarms media-fault injection (already-poisoned lines stay bad).
    pub fn disarm_poison(&self) {
        self.poison_countdown.store(-1, Ordering::Relaxed);
    }

    /// Arms crash injection: the device fails (and every subsequent
    /// mutation returns [`PmemError::Crashed`]) on the `events`-th mutation
    /// event (writes, `clwb`s, `sfence`s and hole punches each count one).
    /// `events = 0` crashes on the next event.
    pub fn arm_crash_after(&self, events: u64) {
        self.crash_countdown.store(events.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Disarms crash injection.
    pub fn disarm_crash(&self) {
        self.crash_countdown.store(-1, Ordering::Relaxed);
    }

    /// Whether the device is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Applies a power failure: every store that was not durable is
    /// reverted per `mode` (see [`CrashMode`]), tracking state is cleared,
    /// and the device is usable again (as if power returned). `seed` makes
    /// [`CrashMode::Adversarial`] deterministic.
    ///
    /// A no-op revert when crash tracking is disabled (the device still
    /// un-crashes).
    pub fn simulate_crash(&self, mode: CrashMode, seed: u64) {
        if let Some(cache) = &self.cache {
            cache.crash(mode, seed, |line_off, line_buf| {
                let end = (line_off + line_buf.len() as u64).min(self.capacity());
                if line_off < end {
                    self.store.write(line_off, &line_buf[..(end - line_off) as usize]);
                }
            });
        }
        self.crash_countdown.store(-1, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Clears the crashed flag without touching memory (for tests that
    /// inject a crash but want to inspect the raw post-crash state before
    /// reverting).
    pub fn clear_crash(&self) {
        self.crash_countdown.store(-1, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Saves the device's media image to `path`, including any poisoned
    /// lines (poison is durable media state and survives the round trip).
    ///
    /// The device must be clean (no unpersisted lines): a snapshot is the
    /// durable state, and saving a dirty device would silently promote
    /// volatile stores.
    ///
    /// # Errors
    ///
    /// [`PmemError::BadSnapshot`] if dirty, [`PmemError::Io`] on I/O
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PmemError> {
        use std::io::Write as _;
        if self.unpersisted_lines() > 0 {
            return Err(PmemError::BadSnapshot("device has unpersisted lines; persist or crash first"));
        }
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(SNAPSHOT_MAGIC_V2)?;
        out.write_all(&self.capacity().to_le_bytes())?;
        let mut count: u64 = 0;
        self.store.for_each_resident(|_, _| count += 1);
        out.write_all(&count.to_le_bytes())?;
        let mut result = Ok(());
        self.store.for_each_resident(|index, bytes| {
            if result.is_ok() {
                result = out.write_all(&(index as u64).to_le_bytes()).and_then(|_| out.write_all(bytes));
            }
        });
        result?;
        let poisoned = self.poison.line_numbers();
        out.write_all(&(poisoned.len() as u64).to_le_bytes())?;
        for line in poisoned {
            out.write_all(&line.to_le_bytes())?;
        }
        out.flush()?;
        Ok(())
    }

    /// Loads a device image previously written by [`save`](Self::save),
    /// applying `config` for everything except capacity (taken from the
    /// snapshot).
    ///
    /// # Errors
    ///
    /// [`PmemError::BadSnapshot`] on format mismatch, [`PmemError::Io`] on
    /// I/O failure.
    pub fn load(path: impl AsRef<Path>, config: DeviceConfig) -> Result<PmemDevice, PmemError> {
        use std::io::Read as _;
        let file = std::fs::File::open(path)?;
        let mut input = std::io::BufReader::new(file);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        let has_poison_section = match &magic {
            m if m == SNAPSHOT_MAGIC_V1 => false,
            m if m == SNAPSHOT_MAGIC_V2 => true,
            _ => return Err(PmemError::BadSnapshot("bad magic")),
        };
        let mut word = [0u8; 8];
        input.read_exact(&mut word)?;
        let capacity = u64::from_le_bytes(word);
        input.read_exact(&mut word)?;
        let count = u64::from_le_bytes(word);
        let device = PmemDevice::new(DeviceConfig {
            capacity,
            max_capacity: config.max_capacity.max(capacity),
            ..config
        });
        let mut chunk = vec![0u8; crate::store::CHUNK_SIZE as usize];
        for _ in 0..count {
            input.read_exact(&mut word)?;
            let index = u64::from_le_bytes(word);
            let in_range = index
                .checked_mul(crate::store::CHUNK_SIZE)
                .is_some_and(|off| off < capacity.next_multiple_of(crate::store::CHUNK_SIZE));
            if !in_range {
                return Err(PmemError::BadSnapshot("chunk index out of range"));
            }
            input.read_exact(&mut chunk)?;
            device.store.write(index * crate::store::CHUNK_SIZE, &chunk);
        }
        if has_poison_section {
            input.read_exact(&mut word)?;
            let poisoned = u64::from_le_bytes(word);
            for _ in 0..poisoned {
                input.read_exact(&mut word)?;
                let line = u64::from_le_bytes(word);
                let in_range = line.checked_mul(CACHE_LINE_SIZE).is_some_and(|off| off < capacity);
                if !in_range {
                    return Err(PmemError::BadSnapshot("poisoned line out of range"));
                }
                if device.config.media_faults {
                    device.poison.add(line * CACHE_LINE_SIZE, CACHE_LINE_SIZE);
                }
            }
        }
        Ok(device)
    }
}

/// Legacy snapshot format: chunks only, no poison section.
const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"PMEMSNP1";
/// Current snapshot format: chunks followed by the poisoned-line list.
const SNAPSHOT_MAGIC_V2: &[u8; 8] = b"PMEMSNP2";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::CpuPinGuard;
    use mpk::AccessRights;

    fn device() -> PmemDevice {
        PmemDevice::new(DeviceConfig::small_test())
    }

    #[test]
    fn bounds_are_enforced() {
        let dev = device();
        let cap = dev.capacity();
        assert!(matches!(dev.write(cap - 1, &[0, 0]), Err(PmemError::OutOfBounds { .. })));
        assert!(matches!(dev.read(cap, &mut [0]), Err(PmemError::OutOfBounds { .. })));
        assert!(dev.write(cap - 1, &[0]).is_ok());
        // Overflow-proof.
        assert!(matches!(dev.clwb(u64::MAX, 2), Err(PmemError::OutOfBounds { .. })));
    }

    #[test]
    fn pod_roundtrip() {
        let dev = device();
        dev.write_pod(128, &0xDEAD_BEEFu64).unwrap();
        assert_eq!(dev.read_pod::<u64>(128).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn protection_fault_on_tagged_page() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(0, PAGE_SIZE, key).unwrap();
        dev.write(PAGE_SIZE, &[1]).unwrap(); // untagged page: fine
        let err = dev.write(100, &[1]).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { key: k, .. } if k == key.index()));
        // Reads still allowed.
        assert!(dev.read(100, &mut [0]).is_ok());
        // With a grant, the write succeeds.
        let _g = dev.mpk().grant_write(key);
        assert!(dev.write(100, &[1]).is_ok());
        assert_eq!(dev.stats().protection_faults, 1);
    }

    #[test]
    fn protection_check_covers_spanning_access() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(PAGE_SIZE, PAGE_SIZE, key).unwrap();
        // Write starting on an untagged page but spilling into the tagged
        // one must fault — this is the heap-overflow scenario.
        let err = dev.write(PAGE_SIZE - 8, &[7; 16]).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { .. }));
    }

    #[test]
    fn crash_reverts_unpersisted_writes() {
        let dev = device();
        dev.write(0, &[1; 64]).unwrap();
        dev.persist(0, 64).unwrap();
        dev.write(64, &[2; 64]).unwrap();
        assert_eq!(dev.unpersisted_lines(), 1);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
        assert_eq!(dev.read_pod::<u8>(64).unwrap(), 0);
    }

    #[test]
    fn armed_crash_fails_the_nth_event_and_sticks() {
        let dev = device();
        dev.arm_crash_after(2);
        dev.write(0, &[1]).unwrap(); // event 0
        dev.write(8, &[2]).unwrap(); // event 1
        assert_eq!(dev.write(16, &[3]), Err(PmemError::Crashed)); // event 2: boom
        assert!(dev.is_crashed());
        assert_eq!(dev.sfence(), Err(PmemError::Crashed));
        // Reads still work for post-mortem inspection.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert!(!dev.is_crashed());
        // Unpersisted pre-crash writes were reverted.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 0);
        assert!(dev.write(0, &[9]).is_ok());
    }

    #[test]
    fn punch_hole_releases_and_zeroes_durably() {
        let dev = PmemDevice::new(DeviceConfig::new(8 * crate::store::CHUNK_SIZE));
        let len = 3 * crate::store::CHUNK_SIZE;
        dev.write(0, &vec![1; len as usize]).unwrap();
        dev.persist(0, len).unwrap();
        let released = dev.punch_hole(0, len).unwrap();
        assert_eq!(released, 3 * crate::store::CHUNK_SIZE);
        assert_eq!(dev.read_pod::<u8>(crate::store::CHUNK_SIZE).unwrap(), 0);
        // The hole survives a crash (it is durable like fallocate).
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 0);
    }

    #[test]
    fn numa_accounting_distinguishes_local_and_remote() {
        let config = DeviceConfig::small_test().with_topology(NumaTopology::new(2, 8));
        let dev = PmemDevice::new(config);
        dev.set_page_node(0, PAGE_SIZE, 1).unwrap();
        {
            let _pin = CpuPinGuard::pin(0); // node 0 -> remote
            dev.write(0, &[1; 64]).unwrap();
        }
        {
            let _pin = CpuPinGuard::pin(7); // node 1 -> local
            dev.write(0, &[1; 64]).unwrap();
        }
        let s = dev.stats();
        assert_eq!(s.write_lines_remote, 1);
        assert_eq!(s.write_lines_local, 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pmem-snap-{}", std::process::id()));
        let dev = device();
        dev.write(123, b"persist me").unwrap();
        dev.persist(123, 10).unwrap();
        dev.save(&dir).unwrap();
        let loaded = PmemDevice::load(&dir, DeviceConfig::small_test()).unwrap();
        let mut buf = [0u8; 10];
        loaded.read(123, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
        assert_eq!(loaded.capacity(), dev.capacity());
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn save_rejects_dirty_device() {
        let dev = device();
        dev.write(0, &[1]).unwrap();
        let err = dev.save(std::env::temp_dir().join("never-created")).unwrap_err();
        assert!(matches!(err, PmemError::BadSnapshot(_)));
    }

    #[test]
    fn poisoned_line_faults_reads_rmws_and_flushes() {
        let dev = device();
        dev.write(0, &[7; 256]).unwrap();
        dev.persist(0, 256).unwrap();
        assert_eq!(dev.poison(64, 1).unwrap(), 1); // line 1
                                                   // Reads of the poisoned line fail with its aligned offset; the
                                                   // neighbours stay readable.
        assert_eq!(dev.read(70, &mut [0; 4]), Err(PmemError::Uncorrectable { offset: 64 }));
        assert_eq!(dev.read(0, &mut [0; 64]), Ok(()));
        assert_eq!(dev.read_pod::<u8>(128).unwrap(), 7);
        // A spanning read reports the first poisoned line.
        assert_eq!(dev.read(0, &mut [0; 256]), Err(PmemError::Uncorrectable { offset: 64 }));
        // RMW loads the line, so it faults too.
        assert_eq!(dev.fetch_or_u64(64, 1), Err(PmemError::Uncorrectable { offset: 64 }));
        // Plain stores succeed (they land in cache)...
        dev.write(64, &[9; 64]).unwrap();
        // ...but writing them back to the failed line faults.
        assert_eq!(dev.clwb(64, 64), Err(PmemError::Uncorrectable { offset: 64 }));
        assert_eq!(dev.persist(0, 256), Err(PmemError::Uncorrectable { offset: 64 }));
        assert_eq!(dev.stats().uncorrectable_errors, 5);
        assert_eq!(dev.stats().lines_poisoned, 1);
    }

    #[test]
    fn scrub_clear_and_punch_remove_poison() {
        let dev = device();
        dev.write(0, &[1; 512]).unwrap();
        dev.persist(0, 512).unwrap();
        dev.poison(128, 128).unwrap(); // lines 2..=3
        dev.poison(448, 8).unwrap(); // line 7
        assert_eq!(dev.poisoned_lines(), 3);
        assert_eq!(
            dev.scrub(),
            vec![PoisonRange { offset: 128, len: 128 }, PoisonRange { offset: 448, len: 64 }]
        );
        // ARS clear zeroes exactly the cleared lines, durably.
        assert_eq!(dev.clear_poison(128, 128).unwrap(), 2);
        assert!(!dev.is_poisoned(128, 128));
        assert_eq!(dev.read_pod::<u8>(130).unwrap(), 0);
        assert_eq!(dev.read_pod::<u8>(256).unwrap(), 1); // neighbour intact
                                                         // Hole punching re-provisions the media, clearing poison with it.
        dev.punch_hole(448, 64).unwrap();
        assert_eq!(dev.poisoned_lines(), 0);
        assert!(dev.read(0, &mut [0; 512]).is_ok());
    }

    #[test]
    fn poison_survives_crash_and_snapshot_roundtrip() {
        let dev = device();
        dev.write(0, &[3; 128]).unwrap();
        dev.persist(0, 128).unwrap();
        dev.poison(64, 64).unwrap();
        dev.simulate_crash(CrashMode::Strict, 0);
        assert!(dev.is_poisoned(64, 64)); // poison is media state, not cache state
        let path = std::env::temp_dir().join(format!("pmem-poison-{}", std::process::id()));
        dev.save(&path).unwrap();
        let loaded = PmemDevice::load(&path, DeviceConfig::small_test()).unwrap();
        assert_eq!(loaded.scrub(), vec![PoisonRange { offset: 64, len: 64 }]);
        assert_eq!(loaded.read(64, &mut [0; 8]), Err(PmemError::Uncorrectable { offset: 64 }));
        assert_eq!(loaded.read_pod::<u8>(0).unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn armed_poison_hits_the_nth_store_silently() {
        let dev = device();
        dev.arm_poison_after(2, 42);
        dev.write(0, &[1; 64]).unwrap(); // event 0
        dev.write(64, &[1; 64]).unwrap(); // event 1
        assert_eq!(dev.poisoned_lines(), 0);
        dev.write(128, &[1; 192]).unwrap(); // event 2: one of lines 2..=4 dies
        assert_eq!(dev.poisoned_lines(), 1);
        let hit = dev.scrub()[0];
        assert!(hit.offset >= 128 && hit.offset < 320, "poison lands inside the store");
        assert_eq!(dev.read(hit.offset, &mut [0; 1]), Err(PmemError::Uncorrectable { offset: hit.offset }));
        // One-shot: later stores are unaffected.
        dev.write(1024, &[1; 64]).unwrap();
        assert_eq!(dev.poisoned_lines(), 1);
        // Determinism: the same seed picks the same line.
        let dev2 = device();
        dev2.arm_poison_after(2, 42);
        dev2.write(0, &[1; 64]).unwrap();
        dev2.write(64, &[1; 64]).unwrap();
        dev2.write(128, &[1; 192]).unwrap();
        assert_eq!(dev2.scrub(), dev.scrub());
    }

    #[test]
    fn media_faults_knob_disables_poisoning() {
        let dev = PmemDevice::new(DeviceConfig::small_test().with_media_faults(false));
        assert_eq!(dev.poison(0, 4096).unwrap(), 0);
        dev.arm_poison_after(0, 7);
        dev.write(0, &[1; 64]).unwrap();
        assert_eq!(dev.poisoned_lines(), 0);
        assert!(dev.read(0, &mut [0; 64]).is_ok());
    }

    #[test]
    fn bench_config_disables_tracking_only() {
        let dev = PmemDevice::new(DeviceConfig::bench(1 << 20));
        dev.write(0, &[1; 64]).unwrap();
        assert_eq!(dev.unpersisted_lines(), 0);
        dev.simulate_crash(CrashMode::Strict, 0);
        // Nothing reverted: tracking was off.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
    }

    #[test]
    fn grow_extends_bounds_online() {
        let dev = PmemDevice::new(DeviceConfig::new(1 << 20).growable_to(4 << 20));
        assert_eq!(dev.capacity(), 1 << 20);
        assert_eq!(dev.max_capacity(), 4 << 20);
        assert!(matches!(dev.write(1 << 20, &[1; 64]), Err(PmemError::OutOfBounds { .. })));
        dev.grow(2 << 20).unwrap();
        assert_eq!(dev.capacity(), 2 << 20);
        dev.write(1 << 20, &[7; 64]).unwrap();
        assert_eq!(dev.read_pod::<u8>(1 << 20).unwrap(), 7);
        // Growing to the current size is an accepted no-op.
        dev.grow(2 << 20).unwrap();
    }

    #[test]
    fn grow_rejects_shrink_and_over_max() {
        let dev = PmemDevice::new(DeviceConfig::new(2 << 20).growable_to(4 << 20));
        assert_eq!(
            dev.grow(1 << 20),
            Err(PmemError::BadGrow { requested: 1 << 20, current: 2 << 20, max: 4 << 20 })
        );
        assert_eq!(
            dev.grow(8 << 20),
            Err(PmemError::BadGrow { requested: 8 << 20, current: 2 << 20, max: 4 << 20 })
        );
        // Non-growable device: max_capacity clamps to capacity.
        let fixed = PmemDevice::new(DeviceConfig::new(2 << 20));
        assert!(fixed.grow(3 << 20).is_err());
    }

    #[test]
    fn grow_survives_crash_like_ftruncate() {
        let dev = PmemDevice::new(DeviceConfig::new(1 << 20).growable_to(4 << 20));
        dev.grow(2 << 20).unwrap();
        dev.write(1 << 20, &[9; 64]).unwrap();
        dev.simulate_crash(CrashMode::Strict, 1);
        dev.clear_crash();
        // The capacity itself is durable even though the unflushed write
        // may have been dropped.
        assert_eq!(dev.capacity(), 2 << 20);
        dev.write((2 << 20) - 64, &[3; 64]).unwrap();
    }

    #[test]
    fn growable_device_is_sparse_in_host_memory() {
        // A TB-scale ceiling over a tiny live capacity must cost only the
        // top-level directories, not per-page or per-chunk arrays.
        let dev = PmemDevice::new(DeviceConfig::new(1 << 20).growable_to(1 << 40));
        dev.write(0, &[1; 64]).unwrap();
        assert_eq!(dev.resident_bytes(), crate::store::CHUNK_SIZE);
        dev.grow(1 << 40).unwrap();
        dev.write((1 << 40) - 64, &[5; 64]).unwrap();
        assert_eq!(dev.resident_bytes(), 2 * crate::store::CHUNK_SIZE);
        let key = dev.mpk().pkey_alloc(AccessRights::ReadWrite).unwrap();
        dev.set_page_key((1 << 40) - PAGE_SIZE, PAGE_SIZE, key).unwrap();
        assert_eq!(dev.page_key((1 << 40) - PAGE_SIZE).unwrap(), key);
        assert_eq!(dev.page_key(1 << 30).unwrap().index(), 0);
    }

    #[test]
    fn snapshot_roundtrips_grown_capacity() {
        let dir = std::env::temp_dir().join(format!("pmem-grow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grown.pool");
        let dev = PmemDevice::new(DeviceConfig::new(1 << 20).growable_to(8 << 20));
        dev.grow(3 << 20).unwrap();
        dev.write((3 << 20) - 64, &[4; 64]).unwrap();
        dev.persist((3 << 20) - 64, 64).unwrap();
        dev.save(&path).unwrap();
        let back = PmemDevice::load(&path, DeviceConfig::new(0)).unwrap();
        assert_eq!(back.capacity(), 3 << 20);
        assert_eq!(back.read_pod::<u8>((3 << 20) - 64).unwrap(), 4);
        // Reloading under a growable config keeps the larger ceiling.
        let back = PmemDevice::load(&path, DeviceConfig::new(0).growable_to(16 << 20)).unwrap();
        assert_eq!(back.max_capacity(), 16 << 20);
        back.grow(4 << 20).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
