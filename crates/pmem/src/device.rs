//! The simulated persistent-memory device.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;

use mpk::{AccessKind, MpkDomain, ProtectionKey};

use crate::cache::{CacheModel, CrashMode, CACHE_LINE_SIZE};
use crate::cost::CostModel;
use crate::error::PmemError;
use crate::numa::{current_cpu, NumaTopology};
use crate::pod::Pod;
use crate::stats::{DeviceStats, StatsSnapshot};
use crate::store::ChunkStore;

/// Size of a protection/NUMA page (4 KiB, matching x86 and MPK granularity).
pub const PAGE_SIZE: u64 = 4096;

/// Configuration of a [`PmemDevice`].
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Virtual capacity in bytes (backing memory is materialised lazily).
    pub capacity: u64,
    /// Track dirty cache lines for crash simulation. Disable for pure
    /// throughput benchmarks; [`PmemDevice::simulate_crash`] then has
    /// nothing to revert.
    pub crash_tracking: bool,
    /// Enforce MPK page protection on every access. Disabling it is the
    /// "no protection" ablation.
    pub enforce_protection: bool,
    /// Socket/CPU model used for locality accounting.
    pub topology: NumaTopology,
    /// Event prices used by [`StatsSnapshot::media_time_ns`].
    pub cost_model: CostModel,
}

impl DeviceConfig {
    /// A full-featured config with the given capacity, host topology and
    /// DCPMM costs.
    pub fn new(capacity: u64) -> DeviceConfig {
        DeviceConfig {
            capacity,
            crash_tracking: true,
            enforce_protection: true,
            topology: NumaTopology::host(),
            cost_model: CostModel::dcpmm(),
        }
    }

    /// A small (16 MiB) device for unit tests and doc examples.
    pub fn small_test() -> DeviceConfig {
        DeviceConfig::new(16 << 20)
    }

    /// A benchmark config: crash tracking off (no per-write bookkeeping),
    /// protection on (Poseidon always pays for its safety).
    pub fn bench(capacity: u64) -> DeviceConfig {
        DeviceConfig { crash_tracking: false, ..DeviceConfig::new(capacity) }
    }

    /// Returns a copy with crash tracking set to `enabled`.
    pub fn with_crash_tracking(mut self, enabled: bool) -> DeviceConfig {
        self.crash_tracking = enabled;
        self
    }

    /// Returns a copy with protection enforcement set to `enabled`.
    pub fn with_protection(mut self, enabled: bool) -> DeviceConfig {
        self.enforce_protection = enabled;
        self
    }

    /// Returns a copy with the given topology.
    pub fn with_topology(mut self, topology: NumaTopology) -> DeviceConfig {
        self.topology = topology;
        self
    }
}

/// A simulated NVMM device. See the [crate docs](crate) for the model.
///
/// All methods take `&self`; the device is meant to be shared across
/// threads in an `Arc`. Like real memory it provides no inter-thread
/// ordering of its own — allocators built on it synchronise with their own
/// locks — but unlike raw memory every access is bounds-checked,
/// MPK-checked, and free of undefined behaviour even under data races
/// (racing byte-writes land atomically).
pub struct PmemDevice {
    config: DeviceConfig,
    store: ChunkStore,
    cache: Option<CacheModel>,
    page_keys: Box<[AtomicU8]>,
    page_nodes: Box<[AtomicU8]>,
    domain: Arc<MpkDomain>,
    stats: DeviceStats,
    crashed: AtomicBool,
    /// Remaining mutation events before an injected crash; negative =
    /// disarmed.
    crash_countdown: AtomicI64,
}

impl std::fmt::Debug for PmemDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemDevice")
            .field("capacity", &self.config.capacity)
            .field("resident_bytes", &self.store.resident_bytes())
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl PmemDevice {
    /// Creates a device with the given configuration.
    pub fn new(config: DeviceConfig) -> PmemDevice {
        let pages = config.capacity.div_ceil(PAGE_SIZE) as usize;
        PmemDevice {
            store: ChunkStore::new(config.capacity),
            cache: config.crash_tracking.then(CacheModel::new),
            page_keys: (0..pages).map(|_| AtomicU8::new(0)).collect(),
            page_nodes: (0..pages).map(|_| AtomicU8::new(0)).collect(),
            domain: Arc::new(MpkDomain::new()),
            stats: DeviceStats::new(),
            crashed: AtomicBool::new(false),
            crash_countdown: AtomicI64::new(-1),
            config,
        }
    }

    /// Device capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.config.capacity
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The MPK domain guarding this device's pages.
    pub fn mpk(&self) -> &Arc<MpkDomain> {
        &self.domain
    }

    /// The NUMA topology used for locality accounting.
    pub fn topology(&self) -> NumaTopology {
        self.config.topology
    }

    /// Bytes of backing memory currently materialised.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resets the traffic counters to zero.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    #[inline]
    fn check_range(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        if offset.checked_add(len).is_none_or(|end| end > self.config.capacity) {
            return Err(PmemError::OutOfBounds { offset, len, capacity: self.config.capacity });
        }
        Ok(())
    }

    #[inline]
    fn check_protection(&self, offset: u64, len: u64, kind: AccessKind) -> Result<(), PmemError> {
        if !self.config.enforce_protection || len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let key = self.page_keys[page as usize].load(Ordering::Relaxed);
            if key != 0 {
                let pkey = ProtectionKey::from_index(key).expect("stored keys are valid");
                if !self.domain.access_allowed(pkey, kind) {
                    self.stats.record_protection_fault();
                    return Err(PmemError::ProtectionFault { offset: page * PAGE_SIZE, key, kind });
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn is_remote(&self, offset: u64) -> bool {
        let node = self.page_nodes[(offset / PAGE_SIZE) as usize].load(Ordering::Relaxed) as usize;
        self.config.topology.node_of_cpu(current_cpu()) != node
    }

    #[inline]
    fn lines(offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        (offset + len - 1) / CACHE_LINE_SIZE - offset / CACHE_LINE_SIZE + 1
    }

    /// Counts one mutation event against an armed crash countdown.
    /// Returns `Err(Crashed)` if the device is (or just became) crashed.
    #[inline]
    fn mutation_event(&self) -> Result<(), PmemError> {
        if self.crashed.load(Ordering::Relaxed) {
            return Err(PmemError::Crashed);
        }
        if self.crash_countdown.load(Ordering::Relaxed) >= 0
            && self.crash_countdown.fetch_sub(1, Ordering::Relaxed) == 0
        {
            self.crashed.store(true, Ordering::Relaxed);
            return Err(PmemError::Crashed);
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`] or [`PmemError::ProtectionFault`] (reads
    /// are allowed on a crashed device, as recovery code must inspect it).
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), PmemError> {
        self.check_range(offset, buf.len() as u64)?;
        self.check_protection(offset, buf.len() as u64, AccessKind::Read)?;
        self.store.read(offset, buf);
        self.stats.record_read(
            buf.len() as u64,
            Self::lines(offset, buf.len() as u64),
            self.is_remote(offset),
        );
        Ok(())
    }

    /// Writes `buf` at `offset`. The store lands in the modelled CPU cache;
    /// call [`persist`](Self::persist) (or `clwb` + `sfence`) to make it
    /// durable.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`], or
    /// [`PmemError::Crashed`].
    pub fn write(&self, offset: u64, buf: &[u8]) -> Result<(), PmemError> {
        self.check_range(offset, buf.len() as u64)?;
        self.check_protection(offset, buf.len() as u64, AccessKind::Write)?;
        self.mutation_event()?;
        if buf.is_empty() {
            return Ok(());
        }
        if let Some(cache) = &self.cache {
            cache.before_write(offset, buf.len() as u64, |line_off, line_buf| {
                // Clamp to capacity: the last line of an unaligned capacity
                // may extend past it; the out-of-range tail stays zero.
                let end = (line_off + line_buf.len() as u64).min(self.config.capacity);
                if line_off < end {
                    self.store.read(line_off, &mut line_buf[..(end - line_off) as usize]);
                }
            });
        }
        self.store.write(offset, buf);
        self.stats.record_write(
            buf.len() as u64,
            Self::lines(offset, buf.len() as u64),
            self.is_remote(offset),
        );
        Ok(())
    }

    /// Reads a [`Pod`] value at `offset`.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read).
    pub fn read_pod<T: Pod>(&self, offset: u64) -> Result<T, PmemError> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    /// Writes a [`Pod`] value at `offset`.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_pod<T: Pod>(&self, offset: u64, value: &T) -> Result<(), PmemError> {
        self.write(offset, value.as_bytes())
    }

    /// Atomically ORs `mask` into the 8-byte-aligned u64 at `offset`,
    /// returning the previous value — the simulated equivalent of a
    /// `lock or` on persistent memory. Subject to the same protection and
    /// crash-tracking rules as [`write`](Self::write).
    ///
    /// # Errors
    ///
    /// [`PmemError::Misaligned`], plus everything [`write`](Self::write)
    /// can return.
    pub fn fetch_or_u64(&self, offset: u64, mask: u64) -> Result<u64, PmemError> {
        self.fetch_update_u64(offset, |w| w | mask)
    }

    /// Atomically ANDs `mask` into the 8-byte-aligned u64 at `offset`,
    /// returning the previous value.
    ///
    /// # Errors
    ///
    /// As for [`fetch_or_u64`](Self::fetch_or_u64).
    pub fn fetch_and_u64(&self, offset: u64, mask: u64) -> Result<u64, PmemError> {
        self.fetch_update_u64(offset, |w| w & mask)
    }

    fn fetch_update_u64(&self, offset: u64, f: impl Fn(u64) -> u64) -> Result<u64, PmemError> {
        if offset % 8 != 0 {
            return Err(PmemError::Misaligned { value: offset, required: 8 });
        }
        self.check_range(offset, 8)?;
        self.check_protection(offset, 8, AccessKind::Write)?;
        self.mutation_event()?;
        if let Some(cache) = &self.cache {
            cache.before_write(offset, 8, |line_off, line_buf| {
                let end = (line_off + line_buf.len() as u64).min(self.config.capacity);
                if line_off < end {
                    self.store.read(line_off, &mut line_buf[..(end - line_off) as usize]);
                }
            });
        }
        let previous = self.store.fetch_update_u64(offset, f);
        self.stats.record_write(8, 1, self.is_remote(offset));
        Ok(previous)
    }

    /// Flushes the cache lines covering `[offset, offset + len)` (`clwb`).
    /// Not durable until the next [`sfence`](Self::sfence).
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`] or [`PmemError::Crashed`].
    pub fn clwb(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.check_range(offset, len)?;
        self.mutation_event()?;
        let lines = match &self.cache {
            Some(cache) => {
                cache.clwb(offset, len);
                Self::lines(offset, len)
            }
            None => Self::lines(offset, len),
        };
        self.stats.record_clwb(lines);
        Ok(())
    }

    /// Commits all pending flushes (`sfence`); flushed lines are durable
    /// afterwards.
    ///
    /// # Errors
    ///
    /// [`PmemError::Crashed`].
    pub fn sfence(&self) -> Result<(), PmemError> {
        self.mutation_event()?;
        if let Some(cache) = &self.cache {
            cache.sfence();
        }
        self.stats.record_sfence();
        Ok(())
    }

    /// `clwb` + `sfence`: makes `[offset, offset + len)` durable.
    ///
    /// # Errors
    ///
    /// As for [`clwb`](Self::clwb) and [`sfence`](Self::sfence).
    pub fn persist(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.clwb(offset, len)?;
        self.sfence()
    }

    /// Number of cache lines with stores that are not yet durable
    /// (always 0 when crash tracking is disabled).
    pub fn unpersisted_lines(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.unpersisted_lines())
    }

    /// Tags the pages covering `[offset, offset + len)` with `key`.
    /// This models updating page-table entries and is not itself subject to
    /// protection checks.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn set_page_key(&self, offset: u64, len: u64, key: ProtectionKey) -> Result<(), PmemError> {
        self.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.page_keys[page as usize].store(key.index(), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Returns the protection key of the page containing `offset`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn page_key(&self, offset: u64) -> Result<ProtectionKey, PmemError> {
        self.check_range(offset, 1)?;
        let key = self.page_keys[(offset / PAGE_SIZE) as usize].load(Ordering::Relaxed);
        Ok(ProtectionKey::from_index(key).expect("stored keys are valid"))
    }

    /// Assigns the pages covering `[offset, offset + len)` to NUMA node
    /// `node` for locality accounting.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`].
    pub fn set_page_node(&self, offset: u64, len: u64, node: u8) -> Result<(), PmemError> {
        self.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.page_nodes[page as usize].store(node, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Returns the pages covering `[offset, offset + len)` to the sparse
    /// store (the `fallocate` hole-punch analogue): fully covered 2 MiB
    /// backing chunks are dematerialised and the rest is zeroed. The hole
    /// is durable immediately, like the syscall. Returns released bytes.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::ProtectionFault`] (punching
    /// is a write), or [`PmemError::Crashed`].
    pub fn punch_hole(&self, offset: u64, len: u64) -> Result<u64, PmemError> {
        self.check_range(offset, len)?;
        self.check_protection(offset, len, AccessKind::Write)?;
        self.mutation_event()?;
        let released = self.store.punch(offset, len);
        if let Some(cache) = &self.cache {
            // The hole (and the zeroed edges) are durable immediately;
            // whatever was dirty in the range no longer needs reverting.
            cache.forget_range(offset, len);
        }
        Ok(released)
    }

    /// Arms crash injection: the device fails (and every subsequent
    /// mutation returns [`PmemError::Crashed`]) on the `events`-th mutation
    /// event (writes, `clwb`s, `sfence`s and hole punches each count one).
    /// `events = 0` crashes on the next event.
    pub fn arm_crash_after(&self, events: u64) {
        self.crash_countdown.store(events.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Disarms crash injection.
    pub fn disarm_crash(&self) {
        self.crash_countdown.store(-1, Ordering::Relaxed);
    }

    /// Whether the device is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Applies a power failure: every store that was not durable is
    /// reverted per `mode` (see [`CrashMode`]), tracking state is cleared,
    /// and the device is usable again (as if power returned). `seed` makes
    /// [`CrashMode::Adversarial`] deterministic.
    ///
    /// A no-op revert when crash tracking is disabled (the device still
    /// un-crashes).
    pub fn simulate_crash(&self, mode: CrashMode, seed: u64) {
        if let Some(cache) = &self.cache {
            cache.crash(mode, seed, |line_off, line_buf| {
                let end = (line_off + line_buf.len() as u64).min(self.config.capacity);
                if line_off < end {
                    self.store.write(line_off, &line_buf[..(end - line_off) as usize]);
                }
            });
        }
        self.crash_countdown.store(-1, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Clears the crashed flag without touching memory (for tests that
    /// inject a crash but want to inspect the raw post-crash state before
    /// reverting).
    pub fn clear_crash(&self) {
        self.crash_countdown.store(-1, Ordering::Relaxed);
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Saves the device's media image to `path`.
    ///
    /// The device must be clean (no unpersisted lines): a snapshot is the
    /// durable state, and saving a dirty device would silently promote
    /// volatile stores.
    ///
    /// # Errors
    ///
    /// [`PmemError::BadSnapshot`] if dirty, [`PmemError::Io`] on I/O
    /// failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PmemError> {
        use std::io::Write as _;
        if self.unpersisted_lines() > 0 {
            return Err(PmemError::BadSnapshot("device has unpersisted lines; persist or crash first"));
        }
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        out.write_all(SNAPSHOT_MAGIC)?;
        out.write_all(&self.config.capacity.to_le_bytes())?;
        let mut count: u64 = 0;
        self.store.for_each_resident(|_, _| count += 1);
        out.write_all(&count.to_le_bytes())?;
        let mut result = Ok(());
        self.store.for_each_resident(|index, bytes| {
            if result.is_ok() {
                result = out.write_all(&(index as u64).to_le_bytes()).and_then(|_| out.write_all(bytes));
            }
        });
        result?;
        out.flush()?;
        Ok(())
    }

    /// Loads a device image previously written by [`save`](Self::save),
    /// applying `config` for everything except capacity (taken from the
    /// snapshot).
    ///
    /// # Errors
    ///
    /// [`PmemError::BadSnapshot`] on format mismatch, [`PmemError::Io`] on
    /// I/O failure.
    pub fn load(path: impl AsRef<Path>, config: DeviceConfig) -> Result<PmemDevice, PmemError> {
        use std::io::Read as _;
        let file = std::fs::File::open(path)?;
        let mut input = std::io::BufReader::new(file);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(PmemError::BadSnapshot("bad magic"));
        }
        let mut word = [0u8; 8];
        input.read_exact(&mut word)?;
        let capacity = u64::from_le_bytes(word);
        input.read_exact(&mut word)?;
        let count = u64::from_le_bytes(word);
        let device = PmemDevice::new(DeviceConfig { capacity, ..config });
        let mut chunk = vec![0u8; crate::store::CHUNK_SIZE as usize];
        for _ in 0..count {
            input.read_exact(&mut word)?;
            let index = u64::from_le_bytes(word);
            let in_range = index
                .checked_mul(crate::store::CHUNK_SIZE)
                .is_some_and(|off| off < capacity.next_multiple_of(crate::store::CHUNK_SIZE));
            if !in_range {
                return Err(PmemError::BadSnapshot("chunk index out of range"));
            }
            input.read_exact(&mut chunk)?;
            device.store.write(index * crate::store::CHUNK_SIZE, &chunk);
        }
        Ok(device)
    }
}

const SNAPSHOT_MAGIC: &[u8; 8] = b"PMEMSNP1";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::CpuPinGuard;
    use mpk::AccessRights;

    fn device() -> PmemDevice {
        PmemDevice::new(DeviceConfig::small_test())
    }

    #[test]
    fn bounds_are_enforced() {
        let dev = device();
        let cap = dev.capacity();
        assert!(matches!(dev.write(cap - 1, &[0, 0]), Err(PmemError::OutOfBounds { .. })));
        assert!(matches!(dev.read(cap, &mut [0]), Err(PmemError::OutOfBounds { .. })));
        assert!(dev.write(cap - 1, &[0]).is_ok());
        // Overflow-proof.
        assert!(matches!(dev.clwb(u64::MAX, 2), Err(PmemError::OutOfBounds { .. })));
    }

    #[test]
    fn pod_roundtrip() {
        let dev = device();
        dev.write_pod(128, &0xDEAD_BEEFu64).unwrap();
        assert_eq!(dev.read_pod::<u64>(128).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn protection_fault_on_tagged_page() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(0, PAGE_SIZE, key).unwrap();
        dev.write(PAGE_SIZE, &[1]).unwrap(); // untagged page: fine
        let err = dev.write(100, &[1]).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { key: k, .. } if k == key.index()));
        // Reads still allowed.
        assert!(dev.read(100, &mut [0]).is_ok());
        // With a grant, the write succeeds.
        let _g = dev.mpk().grant_write(key);
        assert!(dev.write(100, &[1]).is_ok());
        assert_eq!(dev.stats().protection_faults, 1);
    }

    #[test]
    fn protection_check_covers_spanning_access() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(PAGE_SIZE, PAGE_SIZE, key).unwrap();
        // Write starting on an untagged page but spilling into the tagged
        // one must fault — this is the heap-overflow scenario.
        let err = dev.write(PAGE_SIZE - 8, &[7; 16]).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { .. }));
    }

    #[test]
    fn crash_reverts_unpersisted_writes() {
        let dev = device();
        dev.write(0, &[1; 64]).unwrap();
        dev.persist(0, 64).unwrap();
        dev.write(64, &[2; 64]).unwrap();
        assert_eq!(dev.unpersisted_lines(), 1);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
        assert_eq!(dev.read_pod::<u8>(64).unwrap(), 0);
    }

    #[test]
    fn armed_crash_fails_the_nth_event_and_sticks() {
        let dev = device();
        dev.arm_crash_after(2);
        dev.write(0, &[1]).unwrap(); // event 0
        dev.write(8, &[2]).unwrap(); // event 1
        assert_eq!(dev.write(16, &[3]), Err(PmemError::Crashed)); // event 2: boom
        assert!(dev.is_crashed());
        assert_eq!(dev.sfence(), Err(PmemError::Crashed));
        // Reads still work for post-mortem inspection.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
        dev.simulate_crash(CrashMode::Strict, 0);
        assert!(!dev.is_crashed());
        // Unpersisted pre-crash writes were reverted.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 0);
        assert!(dev.write(0, &[9]).is_ok());
    }

    #[test]
    fn punch_hole_releases_and_zeroes_durably() {
        let dev = PmemDevice::new(DeviceConfig::new(8 * crate::store::CHUNK_SIZE));
        let len = 3 * crate::store::CHUNK_SIZE;
        dev.write(0, &vec![1; len as usize]).unwrap();
        dev.persist(0, len).unwrap();
        let released = dev.punch_hole(0, len).unwrap();
        assert_eq!(released, 3 * crate::store::CHUNK_SIZE);
        assert_eq!(dev.read_pod::<u8>(crate::store::CHUNK_SIZE).unwrap(), 0);
        // The hole survives a crash (it is durable like fallocate).
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 0);
    }

    #[test]
    fn numa_accounting_distinguishes_local_and_remote() {
        let config = DeviceConfig::small_test().with_topology(NumaTopology::new(2, 8));
        let dev = PmemDevice::new(config);
        dev.set_page_node(0, PAGE_SIZE, 1).unwrap();
        {
            let _pin = CpuPinGuard::pin(0); // node 0 -> remote
            dev.write(0, &[1; 64]).unwrap();
        }
        {
            let _pin = CpuPinGuard::pin(7); // node 1 -> local
            dev.write(0, &[1; 64]).unwrap();
        }
        let s = dev.stats();
        assert_eq!(s.write_lines_remote, 1);
        assert_eq!(s.write_lines_local, 1);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pmem-snap-{}", std::process::id()));
        let dev = device();
        dev.write(123, b"persist me").unwrap();
        dev.persist(123, 10).unwrap();
        dev.save(&dir).unwrap();
        let loaded = PmemDevice::load(&dir, DeviceConfig::small_test()).unwrap();
        let mut buf = [0u8; 10];
        loaded.read(123, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
        assert_eq!(loaded.capacity(), dev.capacity());
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn save_rejects_dirty_device() {
        let dev = device();
        dev.write(0, &[1]).unwrap();
        let err = dev.save(std::env::temp_dir().join("never-created")).unwrap_err();
        assert!(matches!(err, PmemError::BadSnapshot(_)));
    }

    #[test]
    fn bench_config_disables_tracking_only() {
        let dev = PmemDevice::new(DeviceConfig::bench(1 << 20));
        dev.write(0, &[1; 64]).unwrap();
        assert_eq!(dev.unpersisted_lines(), 0);
        dev.simulate_crash(CrashMode::Strict, 0);
        // Nothing reverted: tracking was off.
        assert_eq!(dev.read_pod::<u8>(0).unwrap(), 1);
    }
}
