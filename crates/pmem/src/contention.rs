//! Lock instrumentation for scalability analysis.
//!
//! The paper's scalability results are driven by *which allocator
//! serialises on what*: PMDK on its global AVL tree and action log,
//! Makalu on its global chunk/reclaim lists, Poseidon on (almost)
//! nothing. [`TrackedMutex`] wraps `platform::sync::Mutex` and records the
//! total time each lock instance is *held* plus its acquisition count;
//! from those, the benchmark harness projects multi-core throughput with
//! the standard work-span bound
//! `T(p) >= max(total_work / p, max_resource_serial_time)` — which is how
//! the paper's contention collapse is made visible on hosts with fewer
//! cores than the paper's 112-thread testbed.

use std::sync::atomic::{AtomicU64, Ordering};

use platform::sync::{Mutex, MutexGuard};

/// Nanoseconds of CPU time consumed by the calling thread
/// (`CLOCK_THREAD_CPUTIME_ID`). Unlike wall time, this is immune to
/// preemption, so lock-hold measurements stay accurate even when
/// benchmark threads oversubscribe the host's cores.
pub fn thread_cpu_ns() -> u64 {
    platform::thread::cpu_time_ns()
}

/// Counters of a transient cache layer sitting in front of one lock.
///
/// A resource that serves most requests from a lock-free DRAM cache only
/// serialises on its *misses*; these counters, reported next to the
/// lock's own numbers, make that visible through the same profile API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served entirely from the cache (no lock, no fence).
    pub hits: u64,
    /// Requests that fell through to the locked slow path.
    pub misses: u64,
    /// Batch refills of the cache from the backing resource.
    pub refills: u64,
    /// Batch drains of the cache back to the backing resource.
    pub drains: u64,
}

impl CacheStats {
    /// Fraction of requests served from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Serial-time statistics of one lock instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockProfile {
    /// Human-readable resource name (`avl`, `subheap[3]`, ...).
    pub name: String,
    /// Total nanoseconds the lock was held.
    pub held_ns: u64,
    /// Number of acquisitions.
    pub acquisitions: u64,
    /// Counters of the transient cache fronting this lock, when one
    /// exists (`None` for plain uncached locks).
    pub cache: Option<CacheStats>,
}

impl LockProfile {
    /// Effective serial time when contended on real hardware: hold time
    /// plus a per-handoff penalty for the cache-line transfer of the lock
    /// word (~150 ns cross-core, per published coherence measurements).
    pub fn effective_serial_ns(&self, handoff_ns: u64) -> u64 {
        self.held_ns + self.acquisitions * handoff_ns
    }
}

/// A mutex that accounts the time it spends held.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    inner: Mutex<T>,
    held_ns: AtomicU64,
    acquisitions: AtomicU64,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> TrackedMutex<T> {
        TrackedMutex { inner: Mutex::new(value), held_ns: AtomicU64::new(0), acquisitions: AtomicU64::new(0) }
    }

    /// Locks, timing the hold (in thread CPU time) until the guard drops.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        let guard = self.inner.lock();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        TrackedGuard { guard: Some(guard), acquired_cpu_ns: thread_cpu_ns(), held_ns: &self.held_ns }
    }

    /// Reads this lock's counters as a [`LockProfile`] under `name`.
    pub fn profile(&self, name: impl Into<String>) -> LockProfile {
        LockProfile {
            name: name.into(),
            held_ns: self.held_ns.load(Ordering::Relaxed),
            acquisitions: self.acquisitions.load(Ordering::Relaxed),
            cache: None,
        }
    }

    /// Zeroes the counters (between benchmark phases).
    pub fn reset(&self) {
        self.held_ns.store(0, Ordering::Relaxed);
        self.acquisitions.store(0, Ordering::Relaxed);
    }
}

impl<T: Default> Default for TrackedMutex<T> {
    fn default() -> Self {
        TrackedMutex::new(T::default())
    }
}

/// Guard returned by [`TrackedMutex::lock`].
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    acquired_cpu_ns: u64,
    held_ns: &'a AtomicU64,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard live until drop")
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard live until drop")
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        self.held_ns.fetch_add(thread_cpu_ns().saturating_sub(self.acquired_cpu_ns), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_acquisitions_and_hold_time() {
        let m = TrackedMutex::new(0u64);
        for _ in 0..10 {
            let mut g = m.lock();
            *g += 1;
            // Burn CPU while holding (hold time is thread CPU time).
            let t0 = thread_cpu_ns();
            while thread_cpu_ns() < t0 + 100_000 {
                std::hint::spin_loop();
            }
        }
        let p = m.profile("test");
        assert_eq!(p.acquisitions, 10);
        assert_eq!(*m.lock(), 10);
        assert!(p.held_ns >= 10 * 100_000, "held {} ns", p.held_ns);
    }

    #[test]
    fn reset_zeroes() {
        let m = TrackedMutex::new(());
        drop(m.lock());
        m.reset();
        let p = m.profile("x");
        assert_eq!(p.acquisitions, 0);
        assert_eq!(p.held_ns, 0);
    }

    #[test]
    fn effective_serial_adds_handoffs() {
        let p = LockProfile { name: "l".into(), held_ns: 1000, acquisitions: 10, cache: None };
        assert_eq!(p.effective_serial_ns(150), 1000 + 1500);

        let hot = CacheStats { hits: 95, misses: 5, refills: 2, drains: 1 };
        assert!((hot.hit_rate() - 0.95).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn mutual_exclusion_holds() {
        let m = std::sync::Arc::new(TrackedMutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
