//! NUMA topology model and the current-CPU registry.
//!
//! Poseidon's per-CPU sub-heaps are placed on the NUMA node of the CPU that
//! first allocates from them (§4.1), so both the allocator and the device's
//! locality accounting need to know "which CPU is this thread on?". Real
//! systems answer with `sched_getcpu()`; here the benchmark driver pins each
//! worker to a *logical* CPU with [`set_current_cpu`] (usually via
//! [`CpuPinGuard`]) and everyone else reads [`current_cpu`].

use std::cell::Cell;

/// A model of the machine's socket/CPU layout.
///
/// CPUs are numbered `0..cpus` and distributed over sockets in contiguous
/// blocks, like Linux's default enumeration of the paper's 2-socket Xeon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaTopology {
    sockets: usize,
    cpus: usize,
}

impl NumaTopology {
    /// Creates a topology with `sockets` sockets and `cpus` logical CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `sockets == 0`, `cpus == 0`, or `cpus < sockets`.
    pub fn new(sockets: usize, cpus: usize) -> NumaTopology {
        assert!(sockets > 0 && cpus > 0, "topology must have at least one socket and CPU");
        assert!(cpus >= sockets, "need at least one CPU per socket");
        NumaTopology { sockets, cpus }
    }

    /// The paper's testbed shape: 2 sockets, 56 physical cores
    /// (112 logical CPUs).
    pub fn paper_testbed() -> NumaTopology {
        NumaTopology::new(2, 112)
    }

    /// A 2-socket topology sized to this host's available parallelism.
    pub fn host() -> NumaTopology {
        let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8).max(2);
        NumaTopology::new(2, cpus)
    }

    /// Number of sockets (NUMA nodes).
    #[inline]
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of logical CPUs.
    #[inline]
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Returns the NUMA node of `cpu` (CPU ids wrap around the topology, so
    /// any usize is a valid logical CPU).
    #[inline]
    pub fn node_of_cpu(&self, cpu: usize) -> usize {
        let cpu = cpu % self.cpus;
        let per_socket = self.cpus.div_ceil(self.sockets);
        (cpu / per_socket).min(self.sockets - 1)
    }
}

impl Default for NumaTopology {
    fn default() -> Self {
        NumaTopology::host()
    }
}

thread_local! {
    static CURRENT_CPU: Cell<usize> = const { Cell::new(0) };
}

/// Registers the calling thread as running on logical CPU `cpu` — the
/// simulated equivalent of pinning the thread with `sched_setaffinity` and
/// reading `sched_getcpu()`.
pub fn set_current_cpu(cpu: usize) {
    CURRENT_CPU.with(|c| c.set(cpu));
}

/// Returns the logical CPU the calling thread registered with
/// [`set_current_cpu`] (CPU 0 if never registered).
#[inline]
pub fn current_cpu() -> usize {
    CURRENT_CPU.with(|c| c.get())
}

/// RAII pin: sets the calling thread's CPU on construction and restores the
/// previous value on drop, keeping tests that share threads well-behaved.
#[derive(Debug)]
pub struct CpuPinGuard {
    previous: usize,
}

impl CpuPinGuard {
    /// Pins the calling thread to `cpu` until the guard is dropped.
    pub fn pin(cpu: usize) -> CpuPinGuard {
        let previous = current_cpu();
        set_current_cpu(cpu);
        CpuPinGuard { previous }
    }
}

impl Drop for CpuPinGuard {
    fn drop(&mut self) {
        set_current_cpu(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_over_sockets() {
        let t = NumaTopology::new(2, 8);
        assert_eq!(t.node_of_cpu(0), 0);
        assert_eq!(t.node_of_cpu(3), 0);
        assert_eq!(t.node_of_cpu(4), 1);
        assert_eq!(t.node_of_cpu(7), 1);
        // CPU ids wrap.
        assert_eq!(t.node_of_cpu(8), 0);
    }

    #[test]
    fn uneven_cpu_counts_stay_in_range() {
        let t = NumaTopology::new(3, 7);
        for cpu in 0..32 {
            assert!(t.node_of_cpu(cpu) < 3);
        }
    }

    #[test]
    fn paper_testbed_shape() {
        let t = NumaTopology::paper_testbed();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.cpus(), 112);
        assert_eq!(t.node_of_cpu(0), 0);
        assert_eq!(t.node_of_cpu(56), 1);
    }

    #[test]
    fn pin_guard_restores_previous_cpu() {
        set_current_cpu(3);
        {
            let _g = CpuPinGuard::pin(11);
            assert_eq!(current_cpu(), 11);
        }
        assert_eq!(current_cpu(), 3);
    }

    #[test]
    fn cpu_registry_is_per_thread() {
        set_current_cpu(5);
        std::thread::spawn(|| {
            assert_eq!(current_cpu(), 0);
            set_current_cpu(9);
            assert_eq!(current_cpu(), 9);
        })
        .join()
        .unwrap();
        assert_eq!(current_cpu(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one CPU per socket")]
    fn rejects_fewer_cpus_than_sockets() {
        let _ = NumaTopology::new(4, 2);
    }
}
