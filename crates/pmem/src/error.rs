//! Error type for device operations.

use mpk::AccessKind;

/// Errors returned by [`PmemDevice`](crate::PmemDevice) operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmemError {
    /// The access `[offset, offset + len)` falls outside the device.
    OutOfBounds {
        /// Start offset of the attempted access.
        offset: u64,
        /// Length of the attempted access in bytes.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The executing thread's `PKRU` does not permit this access to a
    /// protected page — the simulated equivalent of a SIGSEGV raised by MPK.
    ProtectionFault {
        /// Offset of the faulting access.
        offset: u64,
        /// Protection key tagged on the faulting page.
        key: u8,
        /// Whether the faulting access was a read or a write.
        kind: AccessKind,
    },
    /// The device has crashed (see
    /// [`arm_crash_after`](crate::PmemDevice::arm_crash_after)); all
    /// mutations fail until [`clear_crash`](crate::PmemDevice::clear_crash).
    Crashed,
    /// An offset or length is not aligned as the operation requires.
    Misaligned {
        /// The misaligned value.
        value: u64,
        /// The required alignment in bytes.
        required: u64,
    },
    /// The access touched a poisoned cache line — the simulated
    /// equivalent of an uncorrectable media error (machine-check on load
    /// from a bad DIMM line). Carries the line-aligned offset of the first
    /// poisoned line hit. Poison is durable: it survives crashes and
    /// snapshot save/load, and is cleared only by
    /// [`clear_poison`](crate::PmemDevice::clear_poison) or
    /// [`punch_hole`](crate::PmemDevice::punch_hole).
    Uncorrectable {
        /// Line-aligned device offset of the poisoned line.
        offset: u64,
    },
    /// An online growth request was invalid: shrinking the device, or
    /// growing beyond the provisioned
    /// [`max_capacity`](crate::DeviceConfig::max_capacity).
    BadGrow {
        /// The requested new capacity.
        requested: u64,
        /// The current live capacity.
        current: u64,
        /// The provisioned growth ceiling.
        max: u64,
    },
    /// A snapshot file is malformed or does not match the device geometry.
    BadSnapshot(&'static str),
    /// An I/O error occurred while saving or loading a snapshot.
    ///
    /// The inner value is the `std::io::ErrorKind` of the underlying error,
    /// kept `Copy` so that `PmemError` stays cheap to pass around.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for PmemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmemError::OutOfBounds { offset, len, capacity } => write!(
                f,
                "access [{offset:#x}, {:#x}) out of bounds for device of {capacity:#x} bytes",
                offset.saturating_add(*len)
            ),
            PmemError::ProtectionFault { offset, key, kind } => {
                write!(f, "protection fault: {kind} at {offset:#x} denied by pkey{key}")
            }
            PmemError::Crashed => f.write_str("device has crashed; mutations rejected until recovery"),
            PmemError::Misaligned { value, required } => {
                write!(f, "value {value:#x} not aligned to {required} bytes")
            }
            PmemError::Uncorrectable { offset } => {
                write!(f, "uncorrectable media error: poisoned line at {offset:#x}")
            }
            PmemError::BadGrow { requested, current, max } => write!(
                f,
                "invalid growth to {requested:#x} bytes (current {current:#x}, provisioned max {max:#x})"
            ),
            PmemError::BadSnapshot(why) => write!(f, "bad device snapshot: {why}"),
            PmemError::Io(kind) => write!(f, "snapshot i/o error: {kind}"),
        }
    }
}

impl std::error::Error for PmemError {}

impl From<std::io::Error> for PmemError {
    fn from(err: std::io::Error) -> Self {
        PmemError::Io(err.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PmemError::OutOfBounds { offset: 0x10, len: 0x20, capacity: 0x18 };
        assert!(e.to_string().contains("out of bounds"));
        let e = PmemError::ProtectionFault { offset: 4096, key: 3, kind: AccessKind::Write };
        assert!(e.to_string().contains("pkey3"));
        assert!(e.to_string().contains("write"));
    }

    #[test]
    fn uncorrectable_displays_offset() {
        let e = PmemError::Uncorrectable { offset: 0x1c0 };
        assert!(e.to_string().contains("uncorrectable"));
        assert!(e.to_string().contains("0x1c0"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "x");
        assert_eq!(PmemError::from(io), PmemError::Io(std::io::ErrorKind::NotFound));
    }
}
