//! Striped traffic counters.
//!
//! Counters are updated on every device access, so a single set of shared
//! atomics would itself become a scalability bottleneck and distort the
//! very experiments this workspace exists to run. Counts are therefore
//! striped over cache-line-padded slots indexed by a per-thread stripe id,
//! and summed on [`DeviceStats::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

use platform::sync::CachePadded;

use crate::cost::CostModel;

const STRIPES: usize = 64;

#[derive(Debug, Default)]
struct Stripe {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    read_lines_local: AtomicU64,
    read_lines_remote: AtomicU64,
    write_lines_local: AtomicU64,
    write_lines_remote: AtomicU64,
    clwb_count: AtomicU64,
    sfence_count: AtomicU64,
    protection_faults: AtomicU64,
    uncorrectable_errors: AtomicU64,
    lines_poisoned: AtomicU64,
    validations: AtomicU64,
    meta_maps: AtomicU64,
    undo_entries: AtomicU64,
    undo_words: AtomicU64,
}

/// Traffic accumulated locally by a [`MetaView`](crate::MetaView) and
/// flushed into the striped counters in one bulk update when the view
/// drops. Byte/line accounting is identical to per-call recording; only
/// the number of shared-counter updates shrinks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ViewDeltas {
    pub read_ops: u64,
    pub write_ops: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub read_lines_local: u64,
    pub read_lines_remote: u64,
    pub write_lines_local: u64,
    pub write_lines_remote: u64,
    pub clwb_count: u64,
    pub sfence_count: u64,
}

/// Concurrent device counters; cheap to update from many threads.
#[derive(Debug)]
pub struct DeviceStats {
    stripes: Box<[CachePadded<Stripe>]>,
}

thread_local! {
    static STRIPE_ID: usize = {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() as usize) % STRIPES
    };
}

macro_rules! bump {
    ($self:ident, $field:ident, $by:expr) => {
        STRIPE_ID.with(|&id| $self.stripes[id].$field.fetch_add($by, Ordering::Relaxed))
    };
}

impl DeviceStats {
    pub(crate) fn new() -> DeviceStats {
        DeviceStats { stripes: (0..STRIPES).map(|_| CachePadded::new(Stripe::default())).collect() }
    }

    pub(crate) fn record_read(&self, bytes: u64, lines: u64, remote: bool) {
        bump!(self, read_ops, 1);
        bump!(self, bytes_read, bytes);
        if remote {
            bump!(self, read_lines_remote, lines);
        } else {
            bump!(self, read_lines_local, lines);
        }
    }

    pub(crate) fn record_write(&self, bytes: u64, lines: u64, remote: bool) {
        bump!(self, write_ops, 1);
        bump!(self, bytes_written, bytes);
        if remote {
            bump!(self, write_lines_remote, lines);
        } else {
            bump!(self, write_lines_local, lines);
        }
    }

    pub(crate) fn record_clwb(&self, lines: u64) {
        bump!(self, clwb_count, lines);
    }

    pub(crate) fn record_sfence(&self) {
        bump!(self, sfence_count, 1);
    }

    pub(crate) fn record_protection_fault(&self) {
        bump!(self, protection_faults, 1);
    }

    pub(crate) fn record_uncorrectable(&self) {
        bump!(self, uncorrectable_errors, 1);
    }

    pub(crate) fn record_poisoned(&self, lines: u64) {
        bump!(self, lines_poisoned, lines);
    }

    pub(crate) fn record_validation(&self) {
        bump!(self, validations, 1);
    }

    pub(crate) fn record_meta_map(&self) {
        bump!(self, meta_maps, 1);
    }

    pub(crate) fn record_undo_append(&self, words: u64) {
        bump!(self, undo_entries, 1);
        bump!(self, undo_words, words);
    }

    pub(crate) fn record_view_deltas(&self, d: &ViewDeltas) {
        if *d == ViewDeltas::default() {
            return;
        }
        STRIPE_ID.with(|&id| {
            let stripe = &self.stripes[id];
            stripe.read_ops.fetch_add(d.read_ops, Ordering::Relaxed);
            stripe.write_ops.fetch_add(d.write_ops, Ordering::Relaxed);
            stripe.bytes_read.fetch_add(d.bytes_read, Ordering::Relaxed);
            stripe.bytes_written.fetch_add(d.bytes_written, Ordering::Relaxed);
            stripe.read_lines_local.fetch_add(d.read_lines_local, Ordering::Relaxed);
            stripe.read_lines_remote.fetch_add(d.read_lines_remote, Ordering::Relaxed);
            stripe.write_lines_local.fetch_add(d.write_lines_local, Ordering::Relaxed);
            stripe.write_lines_remote.fetch_add(d.write_lines_remote, Ordering::Relaxed);
            stripe.clwb_count.fetch_add(d.clwb_count, Ordering::Relaxed);
            stripe.sfence_count.fetch_add(d.sfence_count, Ordering::Relaxed);
        });
    }

    /// Sums all stripes into a consistent-enough snapshot (individual
    /// counters are relaxed; totals may be skewed by in-flight updates).
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for stripe in self.stripes.iter() {
            s.read_ops += stripe.read_ops.load(Ordering::Relaxed);
            s.write_ops += stripe.write_ops.load(Ordering::Relaxed);
            s.bytes_read += stripe.bytes_read.load(Ordering::Relaxed);
            s.bytes_written += stripe.bytes_written.load(Ordering::Relaxed);
            s.read_lines_local += stripe.read_lines_local.load(Ordering::Relaxed);
            s.read_lines_remote += stripe.read_lines_remote.load(Ordering::Relaxed);
            s.write_lines_local += stripe.write_lines_local.load(Ordering::Relaxed);
            s.write_lines_remote += stripe.write_lines_remote.load(Ordering::Relaxed);
            s.clwb_count += stripe.clwb_count.load(Ordering::Relaxed);
            s.sfence_count += stripe.sfence_count.load(Ordering::Relaxed);
            s.protection_faults += stripe.protection_faults.load(Ordering::Relaxed);
            s.uncorrectable_errors += stripe.uncorrectable_errors.load(Ordering::Relaxed);
            s.lines_poisoned += stripe.lines_poisoned.load(Ordering::Relaxed);
            s.validations += stripe.validations.load(Ordering::Relaxed);
            s.meta_maps += stripe.meta_maps.load(Ordering::Relaxed);
            s.undo_entries += stripe.undo_entries.load(Ordering::Relaxed);
            s.undo_words += stripe.undo_words.load(Ordering::Relaxed);
        }
        s
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for stripe in self.stripes.iter() {
            stripe.read_ops.store(0, Ordering::Relaxed);
            stripe.write_ops.store(0, Ordering::Relaxed);
            stripe.bytes_read.store(0, Ordering::Relaxed);
            stripe.bytes_written.store(0, Ordering::Relaxed);
            stripe.read_lines_local.store(0, Ordering::Relaxed);
            stripe.read_lines_remote.store(0, Ordering::Relaxed);
            stripe.write_lines_local.store(0, Ordering::Relaxed);
            stripe.write_lines_remote.store(0, Ordering::Relaxed);
            stripe.clwb_count.store(0, Ordering::Relaxed);
            stripe.sfence_count.store(0, Ordering::Relaxed);
            stripe.protection_faults.store(0, Ordering::Relaxed);
            stripe.uncorrectable_errors.store(0, Ordering::Relaxed);
            stripe.lines_poisoned.store(0, Ordering::Relaxed);
            stripe.validations.store(0, Ordering::Relaxed);
            stripe.meta_maps.store(0, Ordering::Relaxed);
            stripe.undo_entries.store(0, Ordering::Relaxed);
            stripe.undo_words.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time summary of device traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Number of read calls.
    pub read_ops: u64,
    /// Number of write calls.
    pub write_ops: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// 64 B lines read from the issuing CPU's own NUMA node.
    pub read_lines_local: u64,
    /// 64 B lines read across the socket interconnect.
    pub read_lines_remote: u64,
    /// 64 B lines written to the issuing CPU's own NUMA node.
    pub write_lines_local: u64,
    /// 64 B lines written across the socket interconnect.
    pub write_lines_remote: u64,
    /// `clwb` line-flushes issued.
    pub clwb_count: u64,
    /// `sfence` barriers issued.
    pub sfence_count: u64,
    /// Accesses denied by MPK.
    pub protection_faults: u64,
    /// Accesses that failed on a poisoned line (uncorrectable media
    /// errors surfaced to callers).
    pub uncorrectable_errors: u64,
    /// Lines that turned uncorrectable (via injection or
    /// [`poison`](crate::PmemDevice::poison)).
    pub lines_poisoned: u64,
    /// Full access-validation sequences (bounds + protection + poison)
    /// executed on the data path: one per plain device read/write/RMW/
    /// flush/punch call and one per [`map_meta`](crate::PmemDevice::map_meta).
    /// Accesses through an open [`MetaView`](crate::MetaView) add none —
    /// the point of the session layer is that this counter scales with
    /// *operations*, not metadata words.
    pub validations: u64,
    /// Metadata views handed out by
    /// [`map_meta`](crate::PmemDevice::map_meta).
    pub meta_maps: u64,
    /// Undo-log entries appended (one per
    /// [`record_undo_append`](crate::PmemDevice::record_undo_append)).
    /// Together with [`undo_words`](Self::undo_words) this lets
    /// benchmarks model what eager per-entry or per-word persistence
    /// *would* have cost next to the measured `sfence_count`.
    pub undo_entries: u64,
    /// Total 8-byte words covered by the appended undo-log entries.
    pub undo_words: u64,
}

impl StatsSnapshot {
    /// Prices this traffic with `model`, returning simulated media
    /// nanoseconds.
    pub fn media_time_ns(&self, model: &CostModel) -> u64 {
        model.media_time_ns(
            self.read_lines_local,
            self.read_lines_remote,
            self.write_lines_local,
            self.write_lines_remote,
            self.clwb_count,
            self.sfence_count,
        )
    }

    /// Fraction of line traffic that crossed the socket interconnect
    /// (0.0 when there was no traffic).
    pub fn remote_fraction(&self) -> f64 {
        let remote = self.read_lines_remote + self.write_lines_remote;
        let total = remote + self.read_lines_local + self.write_lines_local;
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_updates() {
        let stats = DeviceStats::new();
        stats.record_read(128, 2, false);
        stats.record_write(64, 1, true);
        stats.record_clwb(3);
        stats.record_sfence();
        stats.record_protection_fault();
        stats.record_uncorrectable();
        stats.record_poisoned(2);
        let s = stats.snapshot();
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.bytes_read, 128);
        assert_eq!(s.read_lines_local, 2);
        assert_eq!(s.write_lines_remote, 1);
        assert_eq!(s.clwb_count, 3);
        assert_eq!(s.sfence_count, 1);
        assert_eq!(s.protection_faults, 1);
        assert_eq!(s.uncorrectable_errors, 1);
        assert_eq!(s.lines_poisoned, 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = DeviceStats::new();
        stats.record_read(64, 1, false);
        stats.reset();
        assert_eq!(stats.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let stats = std::sync::Arc::new(DeviceStats::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let stats = stats.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        stats.record_write(8, 1, false);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(stats.snapshot().write_ops, 8000);
    }

    #[test]
    fn remote_fraction_and_media_time() {
        let s = StatsSnapshot { read_lines_local: 50, read_lines_remote: 50, ..Default::default() };
        assert!((s.remote_fraction() - 0.5).abs() < 1e-9);
        assert!(s.media_time_ns(&CostModel::dcpmm()) > 0);
    }
}
