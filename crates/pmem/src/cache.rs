//! The modelled CPU cache: which stores have actually reached media?
//!
//! On real hardware with write-back caching, a store becomes durable only
//! once its cache line is flushed (`clwb`) and the flush is ordered
//! (`sfence`) — or when the cache spontaneously evicts the line, at a time
//! the program cannot control. This module tracks exactly that:
//!
//! * a **dirty** line has been stored to since it last reached media; the
//!   tracker remembers the line's *media image* (its content as of the last
//!   persist),
//! * `clwb` marks a dirty line **flush-pending**,
//! * `sfence` commits every flush-pending line (its current content becomes
//!   the media image and the line is clean again),
//! * a crash reverts dirty lines to their media image — all of them in
//!   [`CrashMode::Strict`], or an arbitrary pseudo-random subset in
//!   [`CrashMode::Adversarial`], which models lines that happened to be
//!   evicted (and therefore persisted) before the power failed.
//!
//! A recovery protocol is only correct if it works under *both* modes.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use platform::sync::Mutex;

/// Size of a CPU cache line in bytes.
pub const CACHE_LINE_SIZE: u64 = 64;

const SHARDS: usize = 64;

/// How [`PmemDevice::simulate_crash`](crate::PmemDevice::simulate_crash)
/// treats lines that were dirty (or flush-pending but unfenced) at the
/// moment of the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Every unpersisted line is lost: media reverts to the last persisted
    /// image. The deterministic worst case for "I forgot to flush".
    Strict,
    /// Each unpersisted line independently either persists (as if evicted
    /// just in time) or reverts, chosen pseudo-randomly from the seed.
    /// Models real write-back caches, where unflushed stores *may* land.
    Adversarial,
}

struct LineState {
    /// Content of the line as of the last time it was persisted.
    media: Box<[u8]>,
    /// Set by `clwb`; cleared (with the entry) by `sfence`.
    flush_pending: bool,
}

/// Tracks dirty cache lines for one device.
pub(crate) struct CacheModel {
    shards: Box<[Mutex<HashMap<u64, LineState>>]>,
    /// Line numbers that have been `clwb`-ed since the last `sfence`.
    pending_queue: Mutex<Vec<u64>>,
}

impl CacheModel {
    pub(crate) fn new() -> CacheModel {
        CacheModel {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            pending_queue: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    fn shard(&self, line: u64) -> &Mutex<HashMap<u64, LineState>> {
        &self.shards[(line as usize) % SHARDS]
    }

    /// Records that the line containing `[offset, offset+len)` is about to
    /// be overwritten; `read_media` must read the line's *current* content
    /// (which, for a clean line, is by definition the media content).
    ///
    /// Must be called *before* the store is applied to the backing store,
    /// while holding off concurrent `sfence` — the shard lock provides the
    /// required atomicity for first-touch capture.
    pub(crate) fn before_write(&self, offset: u64, len: u64, read_media: impl Fn(u64, &mut [u8])) {
        let first = offset / CACHE_LINE_SIZE;
        let last = (offset + len - 1) / CACHE_LINE_SIZE;
        for line in first..=last {
            let mut shard = self.shard(line).lock();
            match shard.entry(line) {
                Entry::Vacant(slot) => {
                    let mut media = vec![0u8; CACHE_LINE_SIZE as usize].into_boxed_slice();
                    read_media(line * CACHE_LINE_SIZE, &mut media);
                    slot.insert(LineState { media, flush_pending: false });
                }
                Entry::Occupied(mut slot) => {
                    // A store to a flush-pending line re-dirties it: the
                    // pending clwb no longer guarantees anything about the
                    // line's final content, so we pessimistically require a
                    // fresh clwb (real hardware may persist either image).
                    slot.get_mut().flush_pending = false;
                }
            }
        }
    }

    /// Marks the lines covering `[offset, offset+len)` flush-pending
    /// (`clwb`). Clean lines are a no-op. Returns the number of lines
    /// touched (for stats).
    pub(crate) fn clwb(&self, offset: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = offset / CACHE_LINE_SIZE;
        let last = (offset + len - 1) / CACHE_LINE_SIZE;
        let mut pending = Vec::new();
        for line in first..=last {
            let mut shard = self.shard(line).lock();
            if let Some(state) = shard.get_mut(&line) {
                if !state.flush_pending {
                    state.flush_pending = true;
                    pending.push(line);
                }
            }
        }
        let count = (last - first) + 1;
        if !pending.is_empty() {
            self.pending_queue.lock().extend(pending);
        }
        count
    }

    /// Commits every flush-pending line (`sfence`): the line's current
    /// content becomes its media image.
    pub(crate) fn sfence(&self) {
        let drained: Vec<u64> = std::mem::take(&mut *self.pending_queue.lock());
        for line in drained {
            let mut shard = self.shard(line).lock();
            if let Some(state) = shard.get(&line) {
                if state.flush_pending {
                    shard.remove(&line);
                }
            }
        }
    }

    /// Drops tracking state for the lines covering `[offset, offset+len)`
    /// without reverting them: used when a range becomes durable by other
    /// means (hole punching).
    pub(crate) fn forget_range(&self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = offset / CACHE_LINE_SIZE;
        let last = (offset + len - 1) / CACHE_LINE_SIZE;
        for line in first..=last {
            self.shard(line).lock().remove(&line);
        }
    }

    /// Returns the number of lines that are not yet durable.
    pub(crate) fn unpersisted_lines(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Applies a crash: reverts unpersisted lines to their media image via
    /// `write_media`, according to `mode`, then forgets all tracking state.
    pub(crate) fn crash(&self, mode: CrashMode, seed: u64, write_media: impl Fn(u64, &[u8])) {
        self.pending_queue.lock().clear();
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            for (line, state) in shard.drain() {
                let survives = match mode {
                    CrashMode::Strict => false,
                    CrashMode::Adversarial => {
                        splitmix64(seed ^ line.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 1 == 1
                    }
                };
                if !survives {
                    write_media(line * CACHE_LINE_SIZE, &state.media);
                }
            }
        }
    }
}

/// SplitMix64 — a tiny, high-quality mixing function for deterministic
/// per-line crash decisions and poison-injection line selection.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A 1 KiB toy media for exercising the tracker directly.
    struct ToyMedia(StdMutex<Vec<u8>>);

    impl ToyMedia {
        fn new() -> ToyMedia {
            ToyMedia(StdMutex::new(vec![0; 1024]))
        }
        fn read(&self, off: u64, buf: &mut [u8]) {
            let data = self.0.lock().unwrap();
            buf.copy_from_slice(&data[off as usize..off as usize + buf.len()]);
        }
        fn write(&self, off: u64, buf: &[u8]) {
            let mut data = self.0.lock().unwrap();
            data[off as usize..off as usize + buf.len()].copy_from_slice(buf);
        }
    }

    fn store(media: &ToyMedia, cache: &CacheModel, off: u64, bytes: &[u8]) {
        cache.before_write(off, bytes.len() as u64, |o, b| media.read(o, b));
        media.write(off, bytes);
    }

    #[test]
    fn unflushed_store_reverts_on_strict_crash() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[7; 8]);
        assert_eq!(cache.unpersisted_lines(), 1);
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [9u8; 8];
        media.read(0, &mut buf);
        assert_eq!(buf, [0; 8]);
        assert_eq!(cache.unpersisted_lines(), 0);
    }

    #[test]
    fn clwb_alone_is_not_durable() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[7; 8]);
        cache.clwb(0, 8);
        // No sfence: still revertible.
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [9u8; 8];
        media.read(0, &mut buf);
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    fn clwb_plus_sfence_is_durable() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[7; 8]);
        cache.clwb(0, 8);
        cache.sfence();
        assert_eq!(cache.unpersisted_lines(), 0);
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [0u8; 8];
        media.read(0, &mut buf);
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn rewrite_after_persist_reverts_to_persisted_image() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[1; 8]);
        cache.clwb(0, 8);
        cache.sfence();
        store(&media, &cache, 0, &[2; 8]);
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [0u8; 8];
        media.read(0, &mut buf);
        assert_eq!(buf, [1; 8]); // back to the persisted value, not zero
    }

    #[test]
    fn partial_line_revert_restores_whole_line() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[1; 64]);
        cache.clwb(0, 64);
        cache.sfence();
        // Dirty two bytes of the persisted line.
        store(&media, &cache, 10, &[9, 9]);
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [0u8; 64];
        media.read(0, &mut buf);
        assert_eq!(buf, [1; 64]);
    }

    #[test]
    fn adversarial_mode_is_deterministic_per_seed() {
        // With many lines, both outcomes should occur for some line, and the
        // same seed must give the same result twice.
        let outcome = |seed: u64| -> Vec<u8> {
            let media = ToyMedia::new();
            let cache = CacheModel::new();
            for line in 0..16u64 {
                store(&media, &cache, line * 64, &[1; 64]);
            }
            cache.crash(CrashMode::Adversarial, seed, |o, b| media.write(o, b));
            let mut buf = vec![0u8; 1024];
            media.read(0, &mut buf);
            buf
        };
        let a = outcome(42);
        let b = outcome(42);
        assert_eq!(a, b);
        let survivors = a.chunks(64).filter(|c| c[0] == 1).count();
        assert!(survivors > 0 && survivors < 16, "expected a mixed outcome, got {survivors}/16");
    }

    #[test]
    fn sfence_only_commits_clwbed_lines() {
        let media = ToyMedia::new();
        let cache = CacheModel::new();
        store(&media, &cache, 0, &[1; 8]);
        store(&media, &cache, 128, &[2; 8]);
        cache.clwb(0, 8);
        cache.sfence();
        cache.crash(CrashMode::Strict, 0, |o, b| media.write(o, b));
        let mut buf = [0u8; 8];
        media.read(0, &mut buf);
        assert_eq!(buf, [1; 8]);
        media.read(128, &mut buf);
        assert_eq!(buf, [0; 8]);
    }
}
