//! DCPMM cost model.
//!
//! The device does not *delay* accesses (wall-clock performance comes from
//! real multithreaded execution); instead it counts events and this model
//! prices them, yielding a simulated media-time figure that experiments can
//! report alongside throughput. Defaults follow the published Optane DC
//! characterisation (Izraelevitz et al., "Basic Performance Measurements of
//! the Intel Optane DC Persistent Memory Module", and Yang et al., FAST '20):
//! random reads ~300 ns, writes into the buffered write-pending queue
//! ~100 ns, and roughly 2–3x penalty for crossing the NUMA interconnect.

/// Per-event costs in nanoseconds (scaled by 100 where fractional
/// precision is useful).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of reading one 64 B cache line from media.
    pub read_line_ns: u64,
    /// Cost of writing one 64 B cache line to the write-pending queue.
    pub write_line_ns: u64,
    /// Cost of a `clwb` of one line.
    pub clwb_ns: u64,
    /// Cost of an `sfence`.
    pub sfence_ns: u64,
    /// Remote-socket multiplier, x100 (e.g. `220` = 2.2x).
    pub remote_multiplier_x100: u64,
}

impl CostModel {
    /// Optane DC Persistent Memory (Apache Pass) defaults.
    pub fn dcpmm() -> CostModel {
        CostModel {
            read_line_ns: 300,
            write_line_ns: 100,
            clwb_ns: 60,
            sfence_ns: 30,
            remote_multiplier_x100: 220,
        }
    }

    /// A DRAM-like model, useful for ablations isolating NVMM latency.
    pub fn dram() -> CostModel {
        CostModel {
            read_line_ns: 80,
            write_line_ns: 80,
            clwb_ns: 60,
            sfence_ns: 30,
            remote_multiplier_x100: 140,
        }
    }

    /// Prices a traffic profile, returning simulated nanoseconds of media
    /// time.
    ///
    /// `local_lines`/`remote_lines` are 64 B line-accesses split by whether
    /// the issuing CPU's socket matched the page's home node.
    pub fn media_time_ns(
        &self,
        read_lines_local: u64,
        read_lines_remote: u64,
        write_lines_local: u64,
        write_lines_remote: u64,
        clwb_count: u64,
        sfence_count: u64,
    ) -> u64 {
        let remote = |ns: u64, lines: u64| ns * lines * self.remote_multiplier_x100 / 100;
        self.read_line_ns * read_lines_local
            + remote(self.read_line_ns, read_lines_remote)
            + self.write_line_ns * write_lines_local
            + remote(self.write_line_ns, write_lines_remote)
            + self.clwb_ns * clwb_count
            + self.sfence_ns * sfence_count
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::dcpmm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcpmm_reads_cost_more_than_writes() {
        let m = CostModel::dcpmm();
        assert!(m.read_line_ns > m.write_line_ns);
    }

    #[test]
    fn remote_lines_cost_more() {
        let m = CostModel::dcpmm();
        let local = m.media_time_ns(100, 0, 0, 0, 0, 0);
        let remote = m.media_time_ns(0, 100, 0, 0, 0, 0);
        assert!(remote > local);
        assert_eq!(remote, local * m.remote_multiplier_x100 / 100);
    }

    #[test]
    fn media_time_sums_components() {
        let m = CostModel {
            read_line_ns: 1,
            write_line_ns: 2,
            clwb_ns: 3,
            sfence_ns: 4,
            remote_multiplier_x100: 100,
        };
        assert_eq!(m.media_time_ns(1, 1, 1, 1, 1, 1), 1 + 1 + 2 + 2 + 3 + 4);
    }
}
