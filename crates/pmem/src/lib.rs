//! Simulated byte-addressable persistent memory (NVMM).
//!
//! The Poseidon paper runs on Intel Optane DC Persistent Memory accessed
//! through a DAX file system: ordinary loads/stores against a memory-mapped
//! region, with durability controlled by `clwb` (flush a cache line) and
//! `sfence` (order/commit flushes). That hardware is not available here, so
//! this crate provides a software device that models the parts that matter
//! to a persistent allocator:
//!
//! * **Explicit cache semantics** — stores land in a modelled CPU cache;
//!   only lines that were `clwb`-flushed *and* `sfence`-fenced are
//!   guaranteed to be on media. [`PmemDevice::simulate_crash`] reverts
//!   everything else (or, in [`CrashMode::Adversarial`], an arbitrary
//!   subset, modelling spontaneous cache eviction), which makes torn and
//!   unflushed states *testable* — something real hardware cannot offer
//!   deterministically.
//! * **MPK page protection** — every page can be tagged with an
//!   [`mpk::ProtectionKey`]; loads and stores consult the executing
//!   thread's simulated `PKRU` and fail with
//!   [`PmemError::ProtectionFault`] instead of SIGSEGV.
//! * **NUMA and cost accounting** — pages have a home NUMA node, threads
//!   have a current CPU ([`numa::set_current_cpu`]), and the device counts
//!   local/remote traffic plus flushes and fences, priced by a DCPMM
//!   [`CostModel`].
//! * **Sparse capacity and hole punching** — backing memory materialises on
//!   first write and can be returned with [`PmemDevice::punch_hole`]
//!   (the `fallocate` analogue Poseidon uses to shrink unused metadata).
//! * **Crash-point injection** — [`PmemDevice::arm_crash_after`] makes the
//!   device fail after the *n*-th mutation event, so property tests can
//!   crash an allocator at every edge of an operation.
//! * **Media-error (poison) modelling** — cache lines can turn
//!   *uncorrectable* ([`PmemDevice::poison`], or randomized injection via
//!   [`PmemDevice::arm_poison_after`]): reads, read-modify-writes and
//!   flushes of such a line fail with [`PmemError::Uncorrectable`] while
//!   every other line stays usable. Poison is durable — it survives
//!   crashes and snapshot round trips — and is enumerated by
//!   [`PmemDevice::scrub`] (the Address Range Scrub analogue) until
//!   cleared with [`PmemDevice::clear_poison`].
//!
//! All persistent state is addressed by `u64` device offsets; allocators
//! built on this crate never hold native pointers into persistent data.
//! This is deliberate: it means an out-of-bounds store (a "heap overflow")
//! is expressible in safe Rust and really does corrupt whatever neighbours
//! the target — exactly like a C heap overflow through a raw pointer —
//! which the paper's Figure 3 experiments rely on.
//!
//! # Examples
//!
//! ```
//! use pmem::{CrashMode, DeviceConfig, PmemDevice};
//!
//! # fn main() -> Result<(), pmem::PmemError> {
//! let dev = PmemDevice::new(DeviceConfig::small_test());
//!
//! dev.write(0, b"hello")?;
//! dev.persist(0, 5)?; // clwb + sfence
//! dev.write(64, b"world")?; // dirty, never flushed
//!
//! dev.simulate_crash(CrashMode::Strict, 0);
//!
//! let mut buf = [0u8; 5];
//! dev.read(0, &mut buf)?;
//! assert_eq!(&buf, b"hello"); // persisted
//! dev.read(64, &mut buf)?;
//! assert_eq!(buf, [0; 5]); // lost in the crash
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
mod cache;
pub mod contention;
mod cost;
mod device;
mod error;
pub mod numa;
mod pod;
mod poison;
mod stats;
mod store;
mod view;

pub use batch::FlushBatch;
pub use cache::{CrashMode, CACHE_LINE_SIZE};
pub use contention::{CacheStats, LockProfile, TrackedMutex};
pub use cost::CostModel;
pub use device::{DeviceConfig, PmemDevice, PAGE_SIZE};
pub use error::PmemError;
pub use mpk::AccessKind;
pub use numa::NumaTopology;
pub use pod::Pod;
pub use poison::PoisonRange;
pub use stats::{DeviceStats, StatsSnapshot};
pub use store::CHUNK_SIZE;
pub use view::MetaView;
