//! Plain-old-data access to persistent memory.
//!
//! Persistent structures live at device offsets, not behind Rust
//! references, so they are read and written as raw bytes. The [`Pod`]
//! trait marks types for which that is sound, and the
//! [`pod_struct!`](crate::pod_struct) macro declares padding-free
//! `#[repr(C)]` records with a compile-time layout check.

/// Marker for types that can be safely round-tripped through raw bytes.
///
/// # Safety
///
/// Implementors must guarantee:
///
/// * every bit pattern of `size_of::<Self>()` bytes is a valid value
///   (rules out `bool`, `char`, enums, and types with niches),
/// * the type contains no padding bytes,
/// * the type contains no pointers or references.
pub unsafe trait Pod: Copy + 'static {
    /// Returns the all-zero value of this type.
    fn zeroed() -> Self {
        // SAFETY: `Pod` guarantees all bit patterns are valid.
        unsafe { std::mem::zeroed() }
    }

    /// Views the value as raw bytes.
    fn as_bytes(&self) -> &[u8] {
        // SAFETY: `Pod` guarantees no padding, so every byte is initialised.
        unsafe { std::slice::from_raw_parts(self as *const Self as *const u8, std::mem::size_of::<Self>()) }
    }

    /// Views the value as mutable raw bytes.
    fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: `Pod` guarantees every bit pattern is valid, so arbitrary
        // byte writes cannot produce an invalid value.
        unsafe { std::slice::from_raw_parts_mut(self as *mut Self as *mut u8, std::mem::size_of::<Self>()) }
    }

    /// Builds a value from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != size_of::<Self>()`.
    fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), std::mem::size_of::<Self>(), "byte length mismatch for Pod read");
        let mut value = Self::zeroed();
        value.as_bytes_mut().copy_from_slice(bytes);
        value
    }
}

// SAFETY: primitive integers have no padding, no niches, no pointers.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u16 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above.
unsafe impl Pod for u128 {}
// SAFETY: as above.
unsafe impl Pod for i8 {}
// SAFETY: as above.
unsafe impl Pod for i16 {}
// SAFETY: as above.
unsafe impl Pod for i32 {}
// SAFETY: as above.
unsafe impl Pod for i64 {}
// SAFETY: as above.
unsafe impl Pod for usize {}

// SAFETY: arrays of Pod are Pod (no padding between elements).
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Declares a `#[repr(C)]` plain-old-data struct with a compile-time check
/// that it contains no padding, and implements [`Pod`] for it.
///
/// All field types must themselves be [`Pod`]. Lay fields out largest-first
/// (or insert explicit `_pad` fields) so the no-padding assertion holds.
///
/// # Examples
///
/// ```
/// pmem::pod_struct! {
///     /// A persistent record.
///     pub struct Record {
///         pub offset: u64,
///         pub size: u64,
///         pub state: u32,
///         pub _pad: u32,
///     }
/// }
/// assert_eq!(std::mem::size_of::<Record>(), 24);
/// ```
#[macro_export]
macro_rules! pod_struct {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                pub $field:ident : $ftype:ty
            ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[repr(C)]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $field: $ftype,
            )+
        }

        impl Default for $name {
            /// The all-zero value (large array fields preclude deriving).
            fn default() -> Self {
                <Self as $crate::Pod>::zeroed()
            }
        }

        // SAFETY: `#[repr(C)]` with the no-padding assertion below, and all
        // field types are themselves `Pod` (checked by `assert_field_pod`).
        unsafe impl $crate::Pod for $name {}

        const _: () = {
            // No padding: the struct size must equal the sum of field sizes.
            const FIELDS: usize = $(std::mem::size_of::<$ftype>() + )+ 0;
            assert!(
                std::mem::size_of::<$name>() == FIELDS,
                concat!("pod_struct ", stringify!($name), " contains padding; reorder fields or add explicit _pad")
            );
            const fn assert_field_pod<T: $crate::Pod>() {}
            $( let _ = assert_field_pod::<$ftype>; )+
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    pod_struct! {
        /// Test record.
        pub struct TestRec {
            pub a: u64,
            pub b: u32,
            pub c: u32,
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let rec = TestRec { a: 0xDEAD_BEEF_0BAD_F00D, b: 42, c: 7 };
        let bytes = rec.as_bytes().to_vec();
        assert_eq!(bytes.len(), 16);
        let back = TestRec::from_bytes(&bytes);
        assert_eq!(back, rec);
    }

    #[test]
    fn zeroed_is_all_zero_bytes() {
        let z = TestRec::zeroed();
        assert!(z.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn arrays_are_pod() {
        let a: [u64; 4] = [1, 2, 3, 4];
        let back = <[u64; 4]>::from_bytes(a.as_bytes());
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "byte length mismatch")]
    fn from_bytes_rejects_wrong_length() {
        let _ = u64::from_bytes(&[0u8; 4]);
    }
}
