//! Checked metadata sessions: validate once, access many times.
//!
//! Allocator metadata operations touch dozens of words per call (hash
//! probes, buddy links, undo-log entries), and paying the full validation
//! sequence — bounds, MPK page walk, poison lookup — plus a striped
//! stats update *per word* makes metadata traffic the dominant cost of
//! the hot path. A [`MetaView`], obtained from
//! [`PmemDevice::map_meta`], hoists that to session granularity: the
//! range is validated once at map time, and every accessor afterwards
//! goes straight to the backing chunk words with only a local bounds
//! check.
//!
//! What is deliberately **not** hoisted, so the fault model stays exact:
//!
//! * every write still captures dirty-line pre-images into the crash
//!   model (`simulate_crash` reverts view writes like any other store),
//!   counts one mutation event against an armed crash countdown, and
//!   counts one ranged store against an armed poison injection;
//! * reads and flushes still consult the poison set, because a line can
//!   turn uncorrectable *during* the session via injection (the check is
//!   one relaxed atomic load on a healthy device);
//! * chunk-store locking stays per access — a session may legitimately
//!   punch holes in its own range (hash-level activation and shrink), so
//!   the view never caches chunk pointers or holds chunk locks.
//!
//! Traffic counters (read/write ops, bytes, local/remote lines, flushes,
//! fences) accumulate in plain cells owned by the view and are flushed
//! into the striped [`DeviceStats`](crate::DeviceStats) in one bulk
//! update when the view drops, so snapshots taken after an operation see
//! byte-for-byte the same totals as the unbatched path.

use std::cell::Cell;

use mpk::AccessKind;

use crate::device::PmemDevice;
use crate::error::PmemError;
use crate::pod::Pod;
use crate::stats::ViewDeltas;

/// A checked session over one metadata range of a [`PmemDevice`]; see
/// [the module docs](self) and [`PmemDevice::map_meta`].
///
/// Accessors take *absolute device offsets* (the same offsets used with
/// the plain device API), which must fall inside the mapped range. The
/// view is intentionally `!Sync`: a session belongs to the single thread
/// that holds the owning operation's locks.
#[derive(Debug)]
pub struct MetaView<'d> {
    dev: &'d PmemDevice,
    base: u64,
    end: u64,
    kind: AccessKind,
    read_ops: Cell<u64>,
    write_ops: Cell<u64>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
    read_lines_local: Cell<u64>,
    read_lines_remote: Cell<u64>,
    write_lines_local: Cell<u64>,
    write_lines_remote: Cell<u64>,
    clwb_count: Cell<u64>,
    sfence_count: Cell<u64>,
}

impl<'d> MetaView<'d> {
    pub(crate) fn new(dev: &'d PmemDevice, base: u64, len: u64, kind: AccessKind) -> MetaView<'d> {
        MetaView {
            dev,
            base,
            end: base + len,
            kind,
            read_ops: Cell::new(0),
            write_ops: Cell::new(0),
            bytes_read: Cell::new(0),
            bytes_written: Cell::new(0),
            read_lines_local: Cell::new(0),
            read_lines_remote: Cell::new(0),
            write_lines_local: Cell::new(0),
            write_lines_remote: Cell::new(0),
            clwb_count: Cell::new(0),
            sfence_count: Cell::new(0),
        }
    }

    /// The device this view maps.
    pub fn device(&self) -> &'d PmemDevice {
        self.dev
    }

    /// First device offset covered by the view.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last device offset covered by the view.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The access kind validated at map time.
    pub fn kind(&self) -> AccessKind {
        self.kind
    }

    #[inline]
    fn check_local(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        if offset < self.base || offset.checked_add(len).is_none_or(|e| e > self.end) {
            return Err(PmemError::OutOfBounds { offset, len, capacity: self.end });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at absolute device offset `offset`.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`] if the range leaves the view, or
    /// [`PmemError::Uncorrectable`] if a covered line turned poisoned
    /// since the map.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), PmemError> {
        let len = buf.len() as u64;
        self.check_local(offset, len)?;
        self.dev.check_poison(offset, len)?;
        self.dev.store_ref().read(offset, buf);
        self.read_ops.set(self.read_ops.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + len);
        let lines = PmemDevice::lines(offset, len);
        if self.dev.is_remote(offset) {
            self.read_lines_remote.set(self.read_lines_remote.get() + lines);
        } else {
            self.read_lines_local.set(self.read_lines_local.get() + lines);
        }
        Ok(())
    }

    /// Reads a [`Pod`] value at absolute device offset `offset`.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read).
    pub fn read_pod<T: Pod>(&self, offset: u64) -> Result<T, PmemError> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    /// Writes `buf` at absolute device offset `offset`. Exactly like
    /// [`PmemDevice::write`] minus the per-call validation: the store
    /// lands in the modelled cache (pre-image captured), counts a
    /// mutation event, and counts a store against poison injection.
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::Crashed`], or — only for
    /// a view mapped [`AccessKind::Read`], which re-checks protection per
    /// write — [`PmemError::ProtectionFault`].
    pub fn write(&self, offset: u64, buf: &[u8]) -> Result<(), PmemError> {
        let len = buf.len() as u64;
        self.check_local(offset, len)?;
        if self.kind != AccessKind::Write {
            // Mapped read-only: the map-time check did not cover stores.
            self.dev.check_protection(offset, len, AccessKind::Write)?;
        }
        self.dev.mutation_event()?;
        if buf.is_empty() {
            return Ok(());
        }
        if let Some(cache) = self.dev.cache_ref() {
            cache.before_write(offset, len, |line_off, line_buf| {
                let end = (line_off + line_buf.len() as u64).min(self.dev.capacity());
                if line_off < end {
                    self.dev.store_ref().read(line_off, &mut line_buf[..(end - line_off) as usize]);
                }
            });
        }
        self.dev.store_ref().write(offset, buf);
        self.dev.poison_event(offset, len);
        self.write_ops.set(self.write_ops.get() + 1);
        self.bytes_written.set(self.bytes_written.get() + len);
        let lines = PmemDevice::lines(offset, len);
        if self.dev.is_remote(offset) {
            self.write_lines_remote.set(self.write_lines_remote.get() + lines);
        } else {
            self.write_lines_local.set(self.write_lines_local.get() + lines);
        }
        Ok(())
    }

    /// Writes a [`Pod`] value at absolute device offset `offset`.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_pod<T: Pod>(&self, offset: u64, value: &T) -> Result<(), PmemError> {
        self.write(offset, value.as_bytes())
    }

    /// Flushes the lines covering `[offset, offset + len)` (`clwb`).
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::Crashed`], or
    /// [`PmemError::Uncorrectable`].
    pub fn clwb(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.check_local(offset, len)?;
        self.dev.check_poison(offset, len)?;
        self.dev.mutation_event()?;
        if let Some(cache) = self.dev.cache_ref() {
            cache.clwb(offset, len);
        }
        self.clwb_count.set(self.clwb_count.get() + PmemDevice::lines(offset, len));
        Ok(())
    }

    /// Commits pending flushes (`sfence`).
    ///
    /// # Errors
    ///
    /// [`PmemError::Crashed`].
    pub fn sfence(&self) -> Result<(), PmemError> {
        self.dev.mutation_event()?;
        if let Some(cache) = self.dev.cache_ref() {
            cache.sfence();
        }
        self.sfence_count.set(self.sfence_count.get() + 1);
        Ok(())
    }

    /// `clwb` + `sfence`.
    ///
    /// # Errors
    ///
    /// As for [`clwb`](Self::clwb) and [`sfence`](Self::sfence).
    pub fn persist(&self, offset: u64, len: u64) -> Result<(), PmemError> {
        self.clwb(offset, len)?;
        self.sfence()
    }

    /// Issues one `clwb` per line noted in `batch` — the view-routed
    /// twin of [`PmemDevice::flush_batch`]. Every noted line must fall
    /// inside the view. Each line still consults the poison set and
    /// counts one mutation event against an armed crash; the batch is
    /// left untouched for the caller to
    /// [`clear`](crate::FlushBatch::clear) after the ordering
    /// [`sfence`](Self::sfence).
    ///
    /// # Errors
    ///
    /// [`PmemError::OutOfBounds`], [`PmemError::Crashed`], or
    /// [`PmemError::Uncorrectable`] if a noted line is poisoned.
    pub fn flush_batch(&self, batch: &crate::FlushBatch) -> Result<(), PmemError> {
        for &line in batch.lines() {
            let offset = line * crate::CACHE_LINE_SIZE;
            let len = crate::CACHE_LINE_SIZE.min(self.end.saturating_sub(offset));
            self.check_local(offset, len.max(1))?;
            self.dev.check_poison(offset, len)?;
            self.dev.mutation_event()?;
            if let Some(cache) = self.dev.cache_ref() {
                cache.clwb(offset, len);
            }
        }
        self.clwb_count.set(self.clwb_count.get() + batch.line_count() as u64);
        Ok(())
    }
}

impl Drop for MetaView<'_> {
    fn drop(&mut self) {
        self.dev.stats_ref().record_view_deltas(&ViewDeltas {
            read_ops: self.read_ops.get(),
            write_ops: self.write_ops.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            read_lines_local: self.read_lines_local.get(),
            read_lines_remote: self.read_lines_remote.get(),
            write_lines_local: self.write_lines_local.get(),
            write_lines_remote: self.write_lines_remote.get(),
            clwb_count: self.clwb_count.get(),
            sfence_count: self.sfence_count.get(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CrashMode;
    use crate::device::{DeviceConfig, PAGE_SIZE};
    use mpk::AccessRights;

    fn device() -> PmemDevice {
        PmemDevice::new(DeviceConfig::small_test())
    }

    #[test]
    fn view_traffic_matches_plain_device_traffic() {
        let plain = device();
        plain.write_pod(256, &7u64).unwrap();
        plain.persist(256, 8).unwrap();
        assert_eq!(plain.read_pod::<u64>(256).unwrap(), 7);
        let expect = plain.stats();

        let dev = device();
        {
            let view = dev.map_meta(0, 4096, AccessKind::Write).unwrap();
            view.write_pod(256, &7u64).unwrap();
            view.persist(256, 8).unwrap();
            assert_eq!(view.read_pod::<u64>(256).unwrap(), 7);
        }
        let got = dev.stats();
        assert_eq!(got.bytes_written, expect.bytes_written);
        assert_eq!(got.bytes_read, expect.bytes_read);
        assert_eq!(got.read_ops, expect.read_ops);
        assert_eq!(got.write_ops, expect.write_ops);
        assert_eq!(got.clwb_count, expect.clwb_count);
        assert_eq!(got.sfence_count, expect.sfence_count);
        assert_eq!(got.write_lines_local + got.write_lines_remote, 1);
        // The whole session cost one validation (plain path: one per call).
        assert_eq!(got.validations, 1);
        assert_eq!(got.meta_maps, 1);
        assert_eq!(expect.validations, 3); // write + clwb + read; sfence validates nothing
    }

    #[test]
    fn view_rejects_out_of_range_accesses() {
        let dev = device();
        let view = dev.map_meta(4096, 4096, AccessKind::Write).unwrap();
        assert!(matches!(view.read_pod::<u64>(0), Err(PmemError::OutOfBounds { .. })));
        assert!(matches!(view.write_pod(8192, &1u64), Err(PmemError::OutOfBounds { .. })));
        assert!(matches!(view.write_pod(8190, &1u64), Err(PmemError::OutOfBounds { .. })));
        view.write_pod(8184, &1u64).unwrap();
    }

    #[test]
    fn map_validates_protection_once_and_memoizes() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(0, 16 * PAGE_SIZE, key).unwrap();
        // No write grant: a write map faults at map time, attributed to
        // the first page, and a read map succeeds.
        let err = dev.map_meta(0, 16 * PAGE_SIZE, AccessKind::Write).unwrap_err();
        assert!(matches!(err, PmemError::ProtectionFault { offset: 0, .. }));
        dev.map_meta(0, 16 * PAGE_SIZE, AccessKind::Read).unwrap();
        {
            let _grant = dev.mpk().grant_write(key);
            // Memoized (same range): still re-checked against the PKRU,
            // so the grant now makes the same map succeed.
            let view = dev.map_meta(0, 16 * PAGE_SIZE, AccessKind::Write).unwrap();
            view.write_pod(0, &1u64).unwrap();
        }
        assert!(matches!(
            dev.map_meta(0, 16 * PAGE_SIZE, AccessKind::Write),
            Err(PmemError::ProtectionFault { .. })
        ));
        // Key changes invalidate the memo: untagging makes writes free.
        dev.set_page_key(0, 16 * PAGE_SIZE, mpk::ProtectionKey::DEFAULT).unwrap();
        dev.map_meta(0, 16 * PAGE_SIZE, AccessKind::Write).unwrap();
    }

    #[test]
    fn writes_through_read_view_recheck_protection() {
        let dev = device();
        let key = dev.mpk().pkey_alloc(AccessRights::ReadOnly).unwrap();
        dev.set_page_key(0, PAGE_SIZE, key).unwrap();
        let view = dev.map_meta(0, PAGE_SIZE, AccessKind::Read).unwrap();
        assert!(matches!(view.write_pod(0, &1u64), Err(PmemError::ProtectionFault { .. })));
        let _grant = dev.mpk().grant_write(key);
        view.write_pod(0, &1u64).unwrap();
    }

    #[test]
    fn view_writes_are_reverted_by_a_crash() {
        let dev = device();
        {
            let view = dev.map_meta(0, 4096, AccessKind::Write).unwrap();
            view.write_pod(0, &0xAAAAu64).unwrap();
            view.persist(0, 8).unwrap();
            view.write_pod(64, &0xBBBBu64).unwrap(); // never flushed
        }
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(0).unwrap(), 0xAAAA);
        assert_eq!(dev.read_pod::<u64>(64).unwrap(), 0);
    }

    #[test]
    fn view_accesses_count_armed_crash_events() {
        let dev = device();
        let view = dev.map_meta(0, 4096, AccessKind::Write).unwrap();
        dev.arm_crash_after(1);
        view.write_pod(0, &1u64).unwrap(); // event 0
        assert_eq!(view.write_pod(8, &2u64), Err(PmemError::Crashed)); // event 1
        assert_eq!(view.sfence(), Err(PmemError::Crashed));
        // Reads keep working for post-mortem inspection.
        assert_eq!(view.read_pod::<u64>(0).unwrap(), 1);
    }

    #[test]
    fn map_fails_on_poisoned_range_and_reads_see_fresh_poison() {
        let dev = device();
        dev.poison(128, 1).unwrap();
        assert!(matches!(
            dev.map_meta(0, 4096, AccessKind::Write),
            Err(PmemError::Uncorrectable { offset: 128 })
        ));
        dev.clear_poison(128, 64).unwrap();
        let view = dev.map_meta(0, 4096, AccessKind::Write).unwrap();
        // Poison arriving mid-session is still caught per access.
        dev.poison(128, 1).unwrap();
        assert_eq!(view.read_pod::<u64>(128), Err(PmemError::Uncorrectable { offset: 128 }));
        assert_eq!(view.clwb(128, 8), Err(PmemError::Uncorrectable { offset: 128 }));
        view.read_pod::<u64>(0).unwrap();
    }

    #[test]
    fn view_writes_count_poison_injection_events() {
        let dev = device();
        dev.arm_poison_after(1, 9);
        let view = dev.map_meta(0, 4096, AccessKind::Write).unwrap();
        view.write_pod(0, &1u64).unwrap(); // event 0
        view.write_pod(64, &2u64).unwrap(); // event 1: line dies
        assert_eq!(dev.poisoned_lines(), 1);
    }
}
