//! Property tests for the device substrate: the sparse store must behave
//! exactly like flat memory, and crash simulation must never lose
//! persisted bytes nor keep strict-mode unpersisted ones.

use pmem::{CrashMode, DeviceConfig, PmemDevice};
use proptest::prelude::*;

const CAP: u64 = 8 << 20;

#[derive(Debug, Clone)]
enum Access {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Persist { offset: u64, len: u64 },
    FetchOr { word: u64, mask: u64 },
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        4 => (0u64..CAP - 4096, 1usize..2048, any::<u8>())
            .prop_map(|(offset, len, fill)| Access::Write { offset, len, fill }),
        2 => (0u64..CAP - 4096, 1usize..2048).prop_map(|(offset, len)| Access::Read { offset, len }),
        2 => (0u64..CAP - 4096, 1u64..2048).prop_map(|(offset, len)| Access::Persist { offset, len }),
        1 => (0u64..(CAP - 8) / 8, any::<u64>()).prop_map(|(w, mask)| Access::FetchOr { word: w * 8, mask }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn device_matches_flat_memory(accesses in proptest::collection::vec(access_strategy(), 1..80)) {
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        let mut shadow = vec![0u8; CAP as usize];
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } => {
                    let buf = vec![*fill; *len];
                    dev.write(*offset, &buf).unwrap();
                    shadow[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::Read { offset, len } => {
                    let mut buf = vec![0u8; *len];
                    dev.read(*offset, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..], &shadow[*offset as usize..*offset as usize + len]);
                }
                Access::Persist { offset, len } => {
                    dev.persist(*offset, *len).unwrap();
                }
                Access::FetchOr { word, mask } => {
                    let prev = dev.fetch_or_u64(*word, *mask).unwrap();
                    let shadow_prev = u64::from_le_bytes(
                        shadow[*word as usize..*word as usize + 8].try_into().unwrap(),
                    );
                    prop_assert_eq!(prev, shadow_prev);
                    shadow[*word as usize..*word as usize + 8]
                        .copy_from_slice(&(shadow_prev | mask).to_le_bytes());
                }
            }
        }
        // Full sweep equality over the touched prefix.
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], &shadow[..1 << 16]);
    }

    #[test]
    fn strict_crash_keeps_exactly_the_persisted_state(
        accesses in proptest::collection::vec(access_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        // Persisted shadow: reflects media after each explicit persist.
        let mut volatile = vec![0u8; CAP as usize];
        let mut persisted = vec![0u8; CAP as usize];
        // Track dirty ranges so persist can promote them (line granularity).
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } => {
                    let buf = vec![*fill; *len];
                    dev.write(*offset, &buf).unwrap();
                    volatile[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::FetchOr { word, mask } => {
                    dev.fetch_or_u64(*word, *mask).unwrap();
                    let prev = u64::from_le_bytes(
                        volatile[*word as usize..*word as usize + 8].try_into().unwrap(),
                    );
                    volatile[*word as usize..*word as usize + 8]
                        .copy_from_slice(&(prev | mask).to_le_bytes());
                }
                Access::Persist { offset, len } => {
                    dev.persist(*offset, *len).unwrap();
                    // Promote whole cache lines covering the range.
                    let first = (*offset / 64 * 64) as usize;
                    let last = (((*offset + len - 1) / 64 + 1) * 64).min(CAP) as usize;
                    persisted[first..last].copy_from_slice(&volatile[first..last]);
                }
                Access::Read { .. } => {}
            }
        }
        dev.simulate_crash(CrashMode::Strict, seed);
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], &persisted[..1 << 16]);
    }

    #[test]
    fn adversarial_crash_is_linewise_old_or_new(
        accesses in proptest::collection::vec(access_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        let mut volatile = vec![0u8; 1 << 16];
        let mut persisted = vec![0u8; 1 << 16];
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } if (*offset as usize + len) < (1 << 16) => {
                    dev.write(*offset, &vec![*fill; *len]).unwrap();
                    volatile[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::Persist { offset, len } if (*offset + len) < (1 << 16) => {
                    dev.persist(*offset, *len).unwrap();
                    let first = (*offset / 64 * 64) as usize;
                    let last = (((*offset + len - 1) / 64 + 1) * 64) as usize;
                    persisted[first..last].copy_from_slice(&volatile[first..last]);
                }
                _ => {}
            }
        }
        dev.simulate_crash(CrashMode::Adversarial, seed);
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        // Every 64-byte line is either the fully-volatile or the
        // fully-persisted image — never a byte-level mash.
        for line in 0..(1 << 16) / 64 {
            let range = line * 64..(line + 1) * 64;
            let got = &buf[range.clone()];
            prop_assert!(
                got == &volatile[range.clone()] || got == &persisted[range.clone()],
                "line {line} is a byte-level mash"
            );
        }
    }
}
