//! Property tests for the device substrate: the sparse store must behave
//! exactly like flat memory, and crash simulation must never lose
//! persisted bytes nor keep strict-mode unpersisted ones.

use platform::check::{check, Config, Gen};
use pmem::{CrashMode, DeviceConfig, PmemDevice};

const CAP: u64 = 8 << 20;

#[derive(Debug, Clone)]
enum Access {
    Write { offset: u64, len: usize, fill: u8 },
    Read { offset: u64, len: usize },
    Persist { offset: u64, len: u64 },
    FetchOr { word: u64, mask: u64 },
}

fn gen_access(g: &mut Gen) -> Access {
    match g.weighted(&[4, 2, 2, 1]) {
        0 => Access::Write { offset: g.u64(0..CAP - 4096), len: g.usize(1..2048), fill: g.any_u8() },
        1 => Access::Read { offset: g.u64(0..CAP - 4096), len: g.usize(1..2048) },
        2 => Access::Persist { offset: g.u64(0..CAP - 4096), len: g.u64(1..2048) },
        _ => Access::FetchOr { word: g.u64(0..(CAP - 8) / 8) * 8, mask: g.any_u64() },
    }
}

#[test]
fn device_matches_flat_memory() {
    check("device_matches_flat_memory", Config::cases(64), |g| {
        let accesses = g.vec(1..80, gen_access);
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        let mut shadow = vec![0u8; CAP as usize];
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } => {
                    let buf = vec![*fill; *len];
                    dev.write(*offset, &buf).unwrap();
                    shadow[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::Read { offset, len } => {
                    let mut buf = vec![0u8; *len];
                    dev.read(*offset, &mut buf).unwrap();
                    assert_eq!(&buf[..], &shadow[*offset as usize..*offset as usize + len]);
                }
                Access::Persist { offset, len } => {
                    dev.persist(*offset, *len).unwrap();
                }
                Access::FetchOr { word, mask } => {
                    let prev = dev.fetch_or_u64(*word, *mask).unwrap();
                    let shadow_prev =
                        u64::from_le_bytes(shadow[*word as usize..*word as usize + 8].try_into().unwrap());
                    assert_eq!(prev, shadow_prev);
                    shadow[*word as usize..*word as usize + 8]
                        .copy_from_slice(&(shadow_prev | mask).to_le_bytes());
                }
            }
        }
        // Full sweep equality over the touched prefix.
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &shadow[..1 << 16]);
    });
}

#[test]
fn strict_crash_keeps_exactly_the_persisted_state() {
    check("strict_crash_keeps_exactly_the_persisted_state", Config::cases(64), |g| {
        let accesses = g.vec(1..60, gen_access);
        let seed = g.any_u64();
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        // Persisted shadow: reflects media after each explicit persist.
        let mut volatile = vec![0u8; CAP as usize];
        let mut persisted = vec![0u8; CAP as usize];
        // Track dirty ranges so persist can promote them (line granularity).
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } => {
                    let buf = vec![*fill; *len];
                    dev.write(*offset, &buf).unwrap();
                    volatile[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::FetchOr { word, mask } => {
                    dev.fetch_or_u64(*word, *mask).unwrap();
                    let prev =
                        u64::from_le_bytes(volatile[*word as usize..*word as usize + 8].try_into().unwrap());
                    volatile[*word as usize..*word as usize + 8]
                        .copy_from_slice(&(prev | mask).to_le_bytes());
                }
                Access::Persist { offset, len } => {
                    dev.persist(*offset, *len).unwrap();
                    // Promote whole cache lines covering the range.
                    let first = (*offset / 64 * 64) as usize;
                    let last = (((*offset + len - 1) / 64 + 1) * 64).min(CAP) as usize;
                    persisted[first..last].copy_from_slice(&volatile[first..last]);
                }
                Access::Read { .. } => {}
            }
        }
        dev.simulate_crash(CrashMode::Strict, seed);
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &persisted[..1 << 16]);
    });
}

#[test]
fn adversarial_crash_is_linewise_old_or_new() {
    check("adversarial_crash_is_linewise_old_or_new", Config::cases(64), |g| {
        let accesses = g.vec(1..40, gen_access);
        let seed = g.any_u64();
        let dev = PmemDevice::new(DeviceConfig::new(CAP));
        let mut volatile = vec![0u8; 1 << 16];
        let mut persisted = vec![0u8; 1 << 16];
        for access in &accesses {
            match access {
                Access::Write { offset, len, fill } if (*offset as usize + len) < (1 << 16) => {
                    dev.write(*offset, &vec![*fill; *len]).unwrap();
                    volatile[*offset as usize..*offset as usize + len].fill(*fill);
                }
                Access::Persist { offset, len } if (*offset + len) < (1 << 16) => {
                    dev.persist(*offset, *len).unwrap();
                    let first = (*offset / 64 * 64) as usize;
                    let last = (((*offset + len - 1) / 64 + 1) * 64) as usize;
                    persisted[first..last].copy_from_slice(&volatile[first..last]);
                }
                _ => {}
            }
        }
        dev.simulate_crash(CrashMode::Adversarial, seed);
        let mut buf = vec![0u8; 1 << 16];
        dev.read(0, &mut buf).unwrap();
        // Every 64-byte line is either the fully-volatile or the
        // fully-persisted image — never a byte-level mash.
        for line in 0..(1 << 16) / 64 {
            let range = line * 64..(line + 1) * 64;
            let got = &buf[range.clone()];
            assert!(
                got == &volatile[range.clone()] || got == &persisted[range.clone()],
                "line {line} is a byte-level mash"
            );
        }
    });
}
