//! Error type shared by the baseline allocators.

use pmem::PmemError;

/// Errors returned by the baseline allocators.
///
/// Deliberately sparse: unlike Poseidon, neither PMDK `libpmemobj` nor
/// Makalu validates `free` arguments against an authoritative block table,
/// so there are no `InvalidFree`/`DoubleFree` variants — a bad free
/// *succeeds* and corrupts the heap, which is exactly the behaviour the
/// paper's Figure 3 demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineError {
    /// The pool cannot satisfy the allocation.
    OutOfMemory {
        /// Requested size in bytes.
        requested: u64,
    },
    /// The request exceeds what the pool can ever serve.
    TooLarge {
        /// Requested size in bytes.
        requested: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
    /// The pool image is structurally broken in a way even the baseline
    /// notices (e.g. a free-range bookkeeping mismatch).
    Corrupted(&'static str),
    /// An underlying device error.
    Device(PmemError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::OutOfMemory { requested } => {
                write!(f, "out of memory for {requested}-byte allocation")
            }
            BaselineError::TooLarge { requested } => {
                write!(f, "{requested}-byte allocation exceeds pool limits")
            }
            BaselineError::ZeroSize => f.write_str("zero-byte allocation"),
            BaselineError::Corrupted(why) => write!(f, "corrupt pool: {why}"),
            BaselineError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmemError> for BaselineError {
    fn from(err: PmemError) -> Self {
        BaselineError::Device(err)
    }
}

/// Shorthand result type for baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: BaselineError = PmemError::Crashed.into();
        assert!(e.to_string().contains("device error"));
        assert!(BaselineError::OutOfMemory { requested: 64 }.to_string().contains("64"));
    }
}
