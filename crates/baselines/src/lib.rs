//! Baseline persistent-memory allocators for the Poseidon reproduction.
//!
//! The Poseidon paper (Middleware '20) evaluates against two systems with
//! no reusable open-source Rust equivalents, so this crate implements
//! structural models of both, faithful to the designs the paper analyses:
//!
//! * [`PmdkSim`] — PMDK `libpmemobj`: in-place object headers, bitmap
//!   runs, 12 arenas, a global AVL tree of free chunks, DRAM caches
//!   rebuilt by rescanning NVMM, and a global action log. Vulnerable by
//!   construction to the paper's Figure 3 attacks.
//! * [`MakaluSim`] — Makalu: thread-local free lists below 400 B with a
//!   global reclaim list, a globally locked chunk list above 400 B, and
//!   mark-and-sweep GC recovery that corrupted pointers silently defeat.
//! * [`avl`] — the AVL tree substrate PMDK's large-object path needs.
//!
//! Both allocators run on the same [`pmem`] device as Poseidon, so the
//! benchmark harness can swap them interchangeably. Neither protects its
//! metadata — that is the point of comparison.

#![warn(missing_docs)]

pub mod avl;
mod error;
pub mod makalu_sim;
pub mod pmdk_sim;

pub use error::{BaselineError, Result};
pub use makalu_sim::MakaluSim;
pub use pmdk_sim::PmdkSim;
