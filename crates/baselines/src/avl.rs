//! An AVL tree of free chunk ranges, keyed `(length, start)`.
//!
//! PMDK's `libpmemobj` indexes large free blocks in a global AVL tree
//! guarded by one lock; the paper identifies exactly this structure as the
//! large-allocation scalability bottleneck (§3.3). To reproduce the
//! baseline faithfully we implement the same structure from scratch: a
//! self-balancing AVL tree supporting insert, exact remove, and best-fit
//! extraction (smallest range with `length >= want`, ties broken by lowest
//! start).

/// A free range of `len` units beginning at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Range {
    /// Range length (major sort key — enables best-fit search).
    pub len: u64,
    /// Range start (minor sort key).
    pub start: u64,
}

#[derive(Debug)]
struct Node {
    key: Range,
    height: i32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(key: Range) -> Box<Node> {
        Box::new(Node { key, height: 1, left: None, right: None })
    }
}

/// An AVL tree of [`Range`]s ordered by `(len, start)`.
#[derive(Debug, Default)]
pub struct AvlTree {
    root: Option<Box<Node>>,
    len: usize,
}

fn height(node: &Option<Box<Node>>) -> i32 {
    node.as_ref().map_or(0, |n| n.height)
}

fn update(node: &mut Box<Node>) {
    node.height = 1 + height(&node.left).max(height(&node.right));
}

fn balance_factor(node: &Node) -> i32 {
    height(&node.left) - height(&node.right)
}

fn rotate_right(mut node: Box<Node>) -> Box<Node> {
    let mut new_root = node.left.take().expect("rotate_right requires a left child");
    node.left = new_root.right.take();
    update(&mut node);
    new_root.right = Some(node);
    update(&mut new_root);
    new_root
}

fn rotate_left(mut node: Box<Node>) -> Box<Node> {
    let mut new_root = node.right.take().expect("rotate_left requires a right child");
    node.right = new_root.left.take();
    update(&mut node);
    new_root.left = Some(node);
    update(&mut new_root);
    new_root
}

fn rebalance(mut node: Box<Node>) -> Box<Node> {
    update(&mut node);
    let bf = balance_factor(&node);
    if bf > 1 {
        if balance_factor(node.left.as_ref().expect("bf > 1 implies left")) < 0 {
            node.left = Some(rotate_left(node.left.take().expect("checked")));
        }
        return rotate_right(node);
    }
    if bf < -1 {
        if balance_factor(node.right.as_ref().expect("bf < -1 implies right")) > 0 {
            node.right = Some(rotate_right(node.right.take().expect("checked")));
        }
        return rotate_left(node);
    }
    node
}

fn insert_node(node: Option<Box<Node>>, key: Range) -> Box<Node> {
    match node {
        None => Node::new(key),
        Some(mut n) => {
            if key < n.key {
                n.left = Some(insert_node(n.left.take(), key));
            } else {
                n.right = Some(insert_node(n.right.take(), key));
            }
            rebalance(n)
        }
    }
}

fn take_min(mut node: Box<Node>) -> (Option<Box<Node>>, Box<Node>) {
    if node.left.is_none() {
        let right = node.right.take();
        return (right, node);
    }
    let (new_left, min) = take_min(node.left.take().expect("checked"));
    node.left = new_left;
    (Some(rebalance(node)), min)
}

fn remove_node(node: Option<Box<Node>>, key: Range) -> (Option<Box<Node>>, bool) {
    let Some(mut n) = node else { return (None, false) };
    let (result, removed) = if key < n.key {
        let (left, removed) = remove_node(n.left.take(), key);
        n.left = left;
        (Some(rebalance(n)), removed)
    } else if key > n.key {
        let (right, removed) = remove_node(n.right.take(), key);
        n.right = right;
        (Some(rebalance(n)), removed)
    } else {
        match (n.left.take(), n.right.take()) {
            (None, right) => (right, true),
            (left, None) => (left, true),
            (left, Some(right)) => {
                let (new_right, mut successor) = take_min(right);
                successor.left = left;
                successor.right = new_right;
                (Some(rebalance(successor)), true)
            }
        }
    };
    (result, removed)
}

impl AvlTree {
    /// Creates an empty tree.
    pub fn new() -> AvlTree {
        AvlTree::default()
    }

    /// Number of ranges stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a range (duplicates allowed only by `(len, start)`
    /// distinctness; inserting an exact duplicate is a caller bug but kept
    /// tolerant like the original C).
    pub fn insert(&mut self, range: Range) {
        self.root = Some(insert_node(self.root.take(), range));
        self.len += 1;
    }

    /// Removes the exact range; returns whether it was present.
    pub fn remove(&mut self, range: Range) -> bool {
        let (root, removed) = remove_node(self.root.take(), range);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Finds the best-fit range (`len >= want`, smallest len, then lowest
    /// start) without removing it.
    pub fn best_fit(&self, want: u64) -> Option<Range> {
        let mut best: Option<Range> = None;
        let mut cursor = self.root.as_deref();
        while let Some(n) = cursor {
            if n.key.len >= want {
                best = Some(match best {
                    Some(b) if b <= n.key => b,
                    _ => n.key,
                });
                cursor = n.left.as_deref();
            } else {
                cursor = n.right.as_deref();
            }
        }
        best
    }

    /// Removes and returns the best-fit range for `want`.
    pub fn take_best_fit(&mut self, want: u64) -> Option<Range> {
        let found = self.best_fit(want)?;
        self.remove(found);
        Some(found)
    }

    /// In-order iteration snapshot (ascending `(len, start)`).
    pub fn to_vec(&self) -> Vec<Range> {
        fn walk(node: Option<&Node>, out: &mut Vec<Range>) {
            if let Some(n) = node {
                walk(n.left.as_deref(), out);
                out.push(n.key);
                walk(n.right.as_deref(), out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        walk(self.root.as_deref(), &mut out);
        out
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn check(node: Option<&Node>) -> i32 {
            let Some(n) = node else { return 0 };
            let lh = check(n.left.as_deref());
            let rh = check(n.right.as_deref());
            assert!((lh - rh).abs() <= 1, "unbalanced at {:?}", n.key);
            assert_eq!(n.height, 1 + lh.max(rh));
            if let Some(l) = n.left.as_deref() {
                assert!(l.key < n.key);
            }
            if let Some(r) = n.right.as_deref() {
                assert!(r.key > n.key);
            }
            1 + lh.max(rh)
        }
        check(self.root.as_deref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_and_balance() {
        let mut tree = AvlTree::new();
        for i in 0..1000u64 {
            tree.insert(Range { len: i % 37, start: i });
            tree.check_invariants();
        }
        assert_eq!(tree.len(), 1000);
        for i in (0..1000u64).rev().step_by(3) {
            assert!(tree.remove(Range { len: i % 37, start: i }));
            tree.check_invariants();
        }
        assert!(!tree.remove(Range { len: 999, start: 999 }));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_then_lowest_start() {
        let mut tree = AvlTree::new();
        tree.insert(Range { len: 8, start: 100 });
        tree.insert(Range { len: 4, start: 300 });
        tree.insert(Range { len: 4, start: 200 });
        tree.insert(Range { len: 2, start: 400 });
        assert_eq!(tree.best_fit(3), Some(Range { len: 4, start: 200 }));
        assert_eq!(tree.best_fit(5), Some(Range { len: 8, start: 100 }));
        assert_eq!(tree.best_fit(9), None);
        assert_eq!(tree.best_fit(1), Some(Range { len: 2, start: 400 }));
    }

    #[test]
    fn take_best_fit_removes() {
        let mut tree = AvlTree::new();
        tree.insert(Range { len: 4, start: 0 });
        tree.insert(Range { len: 4, start: 4 });
        assert_eq!(tree.take_best_fit(4), Some(Range { len: 4, start: 0 }));
        assert_eq!(tree.take_best_fit(4), Some(Range { len: 4, start: 4 }));
        assert_eq!(tree.take_best_fit(4), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn in_order_is_sorted() {
        let mut tree = AvlTree::new();
        for i in [5u64, 3, 9, 1, 7, 2, 8] {
            tree.insert(Range { len: i, start: 0 });
        }
        let v = tree.to_vec();
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(v, sorted);
    }

    #[test]
    fn sequential_and_random_heavy_mix() {
        let mut tree = AvlTree::new();
        let mut shadow = std::collections::BTreeSet::new();
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..5000 {
            let r = Range { len: rand() % 64, start: rand() % 10000 };
            if shadow.insert((r.len, r.start)) {
                tree.insert(r);
            }
            if rand() % 3 == 0 {
                if let Some(&(l, s)) = shadow.iter().next() {
                    shadow.remove(&(l, s));
                    assert!(tree.remove(Range { len: l, start: s }));
                }
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), shadow.len());
        let want = 32;
        let expect = shadow.iter().find(|&&(l, _)| l >= want).copied();
        assert_eq!(tree.best_fit(want), expect.map(|(len, start)| Range { len, start }));
    }
}
