//! A structural model of PMDK `libpmemobj`'s allocator (paper §3).
//!
//! This reproduces the *design* the paper analyses — both its performance
//! bottlenecks and its safety flaws:
//!
//! * **In-place metadata**: every allocation is preceded by a 16-byte
//!   object header `{size, status}` in the user-writable region. `free`
//!   **trusts this header**; a heap overflow that rewrites a neighbour's
//!   header makes `free` release the wrong amount of memory — the exact
//!   Figure 3 attacks (overlapping allocations and permanent leaks).
//! * **Bitmap runs**: chunks (256 KiB) used for small objects carry an
//!   allocation bitmap *at the start of the chunk*, at a predictable
//!   address in user-writable memory (the paper's "direct metadata
//!   corruption" route).
//! * **12 arenas** with per-arena locks: threads beyond 12 share arenas.
//! * **A global AVL tree** of free chunk ranges, under one lock, serving
//!   every large allocation and free (§3.3's large-object bottleneck).
//! * **DRAM run caches rebuilt by rescanning NVMM**: when an arena's
//!   cache for a size class is empty, the allocator takes a global
//!   rebuild lock and linearly scans the chunk table (§3.3's free-list
//!   rebuild bottleneck).
//! * **A global action log** batching the durability work of frees
//!   (§7.2's free-heavy contention point).
//!
//! Crash recovery of the PMDK pool itself is not modelled (the paper's
//! experiments never crash PMDK); undo-log write+flush traffic *is*
//! charged on the allocation path so the flush economics stay honest.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use pmem::contention::{LockProfile, TrackedMutex};
use pmem::{pod_struct, PmemDevice};

use crate::avl::{AvlTree, Range};
use crate::error::{BaselineError, Result};

/// Chunk size (PMDK default: 256 KiB).
pub const CHUNK_SIZE: u64 = 256 * 1024;
/// Size of the in-place object header preceding every allocation.
pub const OBJ_HEADER: u64 = 16;
/// Number of arenas (PMDK default: "a given heap contains 12 arenas").
pub const ARENAS: usize = 12;
/// Largest unit size served from bitmap runs; bigger requests use whole
/// chunks through the AVL tree.
pub const RUN_MAX_UNIT: u64 = 64 * 1024;
/// Bytes reserved at the start of a run chunk for its header + bitmap.
pub const RUN_HEADER: u64 = 1024;
/// Action-log drain threshold.
pub const ACTION_LOG_BATCH: usize = 64;

/// `status` value of a live object header.
pub const STATUS_ALLOC: u64 = 0x504D_444B_4C56_4531;

/// Computes the canary `status` for a header at `hdr_off` with `size` —
/// the §8 mitigation: a value derived from the allocation's identity, so
/// a heap overflow that rewrites the header is detected at `free` time.
pub fn canary_of(hdr_off: u64, size: u64) -> u64 {
    let mut x = hdr_off ^ size.rotate_left(23) ^ 0xCA4A_11E5_0F5E_C8E7;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

const MIN_UNIT: u64 = 64;
const SMALL_CLASSES: usize = 11; // units 64 B (2^6) .. 64 KiB (2^16)
const BITMAP_WORDS: u64 = 64; // 4096 units max per run

pod_struct! {
    /// The in-place object header stored immediately before each payload.
    pub struct ObjHeader {
        /// Reserved bytes of the allocation (including this header).
        pub size: u64,
        /// [`STATUS_ALLOC`] while live. `free` does not verify it.
        pub status: u64,
    }
}

pod_struct! {
    /// One chunk-table entry (static, predictable location).
    pub struct ChunkEntry {
        /// 0 free, 1 run, 2 large head, 3 large continuation.
        pub state: u32,
        /// Run: size-class index | (owning arena << 16). Large head:
        /// chunk count.
        pub aux: u32,
    }
}

pod_struct! {
    /// Run header stored at the beginning of a run chunk (user-writable —
    /// deliberately so, mirroring PMDK).
    pub struct RunHeader {
        /// Unit size in bytes.
        pub unit_size: u64,
        /// Number of allocatable units in this run.
        pub nunits: u64,
    }
}

const CHUNK_FREE: u32 = 0;
const CHUNK_RUN: u32 = 1;
const CHUNK_LARGE_HEAD: u32 = 2;
const CHUNK_LARGE_CONT: u32 = 3;

const POOL_MAGIC: u64 = 0x504D_444B_5349_4D21;
/// Fixed undo-log slot inside the pool header page.
const UNDO_SLOT_OFF: u64 = 2048;

struct Arena {
    /// Chunks believed to have free units, per size class.
    cache: [VecDeque<u64>; SMALL_CLASSES],
}

impl Arena {
    fn new() -> Arena {
        Arena { cache: std::array::from_fn(|_| VecDeque::new()) }
    }
}

/// The PMDK `libpmemobj` allocator model. See the [module docs](self).
pub struct PmdkSim {
    dev: Arc<PmemDevice>,
    nchunks: u64,
    chunks_base: u64,
    /// §8 mitigation: stamp headers with a canary and refuse frees whose
    /// canary fails, stopping corruption from propagating (at the cost of
    /// leaking the object — the paper is explicit about that trade-off).
    canary: bool,
    /// Frees skipped because their header canary failed.
    skipped_frees: std::sync::atomic::AtomicU64,
    arenas: Box<[TrackedMutex<Arena>]>,
    /// Global AVL tree of free chunk ranges + start-indexed mirror for
    /// coalescing. One lock for every large alloc/free.
    free_ranges: TrackedMutex<(AvlTree, BTreeMap<u64, u64>)>,
    /// Global action log batching free durability work.
    action_log: TrackedMutex<Vec<(u64, u64)>>,
    /// Global lock serialising DRAM cache rebuild scans.
    rebuild_lock: TrackedMutex<()>,
}

impl std::fmt::Debug for PmdkSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmdkSim").field("nchunks", &self.nchunks).finish_non_exhaustive()
    }
}

fn class_index(unit: u64) -> usize {
    (unit.trailing_zeros() - MIN_UNIT.trailing_zeros()) as usize
}

impl PmdkSim {
    /// Formats `dev` as a fresh pool and returns the allocator.
    ///
    /// # Errors
    ///
    /// [`BaselineError::TooLarge`] if the device is too small for even one
    /// chunk, or device errors.
    pub fn new(dev: Arc<PmemDevice>) -> Result<PmdkSim> {
        Self::build(dev, false)
    }

    /// Like [`new`](Self::new), with the §8 header-canary mitigation
    /// enabled: frees whose in-place header fails its canary check are
    /// skipped instead of trusted, so a corrupted header can no longer
    /// cause overlapping allocations (it still leaks — "this neither
    /// guarantees the metadata protection nor prevents persistent memory
    /// leak, \[but\] can mitigate the side effect").
    pub fn with_canary(dev: Arc<PmemDevice>) -> Result<PmdkSim> {
        Self::build(dev, true)
    }

    fn build(dev: Arc<PmemDevice>, canary: bool) -> Result<PmdkSim> {
        let chunks_base = 2 * 4096u64; // pool header page + undo-slot page
        let table_base = 4096u64;
        let avail = dev.capacity().saturating_sub(chunks_base);
        // The chunk table occupies the front of the chunk area alignment.
        let nchunks = avail / (CHUNK_SIZE + 8);
        if nchunks == 0 {
            return Err(BaselineError::TooLarge { requested: dev.capacity() });
        }
        let chunks_base = (table_base + nchunks * 8).next_multiple_of(4096);
        dev.write_pod(0, &POOL_MAGIC)?;
        dev.write(table_base, &vec![0u8; (nchunks * 8) as usize])?;
        dev.persist(0, table_base + nchunks * 8)?;
        let mut avl = AvlTree::new();
        let mut map = BTreeMap::new();
        avl.insert(Range { len: nchunks, start: 0 });
        map.insert(0, nchunks);
        Ok(PmdkSim {
            dev,
            nchunks,
            chunks_base,
            canary,
            skipped_frees: std::sync::atomic::AtomicU64::new(0),
            arenas: (0..ARENAS).map(|_| TrackedMutex::new(Arena::new())).collect(),
            free_ranges: TrackedMutex::new((avl, map)),
            action_log: TrackedMutex::new(Vec::new()),
            rebuild_lock: TrackedMutex::new(()),
        })
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    #[inline]
    fn chunk_data(&self, chunk: u64) -> u64 {
        self.chunks_base + chunk * CHUNK_SIZE
    }

    #[inline]
    fn table_entry_off(&self, chunk: u64) -> u64 {
        4096 + chunk * 8
    }

    fn read_entry(&self, chunk: u64) -> Result<ChunkEntry> {
        Ok(self.dev.read_pod(self.table_entry_off(chunk))?)
    }

    fn write_entry(&self, chunk: u64, entry: ChunkEntry) -> Result<()> {
        self.dev.write_pod(self.table_entry_off(chunk), &entry)?;
        self.dev.persist(self.table_entry_off(chunk), 8)?;
        Ok(())
    }

    /// Allocates `size` bytes for the thread on logical CPU `cpu`,
    /// returning the device offset of the payload.
    ///
    /// # Errors
    ///
    /// [`BaselineError::ZeroSize`], [`BaselineError::OutOfMemory`],
    /// [`BaselineError::TooLarge`], or device errors.
    pub fn alloc(&self, cpu: usize, size: u64) -> Result<u64> {
        if size == 0 {
            return Err(BaselineError::ZeroSize);
        }
        let needed = size + OBJ_HEADER;
        if needed <= RUN_MAX_UNIT {
            self.alloc_small(cpu, needed)
        } else {
            self.alloc_large(needed)
        }
    }

    fn alloc_small(&self, cpu: usize, needed: u64) -> Result<u64> {
        let unit = needed.next_power_of_two().max(MIN_UNIT);
        let class = class_index(unit);
        let mut arena = self.arenas[cpu % ARENAS].lock();
        loop {
            while let Some(&chunk) = arena.cache[class].front() {
                if let Some(unit_index) = self.take_unit(chunk)? {
                    let unit_off = self.chunk_data(chunk) + RUN_HEADER + unit_index * unit;
                    let header = ObjHeader { size: unit, status: self.status_for(unit_off, unit) };
                    self.dev.write_pod(unit_off, &header)?;
                    self.dev.persist(unit_off, OBJ_HEADER)?;
                    return Ok(unit_off + OBJ_HEADER);
                }
                arena.cache[class].pop_front();
            }
            // Cache exhausted. While fresh chunks remain, start a new run
            // (cheap, via the global AVL lock); once the pool is highly
            // utilised, freed space can only be rediscovered by
            // re-scanning NVMM under the global rebuild lock — the
            // frequent-rebuild bottleneck §3.3 describes.
            let arena_id = (cpu % ARENAS) as u32;
            let fresh = {
                let mut ranges = self.free_ranges.lock();
                match ranges.0.take_best_fit(1) {
                    Some(range) => {
                        ranges.1.remove(&range.start);
                        if range.len > 1 {
                            ranges.0.insert(Range { len: range.len - 1, start: range.start + 1 });
                            ranges.1.insert(range.start + 1, range.len - 1);
                        }
                        Some(range.start)
                    }
                    None => None,
                }
            };
            if let Some(chunk) = fresh {
                self.init_run(chunk, unit, class, arena_id)?;
                arena.cache[class].push_back(chunk);
                continue;
            }
            let _rebuild = self.rebuild_lock.lock();
            self.drain_action_log()?;
            let mut found = false;
            let want_aux = class as u32 | (arena_id << 16);
            for chunk in 0..self.nchunks {
                let entry = self.read_entry(chunk)?;
                if entry.state == CHUNK_RUN && entry.aux == want_aux && self.run_has_free(chunk)? {
                    arena.cache[class].push_back(chunk);
                    found = true;
                }
            }
            if !found {
                // Last resort: adopt a foreign arena's run of the right
                // class that still has free units (unit claims are
                // atomic, so shared service is safe).
                for chunk in 0..self.nchunks {
                    let entry = self.read_entry(chunk)?;
                    if entry.state == CHUNK_RUN
                        && entry.aux & 0xFFFF == class as u32
                        && self.run_has_free(chunk)?
                    {
                        self.write_entry(
                            chunk,
                            ChunkEntry { state: CHUNK_RUN, aux: class as u32 | (arena_id << 16) },
                        )?;
                        arena.cache[class].push_back(chunk);
                        found = true;
                        break;
                    }
                }
                if !found {
                    return Err(BaselineError::OutOfMemory { requested: needed });
                }
            }
        }
    }

    fn init_run(&self, chunk: u64, unit: u64, class: usize, arena: u32) -> Result<()> {
        let data = self.chunk_data(chunk);
        let nunits = ((CHUNK_SIZE - RUN_HEADER) / unit).min(BITMAP_WORDS * 64);
        self.dev.write_pod(data, &RunHeader { unit_size: unit, nunits })?;
        self.dev.write(data + 16, &[0u8; (BITMAP_WORDS * 8) as usize])?;
        self.dev.persist(data, 16 + BITMAP_WORDS * 8)?;
        self.write_entry(chunk, ChunkEntry { state: CHUNK_RUN, aux: class as u32 | (arena << 16) })
    }

    fn run_has_free(&self, chunk: u64) -> Result<bool> {
        let data = self.chunk_data(chunk);
        let header: RunHeader = self.dev.read_pod(data)?;
        for word_index in 0..BITMAP_WORDS {
            let base_bit = word_index * 64;
            if base_bit >= header.nunits {
                break;
            }
            let word: u64 = self.dev.read_pod(data + 16 + word_index * 8)?;
            let valid = (header.nunits - base_bit).min(64);
            let mask = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
            if word & mask != mask {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Claims one free unit in the run, with PMDK-style undo logging of
    /// the bitmap word (one log write + flush, then the update + flush).
    fn take_unit(&self, chunk: u64) -> Result<Option<u64>> {
        let data = self.chunk_data(chunk);
        let header: RunHeader = self.dev.read_pod(data)?;
        for word_index in 0..BITMAP_WORDS {
            let base_bit = word_index * 64;
            if base_bit >= header.nunits {
                break;
            }
            let word_off = data + 16 + word_index * 8;
            let word: u64 = self.dev.read_pod(word_off)?;
            let valid = (header.nunits - base_bit).min(64);
            let mask = if valid == 64 { u64::MAX } else { (1u64 << valid) - 1 };
            let mut free_bits = !word & mask;
            while free_bits != 0 {
                let bit = free_bits.trailing_zeros() as u64;
                // Undo-log the old word (fixed per-pool slot), then update
                // atomically: concurrent frees clear bits of this word.
                self.dev.write_pod(UNDO_SLOT_OFF, &word)?;
                self.dev.persist(UNDO_SLOT_OFF, 8)?;
                let previous = self.dev.fetch_or_u64(word_off, 1 << bit)?;
                self.dev.persist(word_off, 8)?;
                if previous & (1 << bit) == 0 {
                    return Ok(Some(base_bit + bit));
                }
                free_bits &= !(1 << bit);
            }
        }
        Ok(None)
    }

    fn alloc_large(&self, needed: u64) -> Result<u64> {
        let nch = needed.div_ceil(CHUNK_SIZE);
        if nch > self.nchunks {
            return Err(BaselineError::TooLarge { requested: needed });
        }
        let start = {
            let mut ranges = self.free_ranges.lock();
            let Some(range) = ranges.0.take_best_fit(nch) else {
                return Err(BaselineError::OutOfMemory { requested: needed });
            };
            ranges.1.remove(&range.start);
            if range.len > nch {
                ranges.0.insert(Range { len: range.len - nch, start: range.start + nch });
                ranges.1.insert(range.start + nch, range.len - nch);
            }
            range.start
        };
        self.write_entry(start, ChunkEntry { state: CHUNK_LARGE_HEAD, aux: nch as u32 })?;
        for c in start + 1..start + nch {
            self.write_entry(c, ChunkEntry { state: CHUNK_LARGE_CONT, aux: 0 })?;
        }
        let head_off = self.chunk_data(start);
        self.dev.write_pod(
            head_off,
            &ObjHeader { size: nch * CHUNK_SIZE, status: self.status_for(head_off, nch * CHUNK_SIZE) },
        )?;
        self.dev.persist(head_off, OBJ_HEADER)?;
        Ok(head_off + OBJ_HEADER)
    }

    /// Frees the allocation whose payload starts at `payload` — **by
    /// trusting the in-place header**, like `libpmemobj`. A corrupted
    /// header silently frees the wrong amount of memory; nothing here can
    /// detect it. `cpu` is unused (frees go through global structures).
    ///
    /// # Errors
    ///
    /// Device errors only (there is no validation to fail).
    pub fn free(&self, _cpu: usize, payload: u64) -> Result<()> {
        let hdr_off = payload - OBJ_HEADER;
        let header: ObjHeader = self.dev.read_pod(hdr_off)?;
        if self.canary && header.status != canary_of(hdr_off, header.size) {
            // §8 mitigation: the header was corrupted; skip the free so
            // the corruption does not propagate into the bitmap/chunk
            // metadata. The object is leaked, deliberately.
            self.skipped_frees.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(());
        }
        let chunk = (hdr_off - self.chunks_base) / CHUNK_SIZE;
        let entry = self.read_entry(chunk)?;
        match entry.state {
            CHUNK_RUN => {
                let data = self.chunk_data(chunk);
                let run: RunHeader = self.dev.read_pod(data)?;
                if run.unit_size == 0 {
                    return Err(BaselineError::Corrupted("run with zero unit size"));
                }
                let unit_index = (hdr_off - data - RUN_HEADER) / run.unit_size;
                // Number of units to release comes from the (trusted,
                // possibly corrupted) header.
                let count = header.size.div_ceil(run.unit_size).max(1);
                let end = (unit_index + count).min(BITMAP_WORDS * 64);
                let mut log = self.action_log.lock();
                for u in unit_index..end {
                    let word_off = data + 16 + (u / 64) * 8;
                    self.dev.fetch_and_u64(word_off, !(1 << (u % 64)))?;
                    log.push((word_off, 8));
                }
                if log.len() >= ACTION_LOG_BATCH {
                    let drained = std::mem::take(&mut *log);
                    drop(log);
                    self.flush_actions(drained)?;
                }
                Ok(())
            }
            _ => {
                // Treat as a large allocation; the chunk count again comes
                // from the trusted header.
                let nch = header.size.div_ceil(CHUNK_SIZE).max(1).min(self.nchunks - chunk);
                for c in chunk..chunk + nch {
                    self.write_entry(c, ChunkEntry { state: CHUNK_FREE, aux: 0 })?;
                }
                self.insert_free_range(chunk, nch);
                Ok(())
            }
        }
    }

    fn flush_actions(&self, actions: Vec<(u64, u64)>) -> Result<()> {
        for (off, len) in actions {
            self.dev.clwb(off, len)?;
        }
        self.dev.sfence()?;
        Ok(())
    }

    /// Forces any batched free durability work to complete.
    pub fn drain_action_log(&self) -> Result<()> {
        let drained = std::mem::take(&mut *self.action_log.lock());
        if !drained.is_empty() {
            self.flush_actions(drained)?;
        }
        Ok(())
    }

    fn insert_free_range(&self, mut start: u64, mut len: u64) {
        let mut ranges = self.free_ranges.lock();
        let (avl, map) = &mut *ranges;
        if let Some((&ls, &ll)) = map.range(..start).next_back() {
            if ls + ll == start {
                avl.remove(Range { len: ll, start: ls });
                map.remove(&ls);
                start = ls;
                len += ll;
            }
        }
        if let Some((&rs, &rl)) = map.range(start + len..).next() {
            if start + len == rs {
                avl.remove(Range { len: rl, start: rs });
                map.remove(&rs);
                len += rl;
            }
        }
        avl.insert(Range { len, start });
        map.insert(start, len);
    }

    /// Per-lock serial-time profile: 12 arena locks (parallel up to 12
    /// threads) plus the three global resources the paper blames for
    /// PMDK's saturation — the AVL tree, the action log, and the rebuild
    /// lock.
    pub fn contention_profile(&self) -> Vec<LockProfile> {
        let mut profile: Vec<LockProfile> =
            self.arenas.iter().enumerate().map(|(i, arena)| arena.profile(format!("arena[{i}]"))).collect();
        profile.push(self.free_ranges.profile("avl"));
        profile.push(self.action_log.profile("action-log"));
        profile.push(self.rebuild_lock.profile("rebuild"));
        profile
    }

    /// Zeroes the lock counters (between benchmark phases).
    pub fn reset_contention(&self) {
        for arena in self.arenas.iter() {
            arena.reset();
        }
        self.free_ranges.reset();
        self.action_log.reset();
        self.rebuild_lock.reset();
    }

    fn status_for(&self, hdr_off: u64, size: u64) -> u64 {
        if self.canary {
            canary_of(hdr_off, size)
        } else {
            STATUS_ALLOC
        }
    }

    /// Number of frees the canary mitigation rejected.
    pub fn skipped_frees(&self) -> u64 {
        self.skipped_frees.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Device offset of the start of the chunk containing `payload` —
    /// where a run's header and bitmap sit. The paper notes this address
    /// "can be easily estimated" by an attacker because the chunk size is
    /// deterministic (§3.2, direct metadata corruption).
    pub fn chunk_base(&self, payload: u64) -> u64 {
        self.chunks_base + (payload - self.chunks_base) / CHUNK_SIZE * CHUNK_SIZE
    }

    /// Total free chunks indexed by the AVL tree (diagnostic).
    pub fn free_chunks(&self) -> u64 {
        self.free_ranges.lock().1.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::DeviceConfig;

    fn pool(mib: u64) -> PmdkSim {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(mib << 20)));
        PmdkSim::new(dev).unwrap()
    }

    #[test]
    fn small_alloc_free_roundtrip() {
        let p = pool(16);
        let a = p.alloc(0, 64).unwrap();
        let b = p.alloc(0, 64).unwrap();
        assert_ne!(a, b);
        // Payload is usable.
        p.device().write(a, &[9u8; 64]).unwrap();
        p.free(0, a).unwrap();
        p.free(0, b).unwrap();
        // Space is reusable.
        let c = p.alloc(0, 64).unwrap();
        assert!(c == a || c == b || c > 0);
    }

    #[test]
    fn header_precedes_payload() {
        let p = pool(16);
        let a = p.alloc(0, 100).unwrap();
        let hdr: ObjHeader = p.device().read_pod(a - OBJ_HEADER).unwrap();
        assert_eq!(hdr.status, STATUS_ALLOC);
        assert_eq!(hdr.size, 128); // 100 + 16 rounded to the unit
    }

    #[test]
    fn large_allocations_use_whole_chunks() {
        let p = pool(32);
        let free_before = p.free_chunks();
        let a = p.alloc(0, 2 * 1024 * 1024).unwrap();
        let used = free_before - p.free_chunks();
        assert_eq!(used, (2 * 1024 * 1024 + OBJ_HEADER).div_ceil(CHUNK_SIZE));
        p.free(0, a).unwrap();
        assert_eq!(p.free_chunks(), free_before);
    }

    #[test]
    fn fig3_overlapping_allocation_attack() {
        // Figure 3 (left): corrupt a 64 B object's header to 1088 bytes,
        // free it, and watch the allocator hand out overlapping memory.
        let p = pool(16);
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(p.alloc(0, 48).unwrap()); // 48 + 16 = 64 B units
        }
        let victim = live[32];
        // The heap-overflow bug: rewrite the in-place header.
        p.device().write_pod(victim - OBJ_HEADER, &ObjHeader { size: 1088, status: STATUS_ALLOC }).unwrap();
        p.free(0, victim).unwrap();
        // 1088 / 64 = 17 units were marked free, 16 of which are still
        // live. New allocations now overlap live objects.
        let mut overlaps = 0;
        for _ in 0..17 {
            let fresh = p.alloc(0, 48).unwrap();
            if live.contains(&fresh) && fresh != victim {
                overlaps += 1;
            }
        }
        assert!(overlaps > 0, "expected silent overlapping allocations");
    }

    #[test]
    fn fig3_permanent_leak_attack() {
        // Figure 3 (right): corrupt a large object's header to a small
        // size before freeing; most of its chunks are never reclaimed.
        let p = pool(64);
        let before = p.free_chunks();
        let big = p.alloc(0, 2 * 1024 * 1024).unwrap();
        p.device().write_pod(big - OBJ_HEADER, &ObjHeader { size: 64, status: STATUS_ALLOC }).unwrap();
        p.free(0, big).unwrap();
        let after = p.free_chunks();
        assert!(after < before, "chunks were leaked: only {} of {} returned", after, before);
        // Specifically, 8 chunks were reserved but only 1 came back.
        assert_eq!(before - after, 8);
    }

    #[test]
    fn arena_sharing_by_cpu() {
        let p = pool(16);
        // CPUs 0 and 12 share arena 0; both still allocate correctly.
        let a = p.alloc(0, 64).unwrap();
        let b = p.alloc(12, 64).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn exhaustion_reports_oom() {
        let p = pool(4);
        let mut n = 0;
        loop {
            match p.alloc(0, CHUNK_SIZE) {
                Ok(_) => n += 1,
                Err(BaselineError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(n > 0);
    }

    #[test]
    fn coalescing_reassembles_large_ranges() {
        let p = pool(32);
        let a = p.alloc(0, CHUNK_SIZE - 16).unwrap(); // 1 chunk
        let b = p.alloc(0, CHUNK_SIZE - 16).unwrap();
        let c = p.alloc(0, CHUNK_SIZE - 16).unwrap();
        p.free(0, a).unwrap();
        p.free(0, c).unwrap();
        p.free(0, b).unwrap(); // middle last: all three must coalesce
        let big = p.alloc(0, 3 * CHUNK_SIZE - 16).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn canary_mitigation_blocks_the_overlap_attack() {
        // §8: with canaries, the Figure 3 grow-header attack leaks the
        // victim object instead of corrupting the bitmap.
        let p = {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(16 << 20)));
            PmdkSim::with_canary(dev).unwrap()
        };
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(p.alloc(0, 48).unwrap());
        }
        let victim = live[32];
        let corrupt = ObjHeader { size: 1088, status: STATUS_ALLOC };
        p.device().write_pod(victim - OBJ_HEADER, &corrupt).unwrap();
        p.free(0, victim).unwrap(); // silently skipped
        assert_eq!(p.skipped_frees(), 1);
        // No unit was released: the next allocation is fresh memory, and
        // no fresh allocation aliases a live object.
        for _ in 0..17 {
            let fresh = p.alloc(0, 48).unwrap();
            assert!(!live.contains(&fresh), "overlap despite canary");
        }
    }

    #[test]
    fn canary_permits_honest_frees() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(16 << 20)));
        let p = PmdkSim::with_canary(dev).unwrap();
        let a = p.alloc(0, 48).unwrap();
        p.free(0, a).unwrap();
        assert_eq!(p.skipped_frees(), 0);
        let b = p.alloc(0, 48).unwrap();
        assert_eq!(a, b, "freed unit is reusable");
    }

    #[test]
    fn concurrent_small_allocations() {
        let p = Arc::new(pool(64));
        let handles: Vec<_> = (0..8usize)
            .map(|cpu| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..200 {
                        mine.push(p.alloc(cpu, 64).unwrap());
                    }
                    for off in &mine {
                        p.device().write(*off, &[cpu as u8; 8]).unwrap();
                    }
                    mine
                })
            })
            .collect();
        let all: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut seen = std::collections::HashSet::new();
        for list in &all {
            for &off in list {
                assert!(seen.insert(off), "offset {off} double-allocated");
            }
        }
        for (cpu, list) in all.iter().enumerate() {
            for &off in list {
                p.free(cpu, off).unwrap();
            }
        }
        p.drain_action_log().unwrap();
    }
}
