//! A structural model of Makalu (Bhandari et al., OOPSLA '16), as the
//! paper characterises it (§2.2, §7.2, §9).
//!
//! Reproduced design points:
//!
//! * **The 400-byte cliff**: allocations over 400 B go through a *global
//!   chunk list* under one lock (the paper observes >1000x degradation
//!   there); smaller ones use thread-local free lists.
//! * **The global reclaim list**: thread-local free lists refill from,
//!   and donate surplus back to, a global list under a global lock — so
//!   even sub-400 B workloads contend (the paper's 6x loss at 256 B).
//! * **In-place headers**: a 16-byte `{size, status}` header precedes
//!   every object in user-writable memory; `free` trusts it.
//! * **No logging**: crash consistency comes from mark-and-sweep garbage
//!   collection ([`MakaluSim::gc`]) that walks the object graph
//!   conservatively from the roots. A corrupted pointer silently
//!   unreaches (and with a corrupted *header* permanently leaks) whole
//!   subgraphs — the weakness §2.2 and §9 call out.

use std::collections::BTreeMap;
use std::sync::Arc;

use pmem::contention::{LockProfile, TrackedMutex};
use pmem::{pod_struct, PmemDevice};

use crate::error::{BaselineError, Result};

/// Allocations at or below this many bytes use thread-local free lists;
/// anything larger takes the global chunk-list lock.
pub const SMALL_LIMIT: u64 = 400;
/// Size of the in-place object header.
pub const OBJ_HEADER: u64 = 16;
/// `status` of a live object.
pub const STATUS_ALLOC: u64 = 0x4D41_4B41_4C55_4131;
/// `status` of a freed object.
pub const STATUS_FREE: u64 = 0x4D41_4B41_4C55_4632;

const MIN_CLASS: u64 = 32;
const SMALL_CLASSES: usize = 5; // 32, 64, 128, 256, 512
/// Local list length that triggers donating half to the global reclaim
/// list (global lock). Makalu returns surplus eagerly; the paper observes
/// that its microbenchmark's 100-alloc/100-free bursts hit the reclaim
/// list constantly, costing 6x at 256 B — a small hysteresis reproduces
/// that traffic.
const DONATE_THRESHOLD: usize = 8;
/// How many offsets a refill pulls from the reclaim list at once.
const REFILL_BATCH: usize = 8;
/// Bytes carved from the global region per local-block request.
const CARVE_BLOCK: u64 = 4096;

pod_struct! {
    /// The in-place object header preceding every payload.
    pub struct ObjHeader {
        /// Bytes reserved for the object (header included).
        pub size: u64,
        /// [`STATUS_ALLOC`] or [`STATUS_FREE`]; `free` does not check it.
        pub status: u64,
    }
}

const POOL_MAGIC: u64 = 0x4D41_4B41_4C55_2121;
const HEADER_REGION: u64 = 4096;

fn small_class(needed: u64) -> usize {
    let rounded = needed.next_power_of_two().max(MIN_CLASS);
    (rounded.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize
}

fn class_bytes(class: usize) -> u64 {
    MIN_CLASS << class
}

struct LocalLists {
    lists: [Vec<u64>; SMALL_CLASSES],
}

impl LocalLists {
    fn new() -> LocalLists {
        LocalLists { lists: std::array::from_fn(|_| Vec::new()) }
    }
}

#[derive(Default)]
struct GlobalState {
    /// Reclaim list per class: object offsets donated by threads.
    reclaim: [Vec<u64>; SMALL_CLASSES],
    /// Free large blocks by start offset -> byte length.
    chunks: BTreeMap<u64, u64>,
    /// Bump cursor over the never-yet-carved tail of the region.
    bump: u64,
}

/// The Makalu allocator model. See the [module docs](self).
pub struct MakaluSim {
    dev: Arc<PmemDevice>,
    region_end: u64,
    /// One *global* lock for the reclaim lists, chunk list, and bump
    /// cursor — Makalu's documented bottleneck.
    global: TrackedMutex<GlobalState>,
    /// Per-CPU ("thread-local") free lists.
    locals: Box<[TrackedMutex<LocalLists>]>,
}

impl std::fmt::Debug for MakaluSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MakaluSim").field("region_end", &self.region_end).finish_non_exhaustive()
    }
}

impl MakaluSim {
    /// Formats `dev` as a fresh Makalu pool.
    ///
    /// # Errors
    ///
    /// [`BaselineError::TooLarge`] if the device is too small, or device
    /// errors.
    pub fn new(dev: Arc<PmemDevice>) -> Result<MakaluSim> {
        if dev.capacity() <= HEADER_REGION + CARVE_BLOCK {
            return Err(BaselineError::TooLarge { requested: dev.capacity() });
        }
        dev.write_pod(0, &POOL_MAGIC)?;
        dev.persist(0, 8)?;
        let cpus = dev.topology().cpus().max(1);
        Ok(MakaluSim {
            region_end: dev.capacity(),
            global: TrackedMutex::new(GlobalState { bump: HEADER_REGION, ..Default::default() }),
            locals: (0..cpus).map(|_| TrackedMutex::new(LocalLists::new())).collect(),
            dev,
        })
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.dev
    }

    /// Allocates `size` bytes for the thread on logical CPU `cpu`,
    /// returning the payload's device offset.
    ///
    /// # Errors
    ///
    /// [`BaselineError::ZeroSize`], [`BaselineError::OutOfMemory`], or
    /// device errors.
    pub fn alloc(&self, cpu: usize, size: u64) -> Result<u64> {
        if size == 0 {
            return Err(BaselineError::ZeroSize);
        }
        let needed = size + OBJ_HEADER;
        let payload = if needed <= SMALL_LIMIT + OBJ_HEADER {
            self.alloc_small(cpu, needed)?
        } else {
            self.alloc_large(needed)?
        };
        Ok(payload)
    }

    fn alloc_small(&self, cpu: usize, needed: u64) -> Result<u64> {
        let class = small_class(needed);
        let bytes = class_bytes(class);
        let mut local = self.locals[cpu % self.locals.len()].lock();
        if local.lists[class].is_empty() {
            // Refill from the global reclaim list, else carve fresh
            // blocks from the global region — both under the global lock.
            let mut global = self.global.lock();
            let take = global.reclaim[class].len().min(REFILL_BATCH);
            if take > 0 {
                let at = global.reclaim[class].len() - take;
                local.lists[class].extend(global.reclaim[class].drain(at..));
            } else {
                let carve = self.carve(&mut global, CARVE_BLOCK)?;
                let mut off = carve;
                while off + bytes <= carve + CARVE_BLOCK {
                    local.lists[class].push(off);
                    off += bytes;
                }
            }
        }
        let obj = local.lists[class].pop().ok_or(BaselineError::OutOfMemory { requested: needed })?;
        drop(local);
        self.dev.write_pod(obj, &ObjHeader { size: bytes, status: STATUS_ALLOC })?;
        self.dev.persist(obj, OBJ_HEADER)?;
        Ok(obj + OBJ_HEADER)
    }

    fn carve(&self, global: &mut GlobalState, bytes: u64) -> Result<u64> {
        // Prefer a recycled chunk of at least `bytes`.
        if let Some((&start, &len)) = global.chunks.iter().find(|&(_, &len)| len >= bytes) {
            global.chunks.remove(&start);
            if len > bytes {
                global.chunks.insert(start + bytes, len - bytes);
            }
            return Ok(start);
        }
        if global.bump + bytes > self.region_end {
            return Err(BaselineError::OutOfMemory { requested: bytes });
        }
        let start = global.bump;
        global.bump += bytes;
        Ok(start)
    }

    fn alloc_large(&self, needed: u64) -> Result<u64> {
        let bytes = needed.next_multiple_of(64);
        let mut global = self.global.lock();
        let obj = self.carve(&mut global, bytes)?;
        drop(global);
        self.dev.write_pod(obj, &ObjHeader { size: bytes, status: STATUS_ALLOC })?;
        self.dev.persist(obj, OBJ_HEADER)?;
        Ok(obj + OBJ_HEADER)
    }

    /// Frees the allocation whose payload starts at `payload`, trusting
    /// the in-place header for its size (like the original).
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn free(&self, cpu: usize, payload: u64) -> Result<()> {
        let obj = payload - OBJ_HEADER;
        let header: ObjHeader = self.dev.read_pod(obj)?;
        self.dev.write_pod(obj, &ObjHeader { size: header.size, status: STATUS_FREE })?;
        self.dev.persist(obj, OBJ_HEADER)?;
        if header.size <= class_bytes(SMALL_CLASSES - 1)
            && header.size >= MIN_CLASS
            && header.size.is_power_of_two()
        {
            let class = small_class(header.size);
            let mut local = self.locals[cpu % self.locals.len()].lock();
            local.lists[class].push(obj);
            if local.lists[class].len() > DONATE_THRESHOLD {
                // Donate half to the global reclaim list (global lock).
                let keep = local.lists[class].len() / 2;
                let donated: Vec<u64> = local.lists[class].drain(keep..).collect();
                drop(local);
                self.global.lock().reclaim[class].extend(donated);
            }
        } else {
            // Large (or corrupted-size) objects return to the global
            // chunk list — the trusted header decides how many bytes.
            let mut global = self.global.lock();
            let len = header.size.max(64);
            global.chunks.insert(obj, len);
            // Merge with byte-adjacent neighbours.
            if let Some((&prev, &plen)) = global.chunks.range(..obj).next_back() {
                if prev + plen == obj {
                    let merged = plen + len;
                    global.chunks.remove(&obj);
                    global.chunks.insert(prev, merged);
                    // fallthrough with merged key
                    let (start, total) = (prev, merged);
                    if let Some((&next, &nlen)) = global.chunks.range(start + 1..).next() {
                        if start + total == next {
                            global.chunks.remove(&next);
                            global.chunks.insert(start, total + nlen);
                        }
                    }
                    return Ok(());
                }
            }
            if let Some((&next, &nlen)) = global.chunks.range(obj + 1..).next() {
                if obj + len == next {
                    global.chunks.remove(&next);
                    global.chunks.insert(obj, len + nlen);
                }
            }
        }
        Ok(())
    }

    /// Per-lock serial-time profile: the single global lock (chunk list,
    /// reclaim lists, bump cursor) plus the per-CPU local lists.
    pub fn contention_profile(&self) -> Vec<LockProfile> {
        let mut profile: Vec<LockProfile> =
            self.locals.iter().enumerate().map(|(i, local)| local.profile(format!("local[{i}]"))).collect();
        profile.push(self.global.profile("global"));
        profile
    }

    /// Zeroes the lock counters (between benchmark phases).
    pub fn reset_contention(&self) {
        for local in self.locals.iter() {
            local.reset();
        }
        self.global.reset();
    }

    /// Offline mark-and-sweep garbage collection — Makalu's recovery
    /// story. `roots` are payload offsets known to be live. Marking scans
    /// every 8-byte word of each live payload and conservatively treats
    /// any value that is a plausible payload offset (header present with
    /// a live status) as a pointer. Unreachable allocated objects are
    /// freed.
    ///
    /// Returns the number of objects reclaimed.
    ///
    /// This is exactly the mechanism the paper doubts: corrupt one
    /// embedded pointer and the subgraph behind it stays unreachable;
    /// corrupt a header and the walk cannot even enumerate the heap.
    ///
    /// # Errors
    ///
    /// Device errors; [`BaselineError::Corrupted`] if the heap walk
    /// derails on a mangled header.
    pub fn gc(&self, roots: &[u64]) -> Result<u64> {
        // Enumerate objects by walking headers linearly through every
        // carved region. We approximate "carved" as [HEADER_REGION, bump).
        let bump = self.global.lock().bump;
        let mut objects = BTreeMap::new(); // obj offset -> size
        let mut cursor = HEADER_REGION;
        while cursor + OBJ_HEADER <= bump {
            let header: ObjHeader = self.dev.read_pod(cursor)?;
            if header.status != STATUS_ALLOC && header.status != STATUS_FREE {
                // Never-initialised space (a carve tail): scan forward at
                // the minimum object alignment until a header appears.
                cursor += MIN_CLASS;
                continue;
            }
            if header.size < MIN_CLASS || cursor + header.size > self.region_end {
                return Err(BaselineError::Corrupted("object walk derailed by a mangled header"));
            }
            if header.status == STATUS_ALLOC {
                objects.insert(cursor, header.size);
            }
            cursor += header.size;
        }
        // Mark.
        let mut marked = std::collections::HashSet::new();
        let mut stack: Vec<u64> = Vec::new();
        for &root in roots {
            let obj = root - OBJ_HEADER;
            if objects.contains_key(&obj) {
                stack.push(obj);
            }
        }
        while let Some(obj) = stack.pop() {
            if !marked.insert(obj) {
                continue;
            }
            let size = objects[&obj];
            let mut payload = vec![0u8; (size - OBJ_HEADER) as usize];
            self.dev.read(obj + OBJ_HEADER, &mut payload)?;
            for word in payload.chunks_exact(8) {
                let value = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
                let candidate = value.wrapping_sub(OBJ_HEADER);
                if objects.contains_key(&candidate) && !marked.contains(&candidate) {
                    stack.push(candidate);
                }
            }
        }
        // Sweep.
        let mut reclaimed = 0;
        for (&obj, _) in objects.iter() {
            if !marked.contains(&obj) {
                self.free(0, obj + OBJ_HEADER)?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::DeviceConfig;

    fn pool(mib: u64) -> MakaluSim {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(mib << 20)));
        MakaluSim::new(dev).unwrap()
    }

    #[test]
    fn small_alloc_free_reuse() {
        let p = pool(16);
        let a = p.alloc(0, 64).unwrap();
        let b = p.alloc(0, 64).unwrap();
        assert_ne!(a, b);
        p.free(0, a).unwrap();
        // The freed block comes back eventually — maybe via the local
        // list (LIFO), maybe via a detour through the global reclaim list
        // (the free may have triggered a donation).
        let mut seen = false;
        let mut held = vec![b];
        for _ in 0..200 {
            let c = p.alloc(0, 64).unwrap();
            held.push(c);
            if c == a {
                seen = true;
                break;
            }
        }
        assert!(seen, "freed block never reused");
        for off in held {
            p.free(0, off).unwrap();
        }
    }

    #[test]
    fn large_allocations_round_trip_through_global_chunks() {
        let p = pool(16);
        let a = p.alloc(0, 4096).unwrap();
        p.device().write(a, &[1u8; 4096]).unwrap();
        p.free(0, a).unwrap();
        let b = p.alloc(0, 4096).unwrap();
        assert_eq!(a, b, "chunk list best-effort reuse");
    }

    #[test]
    fn adjacent_large_frees_coalesce() {
        let p = pool(16);
        let a = p.alloc(0, 1000).unwrap();
        let b = p.alloc(0, 1000).unwrap();
        p.free(0, a).unwrap();
        p.free(0, b).unwrap();
        // A single larger allocation must fit in the merged range.
        let c = p.alloc(0, 2000).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn donation_crosses_threads() {
        let p = pool(16);
        // Allocate and free enough on CPU 0 to trigger donation.
        let mut objs = Vec::new();
        for _ in 0..(DONATE_THRESHOLD * 2) {
            objs.push(p.alloc(0, 64).unwrap());
        }
        for o in objs {
            p.free(0, o).unwrap();
        }
        // CPU 1's refill can now come from the reclaim list.
        let x = p.alloc(1, 64).unwrap();
        assert!(x > 0);
    }

    #[test]
    fn gc_reclaims_unreachable_objects() {
        let p = pool(16);
        let root = p.alloc(0, 64).unwrap();
        let child = p.alloc(0, 64).unwrap();
        let orphan = p.alloc(0, 64).unwrap();
        // root -> child pointer; orphan unreferenced.
        p.device().write_pod(root, &child).unwrap();
        p.device().persist(root, 8).unwrap();
        let reclaimed = p.gc(&[root]).unwrap();
        assert_eq!(reclaimed, 1, "only the orphan is unreachable");
        // child is still allocated: allocating more small objects never
        // returns it... simplest check: freeing it succeeds and then GC
        // reclaims nothing further.
        let _ = orphan;
    }

    #[test]
    fn corrupted_pointer_leaks_subgraph() {
        // The paper's critique (§2.2): corrupt a pointer inside an object
        // and everything reachable only through it is never reclaimed.
        let p = pool(16);
        let root = p.alloc(0, 64).unwrap();
        let middle = p.alloc(0, 64).unwrap();
        let leaf = p.alloc(0, 64).unwrap();
        p.device().write_pod(root, &middle).unwrap();
        p.device().write_pod(middle, &leaf).unwrap();
        // GC with intact pointers: nothing reclaimed.
        assert_eq!(p.gc(&[root]).unwrap(), 0);
        // Now the bug: the root's pointer to `middle` is overwritten.
        p.device().write_pod(root, &0u64).unwrap();
        let reclaimed = p.gc(&[root]).unwrap();
        // middle and leaf get swept as garbage even though the program
        // still wanted them — data loss, silently.
        assert_eq!(reclaimed, 2);
    }

    #[test]
    fn corrupted_header_derails_the_walk() {
        let p = pool(16);
        let a = p.alloc(0, 64).unwrap();
        let _b = p.alloc(0, 64).unwrap();
        // Heap overflow: a's neighbour header gets garbage size/status.
        p.device().write_pod(a - OBJ_HEADER, &ObjHeader { size: 7, status: STATUS_ALLOC }).unwrap();
        assert!(matches!(p.gc(&[]), Err(BaselineError::Corrupted(_))));
    }

    #[test]
    fn concurrent_small_churn() {
        let p = Arc::new(pool(64));
        let handles: Vec<_> = (0..8usize)
            .map(|cpu| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for round in 0..50 {
                        for _ in 0..20 {
                            mine.push(p.alloc(cpu, 64).unwrap());
                        }
                        if round % 2 == 0 {
                            for o in mine.drain(..) {
                                p.free(cpu, o).unwrap();
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for off in h.join().unwrap() {
                assert!(seen.insert(off), "offset {off} double-allocated");
            }
        }
    }
}
