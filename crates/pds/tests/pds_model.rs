//! Model-based and crash tests for the persistent data structures.

use std::sync::Arc;

use pds::{PList, PMap, PVec};
use platform::check::{check, Config};
use pmem::{CrashMode, DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use ptx::PtxPool;

fn pool() -> (Arc<PmemDevice>, PtxPool) {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
    let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());
    (dev, PtxPool::create(heap).unwrap())
}

#[test]
fn vec_grows_and_survives_reopen() {
    let (dev, pool) = pool();
    let vec: PVec<u64> = PVec::create(&pool).unwrap();
    for i in 0..200u64 {
        vec.push(&pool, i * 3).unwrap();
    }
    // Anchor and "restart".
    pool.run(|tx| tx.set_root(vec.handle())).unwrap();
    drop(pool);
    dev.simulate_crash(CrashMode::Strict, 1);
    let heap = Arc::new(PoseidonHeap::load(dev, HeapConfig::new()).unwrap());
    let pool = PtxPool::open(heap).unwrap();
    let vec: PVec<u64> = PVec::open(pool.root().unwrap());
    assert_eq!(vec.len(&pool).unwrap(), 200);
    for i in 0..200u64 {
        assert_eq!(vec.get(&pool, i).unwrap(), Some(i * 3));
    }
    assert_eq!(vec.pop(&pool).unwrap(), Some(199 * 3));
}

#[test]
fn list_is_lifo_and_frees_nodes() {
    let (_dev, pool) = pool();
    let list: PList<u64> = PList::create(&pool).unwrap();
    for i in 0..50u64 {
        list.push(&pool, i).unwrap();
    }
    assert_eq!(list.front(&pool).unwrap(), Some(49));
    assert_eq!(list.to_vec(&pool).unwrap(), (0..50u64).rev().collect::<Vec<_>>());
    for i in (0..50u64).rev() {
        assert_eq!(list.pop(&pool).unwrap(), Some(i));
    }
    assert_eq!(list.pop(&pool).unwrap(), None);
    assert!(list.is_empty(&pool).unwrap());
    // All nodes returned to the heap: only descriptor + headers live.
    let allocated: u64 = pool.heap().audit().unwrap().iter().map(|(_, a)| a.alloc_blocks).sum();
    assert!(allocated <= 3, "leaked list nodes: {allocated} blocks live");
}

#[test]
fn map_against_std_hashmap() {
    let (_dev, pool) = pool();
    let map: PMap<u64> = PMap::create(&pool, 16).unwrap();
    let mut model = std::collections::HashMap::new();
    let mut state = 0xDEADu64;
    for _ in 0..600 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let key = state % 100;
        match state % 3 {
            0 => {
                let old = map.insert(&pool, key, state).unwrap();
                assert_eq!(old, model.insert(key, state));
            }
            1 => assert_eq!(map.get(&pool, key).unwrap(), model.get(&key).copied()),
            _ => assert_eq!(map.remove(&pool, key).unwrap(), model.remove(&key)),
        }
        assert_eq!(map.len(&pool).unwrap(), model.len() as u64);
    }
    for (k, v) in model {
        assert_eq!(map.get(&pool, k).unwrap(), Some(v));
    }
}

#[test]
fn crash_mid_push_never_tears_the_vector() {
    for crash_at in (5..150).step_by(5) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap());
        let pool = PtxPool::create(heap).unwrap();
        let vec: PVec<u64> = PVec::create(&pool).unwrap();
        pool.run(|tx| tx.set_root(vec.handle())).unwrap();
        for i in 0..6u64 {
            vec.push(&pool, i).unwrap();
        }
        dev.arm_crash_after(crash_at);
        let _ = vec.push(&pool, 999); // may crash mid-transaction (or mid-growth)
        dev.disarm_crash();
        drop(pool);
        dev.simulate_crash(CrashMode::Strict, crash_at);

        let heap = Arc::new(PoseidonHeap::load(dev, HeapConfig::new()).unwrap());
        let pool = PtxPool::open(heap).unwrap();
        let vec: PVec<u64> = PVec::open(pool.root().unwrap());
        let len = vec.len(&pool).unwrap();
        assert!(len == 6 || len == 7, "crash_at {crash_at}: torn length {len}");
        for i in 0..6u64 {
            assert_eq!(vec.get(&pool, i).unwrap(), Some(i), "crash_at {crash_at}: element {i} torn");
        }
        if len == 7 {
            assert_eq!(vec.get(&pool, 6).unwrap(), Some(999));
        }
        pool.heap().audit().unwrap();
    }
}

#[test]
fn crash_mid_map_ops_preserves_entries() {
    for crash_at in (10..120).step_by(7) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap());
        let pool = PtxPool::create(heap).unwrap();
        let map: PMap<u64> = PMap::create(&pool, 8).unwrap();
        pool.run(|tx| tx.set_root(map.handle())).unwrap();
        for k in 0..10u64 {
            map.insert(&pool, k, k + 100).unwrap();
        }
        dev.arm_crash_after(crash_at);
        let _ = map.insert(&pool, 42, 4242);
        let _ = map.remove(&pool, 3);
        dev.disarm_crash();
        drop(pool);
        dev.simulate_crash(CrashMode::Strict, crash_at);

        let heap = Arc::new(PoseidonHeap::load(dev, HeapConfig::new()).unwrap());
        let pool = PtxPool::open(heap).unwrap();
        let map: PMap<u64> = PMap::open(pool.root().unwrap());
        // Untouched keys are always intact.
        for k in 0..10u64 {
            if k == 3 {
                let v = map.get(&pool, 3).unwrap();
                assert!(v.is_none() || v == Some(103), "crash_at {crash_at}: key 3 torn");
            } else {
                assert_eq!(map.get(&pool, k).unwrap(), Some(k + 100), "crash_at {crash_at}: key {k}");
            }
        }
        // Key 42 is all-or-nothing.
        let v = map.get(&pool, 42).unwrap();
        assert!(v.is_none() || v == Some(4242), "crash_at {crash_at}: key 42 torn");
        pool.heap().audit().unwrap();
    }
}

#[test]
fn pvec_matches_std_vec() {
    check("pvec_matches_std_vec", Config::cases(24), |g| {
        let ops = g.vec(1..120, |g| (g.any_u64(), g.u8(0..4)));
        let (_dev, pool) = pool();
        let vec: PVec<u64> = PVec::create(&pool).unwrap();
        let mut model: Vec<u64> = Vec::new();
        for (value, op) in ops {
            match op {
                0 | 1 => {
                    vec.push(&pool, value).unwrap();
                    model.push(value);
                }
                2 => {
                    assert_eq!(vec.pop(&pool).unwrap(), model.pop());
                }
                _ => {
                    if !model.is_empty() {
                        let index = value % model.len() as u64;
                        vec.set(&pool, index, value).unwrap();
                        model[index as usize] = value;
                    }
                }
            }
            assert_eq!(vec.len(&pool).unwrap(), model.len() as u64);
        }
        assert_eq!(vec.to_vec(&pool).unwrap(), model);
    });
}

#[test]
fn plist_matches_std_vecdeque() {
    check("plist_matches_std_vecdeque", Config::cases(24), |g| {
        let ops = g.vec(1..100, |g| (g.any_u64(), g.bool()));
        let (_dev, pool) = pool();
        let list: PList<u64> = PList::create(&pool).unwrap();
        let mut model: Vec<u64> = Vec::new();
        for (value, push) in ops {
            if push {
                list.push(&pool, value).unwrap();
                model.push(value);
            } else {
                assert_eq!(list.pop(&pool).unwrap(), model.pop());
            }
            assert_eq!(list.len(&pool).unwrap(), model.len() as u64);
            assert_eq!(list.front(&pool).unwrap(), model.last().copied());
        }
    });
}
