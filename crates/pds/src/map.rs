//! A persistent chained hash map.

use std::marker::PhantomData;

use pmem::{pod_struct, Pod};
use poseidon::NvmPtr;
use ptx::{Ptx, PtxError, PtxPool};

pod_struct! {
    /// Persistent header of a [`PMap`].
    pub struct MapHeader {
        /// Number of buckets (power of two).
        pub buckets: u64,
        /// Live entries.
        pub len: u64,
        /// Pointer to the bucket array (`buckets` x 16-byte `NvmPtr`s).
        pub table: NvmPtr,
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A crash-consistent hash map from `u64` keys to [`Pod`] values, with
/// separate chaining. Bucket count is fixed at creation (pick it for the
/// expected population; load factors beyond ~4 just mean longer chains,
/// never corruption).
///
/// Node layout: `{next: NvmPtr, key: u64, _pad: u64, value: T}`.
#[derive(Debug, Clone, Copy)]
pub struct PMap<V> {
    header: NvmPtr,
    _marker: PhantomData<V>,
}

const NODE_VALUE_OFF: u64 = 32;

impl<V: Pod> PMap<V> {
    const NODE_BYTES: u64 = NODE_VALUE_OFF + std::mem::size_of::<V>() as u64;

    /// Allocates an empty map with `buckets` chains (rounded up to a
    /// power of two, minimum 8) in one transaction.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn create(pool: &PtxPool, buckets: u64) -> Result<PMap<V>, PtxError> {
        let buckets = buckets.next_power_of_two().max(8);
        let header = pool.run(|tx| {
            let table = tx.alloc(buckets * 16)?;
            // Freshly allocated blocks are not guaranteed zeroed: null the
            // bucket heads explicitly (one write per bucket, all undone on
            // abort via the allocation journal discarding the block).
            for b in 0..buckets {
                tx.write_pod(table, b * 16, &NvmPtr::NULL)?;
            }
            let header = tx.alloc(std::mem::size_of::<MapHeader>() as u64)?;
            tx.write_pod(header, 0, &MapHeader { buckets, len: 0, table })?;
            Ok(header)
        })?;
        Ok(PMap { header, _marker: PhantomData })
    }

    /// Reattaches to the map whose header block is at `header`.
    pub fn open(header: NvmPtr) -> PMap<V> {
        PMap { header, _marker: PhantomData }
    }

    /// The header block's persistent pointer (anchor this).
    pub fn handle(&self) -> NvmPtr {
        self.header
    }

    fn read_header(&self, pool: &PtxPool) -> Result<MapHeader, PtxError> {
        Ok(pool.heap().device().read_pod(pool.heap().raw_offset(self.header)?)?)
    }

    fn bucket_head(&self, pool: &PtxPool, header: &MapHeader, key: u64) -> Result<(u64, NvmPtr), PtxError> {
        let bucket = mix(key) & (header.buckets - 1);
        let table = pool.heap().raw_offset(header.table)?;
        let head: NvmPtr = pool.heap().device().read_pod(table + bucket * 16)?;
        Ok((bucket, head))
    }

    /// Live entry count.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn len(&self, pool: &PtxPool) -> Result<u64, PtxError> {
        Ok(self.read_header(pool)?.len)
    }

    /// Whether the map is empty.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn is_empty(&self, pool: &PtxPool) -> Result<bool, PtxError> {
        Ok(self.len(pool)? == 0)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn get(&self, pool: &PtxPool, key: u64) -> Result<Option<V>, PtxError> {
        let header = self.read_header(pool)?;
        let (_, mut cursor) = self.bucket_head(pool, &header, key)?;
        let dev = pool.heap().device();
        while !cursor.is_null() {
            let node = pool.heap().raw_offset(cursor)?;
            let node_key: u64 = dev.read_pod(node + 16)?;
            if node_key == key {
                return Ok(Some(dev.read_pod(node + NODE_VALUE_OFF)?));
            }
            cursor = dev.read_pod(node)?;
        }
        Ok(None)
    }

    /// Inserts or replaces `key -> value` atomically; returns the
    /// previous value if the key existed.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn insert(&self, pool: &PtxPool, key: u64, value: V) -> Result<Option<V>, PtxError> {
        pool.run(|tx| self.insert_in(tx, key, value))
    }

    /// [`insert`](Self::insert) inside an already-open transaction, so
    /// multiple container operations commit atomically together.
    ///
    /// # Errors
    ///
    /// As for [`insert`](Self::insert).
    pub fn insert_in(&self, tx: &mut Ptx<'_>, key: u64, value: V) -> Result<Option<V>, PtxError> {
        {
            let header: MapHeader = tx.read_pod(self.header, 0)?;
            let bucket = mix(key) & (header.buckets - 1);
            // In-place update if present.
            let mut cursor: NvmPtr = tx.read_pod(header.table, bucket * 16)?;
            while !cursor.is_null() {
                let node_key: u64 = tx.read_pod(cursor, 16)?;
                if node_key == key {
                    let old: V = tx.read_pod(cursor, NODE_VALUE_OFF)?;
                    tx.write_pod(cursor, NODE_VALUE_OFF, &value)?;
                    return Ok(Some(old));
                }
                cursor = tx.read_pod(cursor, 0)?;
            }
            // Prepend a new node.
            let head: NvmPtr = tx.read_pod(header.table, bucket * 16)?;
            let node = tx.alloc(Self::NODE_BYTES)?;
            tx.write_pod(node, 0, &head)?;
            tx.write_pod(node, 16, &key)?;
            tx.write_pod(node, 24, &0u64)?;
            tx.write_pod(node, NODE_VALUE_OFF, &value)?;
            tx.write_pod(header.table, bucket * 16, &node)?;
            tx.write_pod(self.header, 0, &MapHeader { len: header.len + 1, ..header })?;
            Ok(None)
        }
    }

    /// Removes `key` atomically, returning its value if present. The
    /// node's memory is freed with the transaction's commit.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn remove(&self, pool: &PtxPool, key: u64) -> Result<Option<V>, PtxError> {
        pool.run(|tx| self.remove_in(tx, key))
    }

    /// [`remove`](Self::remove) inside an already-open transaction.
    ///
    /// # Errors
    ///
    /// As for [`remove`](Self::remove).
    pub fn remove_in(&self, tx: &mut Ptx<'_>, key: u64) -> Result<Option<V>, PtxError> {
        {
            let header: MapHeader = tx.read_pod(self.header, 0)?;
            let bucket = mix(key) & (header.buckets - 1);
            let mut prev: Option<NvmPtr> = None;
            let mut cursor: NvmPtr = tx.read_pod(header.table, bucket * 16)?;
            while !cursor.is_null() {
                let next: NvmPtr = tx.read_pod(cursor, 0)?;
                let node_key: u64 = tx.read_pod(cursor, 16)?;
                if node_key == key {
                    let old: V = tx.read_pod(cursor, NODE_VALUE_OFF)?;
                    match prev {
                        Some(prev) => tx.write_pod(prev, 0, &next)?,
                        None => tx.write_pod(header.table, bucket * 16, &next)?,
                    }
                    tx.free(cursor)?;
                    tx.write_pod(self.header, 0, &MapHeader { len: header.len - 1, ..header })?;
                    return Ok(Some(old));
                }
                prev = Some(cursor);
                cursor = next;
            }
            Ok(None)
        }
    }

    /// Looks up `key` inside an open transaction (sees the transaction's
    /// own writes).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn get_in(&self, tx: &Ptx<'_>, key: u64) -> Result<Option<V>, PtxError> {
        let header: MapHeader = tx.read_pod(self.header, 0)?;
        let mut cursor: NvmPtr = tx.read_pod(header.table, (mix(key) & (header.buckets - 1)) * 16)?;
        while !cursor.is_null() {
            let node_key: u64 = tx.read_pod(cursor, 16)?;
            if node_key == key {
                return Ok(Some(tx.read_pod(cursor, NODE_VALUE_OFF)?));
            }
            cursor = tx.read_pod(cursor, 0)?;
        }
        Ok(None)
    }
}
