//! # pds — persistent data structures over Poseidon transactions
//!
//! The layer a downstream application actually programs against:
//! crash-consistent containers whose every mutation is a [`ptx`]
//! transaction, so any power failure leaves them exactly at the last
//! committed operation.
//!
//! * [`PVec`] — a growable persistent vector of [`Pod`](pmem::Pod)
//!   elements (amortised-O(1) push with transactional doubling).
//! * [`PList`] — a persistent singly-linked stack (push/pop front).
//! * [`PMap`] — a persistent chained hash map keyed by `u64`.
//!
//! Containers hold no volatile state: a handle is just a persistent
//! pointer to the container's header block, so reopening after a restart
//! is `PVec::open(ptr)`. Anchor the pointer of your outermost container
//! at the pool root ([`ptx::Ptx::set_root`]).
//!
//! # Example
//!
//! ```
//! use pds::PVec;
//! use pmem::{DeviceConfig, PmemDevice};
//! use poseidon::{HeapConfig, PoseidonHeap};
//! use ptx::PtxPool;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), ptx::PtxError> {
//! let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
//! let heap = Arc::new(PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2))?);
//! let pool = PtxPool::create(heap)?;
//!
//! let vec: PVec<u64> = PVec::create(&pool)?;
//! vec.push(&pool, 1)?;
//! vec.push(&pool, 2)?;
//! assert_eq!(vec.get(&pool, 0)?, Some(1));
//! assert_eq!(vec.pop(&pool)?, Some(2));
//! assert_eq!(vec.len(&pool)?, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod list;
mod map;
mod vec;

pub use list::PList;
pub use map::PMap;
pub use vec::PVec;
