//! A growable persistent vector.

use std::marker::PhantomData;

use pmem::{pod_struct, Pod};
use poseidon::NvmPtr;
use ptx::{Ptx, PtxError, PtxPool};

pod_struct! {
    /// Persistent header of a [`PVec`].
    pub struct VecHeader {
        /// Element count.
        pub len: u64,
        /// Element capacity of the data block.
        pub cap: u64,
        /// Pointer to the data block (null while empty).
        pub data: NvmPtr,
    }
}

/// A growable, crash-consistent vector of [`Pod`] elements.
///
/// The handle is just the header block's persistent pointer: store it (or
/// a container holding it) at the pool root to find the vector after a
/// restart. Every mutating method is one transaction — a crash leaves the
/// vector exactly as of the last committed call.
///
/// The element type is not recorded persistently; reopening with a
/// different `T` of the same size reinterprets the bytes (as in any
/// `Pod`-based persistent layout).
#[derive(Debug, Clone, Copy)]
pub struct PVec<T> {
    header: NvmPtr,
    _marker: PhantomData<T>,
}

impl<T: Pod> PVec<T> {
    /// Allocates an empty vector in its own transaction.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn create(pool: &PtxPool) -> Result<PVec<T>, PtxError> {
        let header = pool.run(|tx| {
            let header = tx.alloc(std::mem::size_of::<VecHeader>() as u64)?;
            tx.write_pod(header, 0, &VecHeader { len: 0, cap: 0, data: NvmPtr::NULL })?;
            Ok(header)
        })?;
        Ok(PVec { header, _marker: PhantomData })
    }

    /// Reattaches to the vector whose header block is at `header`.
    pub fn open(header: NvmPtr) -> PVec<T> {
        PVec { header, _marker: PhantomData }
    }

    /// The header block's persistent pointer (anchor this).
    pub fn handle(&self) -> NvmPtr {
        self.header
    }

    fn read_header(&self, pool: &PtxPool) -> Result<VecHeader, PtxError> {
        Ok(pool.heap().device().read_pod(pool.heap().raw_offset(self.header)?)?)
    }

    const ELEM: u64 = std::mem::size_of::<T>() as u64;

    /// Number of elements.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn len(&self, pool: &PtxPool) -> Result<u64, PtxError> {
        Ok(self.read_header(pool)?.len)
    }

    /// Whether the vector is empty.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn is_empty(&self, pool: &PtxPool) -> Result<bool, PtxError> {
        Ok(self.len(pool)? == 0)
    }

    /// Appends `value`, growing the data block (doubling) when full — the
    /// growth (fresh block, copy, header swap, old block freed) commits
    /// atomically with the push.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn push(&self, pool: &PtxPool, value: T) -> Result<(), PtxError> {
        pool.run(|tx| {
            let header: VecHeader = tx.read_pod(self.header, 0)?;
            let header = if header.len == header.cap { self.grow(tx, header)? } else { header };
            tx.write_pod(header.data, header.len * Self::ELEM, &value)?;
            tx.write_pod(self.header, 0, &VecHeader { len: header.len + 1, ..header })?;
            Ok(())
        })
    }

    fn grow(&self, tx: &mut Ptx<'_>, header: VecHeader) -> Result<VecHeader, PtxError> {
        let new_cap = (header.cap * 2).max(4);
        let new_data = tx.alloc(new_cap * Self::ELEM)?;
        if header.len > 0 {
            // Bulk-copy into the unpublished block: no undo journaling
            // needed — if the transaction aborts, the allocation journal
            // discards the new block wholesale.
            let dev = tx.heap().device().clone();
            let from = tx.heap().raw_offset(header.data)?;
            let to = tx.heap().raw_offset(new_data)?;
            let mut buf = vec![0u8; (header.len * Self::ELEM) as usize];
            dev.read(from, &mut buf)?;
            dev.write(to, &buf)?;
            dev.persist(to, buf.len() as u64)?;
            // The old block is released when this transaction commits.
            tx.free(header.data)?;
        }
        Ok(VecHeader { data: new_data, cap: new_cap, ..header })
    }

    /// Removes and returns the last element (`None` when empty).
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn pop(&self, pool: &PtxPool) -> Result<Option<T>, PtxError> {
        pool.run(|tx| {
            let header: VecHeader = tx.read_pod(self.header, 0)?;
            if header.len == 0 {
                return Ok(None);
            }
            let value: T = tx.read_pod(header.data, (header.len - 1) * Self::ELEM)?;
            tx.write_pod(self.header, 0, &VecHeader { len: header.len - 1, ..header })?;
            Ok(Some(value))
        })
    }

    /// Reads the element at `index` (`None` out of range).
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn get(&self, pool: &PtxPool, index: u64) -> Result<Option<T>, PtxError> {
        let header = self.read_header(pool)?;
        if index >= header.len {
            return Ok(None);
        }
        let data = pool.heap().raw_offset(header.data)?;
        Ok(Some(pool.heap().device().read_pod(data + index * Self::ELEM)?))
    }

    /// Overwrites the element at `index` transactionally.
    ///
    /// # Errors
    ///
    /// [`PtxError::WriteOutOfBlock`]-style bounds error if out of range,
    /// or transaction errors.
    pub fn set(&self, pool: &PtxPool, index: u64, value: T) -> Result<(), PtxError> {
        pool.run(|tx| {
            let header: VecHeader = tx.read_pod(self.header, 0)?;
            if index >= header.len {
                return Err(PtxError::WriteOutOfBlock {
                    offset: index * Self::ELEM,
                    len: Self::ELEM,
                    block: header.len * Self::ELEM,
                });
            }
            tx.write_pod(header.data, index * Self::ELEM, &value)
        })
    }

    /// Copies the whole vector into a volatile `Vec`.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn to_vec(&self, pool: &PtxPool) -> Result<Vec<T>, PtxError> {
        let header = self.read_header(pool)?;
        let mut out = Vec::with_capacity(header.len as usize);
        if header.len > 0 {
            let data = pool.heap().raw_offset(header.data)?;
            for i in 0..header.len {
                out.push(pool.heap().device().read_pod(data + i * Self::ELEM)?);
            }
        }
        Ok(out)
    }
}
