//! A persistent singly-linked stack.

use std::marker::PhantomData;

use pmem::{pod_struct, Pod};
use poseidon::NvmPtr;
use ptx::{PtxError, PtxPool};

pod_struct! {
    /// Persistent header of a [`PList`].
    pub struct ListHeader {
        /// First node (null when empty).
        pub head: NvmPtr,
        /// Element count.
        pub len: u64,
        /// Reserved.
        pub _pad: u64,
    }
}

/// A crash-consistent singly-linked stack of [`Pod`] elements
/// (push/pop at the front). Each mutation is one transaction; each node
/// is one heap allocation holding `{next: NvmPtr, value: T}`.
#[derive(Debug, Clone, Copy)]
pub struct PList<T> {
    header: NvmPtr,
    _marker: PhantomData<T>,
}

impl<T: Pod> PList<T> {
    const NODE_BYTES: u64 = 16 + std::mem::size_of::<T>() as u64;

    /// Allocates an empty list in its own transaction.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn create(pool: &PtxPool) -> Result<PList<T>, PtxError> {
        let header = pool.run(|tx| {
            let header = tx.alloc(std::mem::size_of::<ListHeader>() as u64)?;
            tx.write_pod(header, 0, &ListHeader { head: NvmPtr::NULL, len: 0, _pad: 0 })?;
            Ok(header)
        })?;
        Ok(PList { header, _marker: PhantomData })
    }

    /// Reattaches to the list whose header block is at `header`.
    pub fn open(header: NvmPtr) -> PList<T> {
        PList { header, _marker: PhantomData }
    }

    /// The header block's persistent pointer (anchor this).
    pub fn handle(&self) -> NvmPtr {
        self.header
    }

    fn read_header(&self, pool: &PtxPool) -> Result<ListHeader, PtxError> {
        Ok(pool.heap().device().read_pod(pool.heap().raw_offset(self.header)?)?)
    }

    /// Element count.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn len(&self, pool: &PtxPool) -> Result<u64, PtxError> {
        Ok(self.read_header(pool)?.len)
    }

    /// Whether the list is empty.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn is_empty(&self, pool: &PtxPool) -> Result<bool, PtxError> {
        Ok(self.len(pool)? == 0)
    }

    /// Pushes `value` at the front, atomically.
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn push(&self, pool: &PtxPool, value: T) -> Result<(), PtxError> {
        pool.run(|tx| {
            let header: ListHeader = tx.read_pod(self.header, 0)?;
            let node = tx.alloc(Self::NODE_BYTES)?;
            tx.write_pod(node, 0, &header.head)?;
            tx.write_pod(node, 16, &value)?;
            tx.write_pod(self.header, 0, &ListHeader { head: node, len: header.len + 1, _pad: 0 })?;
            Ok(())
        })
    }

    /// Pops the front element, atomically (`None` when empty). The node's
    /// memory is freed in the same transaction (deferred to its commit).
    ///
    /// # Errors
    ///
    /// Transaction/allocator errors.
    pub fn pop(&self, pool: &PtxPool) -> Result<Option<T>, PtxError> {
        pool.run(|tx| {
            let header: ListHeader = tx.read_pod(self.header, 0)?;
            if header.head.is_null() {
                return Ok(None);
            }
            let next: NvmPtr = tx.read_pod(header.head, 0)?;
            let value: T = tx.read_pod(header.head, 16)?;
            tx.free(header.head)?;
            tx.write_pod(self.header, 0, &ListHeader { head: next, len: header.len - 1, _pad: 0 })?;
            Ok(Some(value))
        })
    }

    /// Reads the front element without removing it.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn front(&self, pool: &PtxPool) -> Result<Option<T>, PtxError> {
        let header = self.read_header(pool)?;
        if header.head.is_null() {
            return Ok(None);
        }
        let node = pool.heap().raw_offset(header.head)?;
        Ok(Some(pool.heap().device().read_pod(node + 16)?))
    }

    /// Copies the whole list (front to back) into a volatile `Vec`.
    ///
    /// # Errors
    ///
    /// Device errors, or [`PtxError::Aborted`] on a cyclic/corrupt chain.
    pub fn to_vec(&self, pool: &PtxPool) -> Result<Vec<T>, PtxError> {
        let header = self.read_header(pool)?;
        let dev = pool.heap().device();
        let mut out = Vec::with_capacity(header.len as usize);
        let mut cursor = header.head;
        while !cursor.is_null() {
            if out.len() as u64 > header.len {
                return Err(PtxError::Aborted("list chain longer than its length (corrupt)".into()));
            }
            let node = pool.heap().raw_offset(cursor)?;
            out.push(dev.read_pod(node + 16)?);
            cursor = dev.read_pod(node)?;
        }
        Ok(out)
    }
}
