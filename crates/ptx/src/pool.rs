//! The transactional pool and its persistent descriptor.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use pmem::{pod_struct, Pod};
use poseidon::{NvmPtr, PoseidonError, PoseidonHeap};

use crate::error::PtxError;

/// Number of concurrently open transactions a pool supports (one
/// descriptor context each, mirroring PMDK's per-thread transactions).
pub const TX_CONTEXTS: usize = 8;
/// Bytes per transaction context (header + journals + undo area).
const CTX_BYTES: u64 = 64 * 1024;
/// Offset of the first context within the descriptor.
const CTX0_OFF: u64 = 0x1000;
/// Size of the pool descriptor block allocated from the heap.
const DESCR_BYTES: u64 = CTX0_OFF + TX_CONTEXTS as u64 * CTX_BYTES;
/// Context-relative offset of the allocation journal.
const ALLOC_JOURNAL_OFF: u64 = 0x40;
/// Context-relative offset of the free-intent journal.
const FREE_JOURNAL_OFF: u64 = 0x1040;
/// Context-relative offset of the user-data undo journal.
const UNDO_OFF: u64 = 0x2040;
/// Capacity of one context's user-data undo journal in bytes.
const UNDO_CAPACITY: u64 = CTX_BYTES - UNDO_OFF;
/// Entries per alloc/free journal.
const JOURNAL_SLOTS: usize = 256;

const STATE_IDLE: u64 = 0;
const STATE_ACTIVE: u64 = 1;
const STATE_COMMITTED: u64 = 2;

const DESCR_MAGIC: u64 = 0x5054_5844_4553_4352; // "PTXDESCR"

pod_struct! {
    /// The persistent pool descriptor header.
    pub struct DescriptorHeader {
        /// [`DESCR_MAGIC`].
        pub magic: u64,
        /// Number of transaction contexts in this descriptor.
        pub contexts: u64,
        /// The application's root pointer.
        pub app_root: NvmPtr,
    }
}

pod_struct! {
    /// The persistent header of one transaction context.
    pub struct CtxHeader {
        /// Transaction state: idle / active / committed.
        pub state: u64,
        /// Live entries in the allocation journal.
        pub alloc_count: u64,
        /// Live entries in the free-intent journal.
        pub free_count: u64,
        /// Bytes used in the user-data undo journal.
        pub undo_bytes: u64,
    }
}

/// What [`PtxPool::open`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PtxRecovery {
    /// Transactions interrupted before their commit point and rolled back.
    pub rolled_back: u64,
    /// User-data undo entries restored across them.
    pub writes_reverted: u64,
    /// Transactional allocations released across them.
    pub allocs_reverted: u64,
    /// Transactions that crashed after their commit point and were
    /// completed (deferred frees executed).
    pub rolled_forward: u64,
}

impl PtxRecovery {
    /// Whether the previous session left interrupted transactions.
    pub fn crash_detected(&self) -> bool {
        self.rolled_back > 0 || self.rolled_forward > 0
    }
}

/// A pool of persistent transactions over a [`PoseidonHeap`].
///
/// Up to [`TX_CONTEXTS`] transactions run concurrently, each on its own
/// persistent context (journals + state word) inside the descriptor block
/// anchored at the heap's root pointer. Applications anchor *their* data
/// via [`Ptx::set_root`] / [`PtxPool::root`].
///
/// Do not nest [`run`](Self::run) calls on one thread: the inner
/// transaction would claim a second context while the allocator's
/// per-thread transactional-allocation state is already in use.
pub struct PtxPool {
    heap: Arc<PoseidonHeap>,
    /// Device offset of the descriptor block.
    descr: u64,
    /// Persistent pointer to the descriptor.
    descr_ptr: NvmPtr,
    /// Bitmap of claimed transaction contexts.
    claimed: AtomicU32,
    recovery: PtxRecovery,
}

impl std::fmt::Debug for PtxPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PtxPool").field("descr", &self.descr).finish_non_exhaustive()
    }
}

impl PtxPool {
    /// Creates a fresh pool on `heap`: allocates the descriptor block and
    /// anchors it at the heap's root pointer.
    ///
    /// # Errors
    ///
    /// [`PtxError::RootOccupied`] if the heap root is already set (open
    /// the existing pool instead), or allocator errors.
    pub fn create(heap: Arc<PoseidonHeap>) -> Result<PtxPool, PtxError> {
        if !heap.root()?.is_null() {
            return Err(PtxError::RootOccupied);
        }
        let descr_ptr = heap.alloc(DESCR_BYTES)?;
        let descr = heap.raw_offset(descr_ptr)?;
        let dev = heap.device();
        let header =
            DescriptorHeader { magic: DESCR_MAGIC, contexts: TX_CONTEXTS as u64, app_root: NvmPtr::NULL };
        dev.write_pod(descr, &header)?;
        dev.persist(descr, std::mem::size_of::<DescriptorHeader>() as u64)?;
        for ctx in 0..TX_CONTEXTS {
            let ctx_off = descr + CTX0_OFF + ctx as u64 * CTX_BYTES;
            dev.write_pod(ctx_off, &CtxHeader::zeroed())?;
            dev.persist(ctx_off, std::mem::size_of::<CtxHeader>() as u64)?;
        }
        heap.set_root(descr_ptr)?;
        Ok(PtxPool { heap, descr, descr_ptr, claimed: AtomicU32::new(0), recovery: PtxRecovery::default() })
    }

    /// Opens the pool anchored at `heap`'s root pointer, completing or
    /// rolling back every transaction a crash interrupted. Idempotent: a
    /// crash during this recovery is healed by the next `open`.
    ///
    /// # Errors
    ///
    /// [`PtxError::NoDescriptor`] if the root does not lead to a valid
    /// descriptor, or allocator errors.
    pub fn open(heap: Arc<PoseidonHeap>) -> Result<PtxPool, PtxError> {
        let descr_ptr = heap.root()?;
        if descr_ptr.is_null() {
            return Err(PtxError::NoDescriptor);
        }
        let descr = heap.raw_offset(descr_ptr)?;
        let header: DescriptorHeader = heap.device().read_pod(descr)?;
        if header.magic != DESCR_MAGIC || header.contexts != TX_CONTEXTS as u64 {
            return Err(PtxError::NoDescriptor);
        }
        let mut pool =
            PtxPool { heap, descr, descr_ptr, claimed: AtomicU32::new(0), recovery: PtxRecovery::default() };
        let mut report = PtxRecovery::default();
        for ctx in 0..TX_CONTEXTS {
            let ctx_header: CtxHeader = pool.heap.device().read_pod(pool.ctx_off(ctx))?;
            match ctx_header.state {
                STATE_ACTIVE => {
                    let (writes, allocs) = pool.roll_back(ctx, &ctx_header)?;
                    report.rolled_back += 1;
                    report.writes_reverted += writes;
                    report.allocs_reverted += allocs;
                }
                STATE_COMMITTED => {
                    pool.roll_forward(ctx, &ctx_header)?;
                    report.rolled_forward += 1;
                }
                _ => {}
            }
        }
        pool.recovery = report;
        Ok(pool)
    }

    /// What recovery found when this pool was opened.
    pub fn recovery_report(&self) -> PtxRecovery {
        self.recovery
    }

    /// The heap this pool transacts on.
    pub fn heap(&self) -> &Arc<PoseidonHeap> {
        &self.heap
    }

    /// Persistent pointer to the pool's descriptor block (do not free or
    /// overwrite it; exposed for diagnostics and tests).
    pub fn descriptor_ptr(&self) -> NvmPtr {
        self.descr_ptr
    }

    /// The application's root pointer.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn root(&self) -> Result<NvmPtr, PtxError> {
        let header: DescriptorHeader = self.heap.device().read_pod(self.descr)?;
        Ok(header.app_root)
    }

    /// Runs `f` as a persistent transaction: every
    /// [`Ptx::alloc`]/[`write`](Ptx::write)/[`free`](Ptx::free)/
    /// [`set_root`](Ptx::set_root) inside it becomes durable atomically
    /// when `f` returns `Ok`, and is fully undone when `f` returns `Err`
    /// (or the process crashes at any instant). Up to [`TX_CONTEXTS`]
    /// transactions run concurrently.
    ///
    /// # Errors
    ///
    /// The closure's error (after rollback), [`PtxError::JournalFull`]
    /// when all contexts are claimed, or transaction-machinery errors.
    pub fn run<R>(&self, f: impl FnOnce(&mut Ptx<'_>) -> Result<R, PtxError>) -> Result<R, PtxError> {
        let ctx = self.claim_ctx()?;
        // Begin: mark active before any journaled effect.
        let result = self.write_ctx_field(ctx, offset_of_state(), &STATE_ACTIVE).and_then(|()| {
            let mut tx = Ptx { pool: self, ctx, dirty: Vec::new(), finished: false };
            match f(&mut tx) {
                Ok(value) => {
                    tx.commit()?;
                    Ok(value)
                }
                Err(error) => {
                    tx.rollback()?;
                    Err(error)
                }
            }
        });
        self.release_ctx(ctx);
        result
    }

    fn claim_ctx(&self) -> Result<usize, PtxError> {
        loop {
            let current = self.claimed.load(Ordering::Acquire);
            let free = (!current).trailing_zeros() as usize;
            if free >= TX_CONTEXTS {
                return Err(PtxError::JournalFull { max: TX_CONTEXTS });
            }
            if self
                .claimed
                .compare_exchange(current, current | (1 << free), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(free);
            }
        }
    }

    fn release_ctx(&self, ctx: usize) {
        self.claimed.fetch_and(!(1u32 << ctx), Ordering::AcqRel);
    }

    /// Device offset of context `ctx`'s header.
    fn ctx_off(&self, ctx: usize) -> u64 {
        self.descr + CTX0_OFF + ctx as u64 * CTX_BYTES
    }

    fn write_ctx_field<T: Pod>(&self, ctx: usize, field_off: u64, value: &T) -> Result<(), PtxError> {
        let dev = self.heap.device();
        dev.write_pod(self.ctx_off(ctx) + field_off, value)?;
        dev.persist(self.ctx_off(ctx) + field_off, std::mem::size_of::<T>() as u64)?;
        Ok(())
    }

    fn journal_slot(&self, ctx: usize, journal_off: u64, index: u64) -> u64 {
        self.ctx_off(ctx) + journal_off + index * 16
    }

    /// Restores user writes (reverse order), releases journaled
    /// allocations, truncates everything, returns the context to idle.
    fn roll_back(&self, ctx: usize, header: &CtxHeader) -> Result<(u64, u64), PtxError> {
        let dev = self.heap.device();
        let undo_base = self.ctx_off(ctx) + UNDO_OFF;
        let mut entries = Vec::new();
        let mut pos = 0u64;
        while pos + 16 <= header.undo_bytes {
            let target: u64 = dev.read_pod(undo_base + pos)?;
            let len: u64 = dev.read_pod(undo_base + pos + 8)?;
            if len > UNDO_CAPACITY || pos + 16 + len.next_multiple_of(8) > header.undo_bytes {
                break; // torn tail entry: its target was never written
            }
            let mut old = vec![0u8; len as usize];
            dev.read(undo_base + pos + 16, &mut old)?;
            entries.push((target, old));
            pos += 16 + len.next_multiple_of(8);
        }
        let writes = entries.len() as u64;
        for (target, old) in entries.iter().rev() {
            dev.write(*target, old)?;
            dev.clwb(*target, old.len() as u64)?;
        }
        dev.sfence()?;
        // Release the transaction's allocations (poseidon's own micro-log
        // recovery may have freed some already — tolerated). A block whose
        // sub-heap was condemned, or that sits inside fresh media damage,
        // cannot be freed — its bytes are already inside the quarantined
        // unit, so skipping it loses nothing.
        let mut allocs = 0;
        for i in 0..header.alloc_count.min(JOURNAL_SLOTS as u64) {
            let ptr: NvmPtr = dev.read_pod(self.journal_slot(ctx, ALLOC_JOURNAL_OFF, i))?;
            match self.heap.free(ptr) {
                Ok(()) => allocs += 1,
                Err(PoseidonError::DoubleFree { .. })
                | Err(PoseidonError::InvalidFree { .. })
                | Err(PoseidonError::SubheapQuarantined { .. })
                | Err(PoseidonError::MediaError { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.truncate_to_idle(ctx)?;
        Ok((writes, allocs))
    }

    /// Completes a committed transaction: executes the deferred frees and
    /// truncates the context's journals.
    fn roll_forward(&self, ctx: usize, header: &CtxHeader) -> Result<u64, PtxError> {
        let dev = self.heap.device();
        let mut frees = 0;
        for i in 0..header.free_count.min(JOURNAL_SLOTS as u64) {
            let ptr: NvmPtr = dev.read_pod(self.journal_slot(ctx, FREE_JOURNAL_OFF, i))?;
            match self.heap.free(ptr) {
                Ok(()) => frees += 1,
                // Already freed by recovery, or unreachable inside a
                // quarantined/damaged unit — the deferred free is moot.
                Err(PoseidonError::DoubleFree { .. })
                | Err(PoseidonError::InvalidFree { .. })
                | Err(PoseidonError::SubheapQuarantined { .. })
                | Err(PoseidonError::MediaError { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.truncate_to_idle(ctx)?;
        Ok(frees)
    }

    fn truncate_to_idle(&self, ctx: usize) -> Result<(), PtxError> {
        self.write_ctx_field(ctx, offset_of_alloc_count(), &0u64)?;
        self.write_ctx_field(ctx, offset_of_free_count(), &0u64)?;
        self.write_ctx_field(ctx, offset_of_undo_bytes(), &0u64)?;
        self.write_ctx_field(ctx, offset_of_state(), &STATE_IDLE)?;
        Ok(())
    }
}

fn offset_of_state() -> u64 {
    std::mem::offset_of!(CtxHeader, state) as u64
}
fn offset_of_app_root() -> u64 {
    std::mem::offset_of!(DescriptorHeader, app_root) as u64
}
fn offset_of_alloc_count() -> u64 {
    std::mem::offset_of!(CtxHeader, alloc_count) as u64
}
fn offset_of_free_count() -> u64 {
    std::mem::offset_of!(CtxHeader, free_count) as u64
}
fn offset_of_undo_bytes() -> u64 {
    std::mem::offset_of!(CtxHeader, undo_bytes) as u64
}

/// An open persistent transaction. See [`PtxPool::run`].
pub struct Ptx<'p> {
    pool: &'p PtxPool,
    ctx: usize,
    /// User ranges written this transaction (persisted at commit).
    dirty: Vec<(u64, u64)>,
    finished: bool,
}

impl std::fmt::Debug for Ptx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ptx")
            .field("ctx", &self.ctx)
            .field("dirty_ranges", &self.dirty.len())
            .finish_non_exhaustive()
    }
}

impl Ptx<'_> {
    /// The heap this transaction operates on. Raw device writes through
    /// it are *not* journaled — use them only on blocks allocated inside
    /// this transaction and not yet published (an abort discards those
    /// wholesale via the allocation journal).
    pub fn heap(&self) -> &Arc<PoseidonHeap> {
        &self.pool.heap
    }

    fn ctx_header(&self) -> Result<CtxHeader, PtxError> {
        Ok(self.pool.heap.device().read_pod(self.pool.ctx_off(self.ctx))?)
    }

    /// Allocates `size` bytes transactionally: reclaimed on abort or
    /// crash, durable at commit.
    ///
    /// # Errors
    ///
    /// Allocator errors, or [`PtxError::JournalFull`].
    pub fn alloc(&mut self, size: u64) -> Result<NvmPtr, PtxError> {
        let header = self.ctx_header()?;
        if header.alloc_count as usize >= JOURNAL_SLOTS {
            return Err(PtxError::JournalFull { max: JOURNAL_SLOTS });
        }
        let ptr = self.pool.heap.tx_alloc(size, false)?;
        let dev = self.pool.heap.device();
        let slot = self.pool.journal_slot(self.ctx, ALLOC_JOURNAL_OFF, header.alloc_count);
        dev.write_pod(slot, &ptr)?;
        dev.persist(slot, 16)?;
        self.pool.write_ctx_field(self.ctx, offset_of_alloc_count(), &(header.alloc_count + 1))?;
        Ok(ptr)
    }

    /// Registers `ptr` to be freed when the transaction commits. The
    /// block stays fully usable until then, and stays allocated if the
    /// transaction aborts.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::InvalidFree`]-class errors for dead pointers, or
    /// [`PtxError::JournalFull`].
    pub fn free(&mut self, ptr: NvmPtr) -> Result<(), PtxError> {
        // Validate now so the commit-time free cannot fail.
        self.pool.heap.block_size(ptr)?;
        let header = self.ctx_header()?;
        if header.free_count as usize >= JOURNAL_SLOTS {
            return Err(PtxError::JournalFull { max: JOURNAL_SLOTS });
        }
        let dev = self.pool.heap.device();
        let slot = self.pool.journal_slot(self.ctx, FREE_JOURNAL_OFF, header.free_count);
        dev.write_pod(slot, &ptr)?;
        dev.persist(slot, 16)?;
        self.pool.write_ctx_field(self.ctx, offset_of_free_count(), &(header.free_count + 1))?;
        Ok(())
    }

    /// Transactionally writes `bytes` at byte `offset` inside the block
    /// at `ptr`: the overwritten bytes are journaled first, so abort or
    /// crash restores them.
    ///
    /// Concurrent transactions writing the *same* bytes race (as in any
    /// transactional memory without conflict detection); coordinate at
    /// the data-structure level.
    ///
    /// # Errors
    ///
    /// [`PtxError::WriteOutOfBlock`], [`PtxError::UndoFull`], or
    /// allocator/device errors.
    pub fn write(&mut self, ptr: NvmPtr, offset: u64, bytes: &[u8]) -> Result<(), PtxError> {
        let block = self.pool.heap.block_size(ptr)?;
        let len = bytes.len() as u64;
        if offset + len > block {
            return Err(PtxError::WriteOutOfBlock { offset, len, block });
        }
        let target = self.pool.heap.raw_offset(ptr)? + offset;
        self.log_and_write(target, bytes)
    }

    /// [`write`](Self::write) of a [`Pod`] value.
    ///
    /// # Errors
    ///
    /// As for [`write`](Self::write).
    pub fn write_pod<T: Pod>(&mut self, ptr: NvmPtr, offset: u64, value: &T) -> Result<(), PtxError> {
        self.write(ptr, offset, value.as_bytes())
    }

    /// Transactionally updates the application root pointer.
    ///
    /// # Errors
    ///
    /// Allocator/device errors or a full undo journal.
    pub fn set_root(&mut self, ptr: NvmPtr) -> Result<(), PtxError> {
        let target = self.pool.descr + offset_of_app_root();
        self.log_and_write(target, ptr.as_bytes())
    }

    /// Reads a [`Pod`] value from byte `offset` of the block at `ptr`
    /// (transactions read their own writes — writes go straight to the
    /// device after journaling).
    ///
    /// # Errors
    ///
    /// [`PtxError::WriteOutOfBlock`] (bounds) or device errors.
    pub fn read_pod<T: Pod>(&self, ptr: NvmPtr, offset: u64) -> Result<T, PtxError> {
        let block = self.pool.heap.block_size(ptr)?;
        let len = std::mem::size_of::<T>() as u64;
        if offset + len > block {
            return Err(PtxError::WriteOutOfBlock { offset, len, block });
        }
        Ok(self.pool.heap.device().read_pod(self.pool.heap.raw_offset(ptr)? + offset)?)
    }

    fn log_and_write(&mut self, target: u64, bytes: &[u8]) -> Result<(), PtxError> {
        let header = self.ctx_header()?;
        let len = bytes.len() as u64;
        let entry_len = 16 + len.next_multiple_of(8);
        if header.undo_bytes + entry_len > UNDO_CAPACITY {
            return Err(PtxError::UndoFull { capacity: UNDO_CAPACITY });
        }
        let dev = self.pool.heap.device();
        // Build the entry: header + old image.
        let mut entry = vec![0u8; entry_len as usize];
        entry[0..8].copy_from_slice(&target.to_le_bytes());
        entry[8..16].copy_from_slice(&len.to_le_bytes());
        dev.read(target, &mut entry[16..16 + bytes.len()])?;
        let entry_off = self.pool.ctx_off(self.ctx) + UNDO_OFF + header.undo_bytes;
        dev.write(entry_off, &entry)?;
        dev.persist(entry_off, entry_len)?;
        self.pool.write_ctx_field(self.ctx, offset_of_undo_bytes(), &(header.undo_bytes + entry_len))?;
        // The mutation itself; durable at commit.
        dev.write(target, bytes)?;
        self.dirty.push((target, len));
        Ok(())
    }

    fn commit(&mut self) -> Result<(), PtxError> {
        self.finished = true;
        let dev = self.pool.heap.device();
        // 1. User writes become durable.
        for &(off, len) in &self.dirty {
            dev.clwb(off, len)?;
        }
        dev.sfence()?;
        // 2. The allocator's micro log commits: the transaction's
        //    allocations are now permanent.
        self.pool.heap.tx_commit()?;
        // 3. The commit point: one atomic persisted state change.
        self.pool.write_ctx_field(self.ctx, offset_of_state(), &STATE_COMMITTED)?;
        // 4. Roll forward: deferred frees + truncation.
        let header = self.ctx_header()?;
        self.pool.roll_forward(self.ctx, &header)?;
        Ok(())
    }

    fn rollback(&mut self) -> Result<(), PtxError> {
        self.finished = true;
        let header = self.ctx_header()?;
        self.pool.roll_back(self.ctx, &header)?;
        // Drop the allocator's micro log for this transaction (its
        // entries were already freed through the alloc journal). A
        // condemned sub-heap refuses the cleanup: the pending entries sit
        // inside the quarantined unit and recovery settles them there.
        // The ptx-level abort above is already complete — every pre-image
        // is restored — so that refusal must not mask the abort's cause.
        match self.pool.heap.tx_abort() {
            Ok(())
            | Err(PoseidonError::SubheapQuarantined { .. })
            | Err(PoseidonError::MediaError { .. }) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for Ptx<'_> {
    fn drop(&mut self) {
        // A panic inside the closure unwinds through here: roll back so
        // the pool is usable (and consistent) afterwards.
        if !self.finished {
            let _ = self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig, PmemDevice};
    use poseidon::HeapConfig;

    fn pool() -> (Arc<PmemDevice>, PtxPool) {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());
        let pool = PtxPool::create(heap).unwrap();
        (dev, pool)
    }

    #[test]
    fn committed_transaction_is_durable() {
        let (dev, pool) = pool();
        let node = pool
            .run(|tx| {
                let node = tx.alloc(64)?;
                tx.write_pod(node, 0, &0xFEEDu64)?;
                tx.set_root(node)?;
                Ok(node)
            })
            .unwrap();
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(pool.root().unwrap(), node);
        let value: u64 = dev.read_pod(pool.heap().raw_offset(node).unwrap()).unwrap();
        assert_eq!(value, 0xFEED);
    }

    #[test]
    fn failed_closure_rolls_everything_back() {
        let (_dev, pool) = pool();
        let keeper = pool
            .run(|tx| {
                let k = tx.alloc(64)?;
                tx.write_pod(k, 0, &1u64)?;
                tx.set_root(k)?;
                Ok(k)
            })
            .unwrap();

        let result: Result<(), PtxError> = pool.run(|tx| {
            let doomed = tx.alloc(128)?;
            tx.write_pod(doomed, 0, &2u64)?;
            tx.write_pod(keeper, 0, &99u64)?; // overwrite, then abort
            tx.set_root(doomed)?;
            Err(PtxError::Aborted("changed my mind".into()))
        });
        assert!(matches!(result, Err(PtxError::Aborted(_))));

        // Root and data restored; the doomed allocation is gone.
        assert_eq!(pool.root().unwrap(), keeper);
        let value: u64 = pool.heap().device().read_pod(pool.heap().raw_offset(keeper).unwrap()).unwrap();
        assert_eq!(value, 1);
        for (_, audit) in pool.heap().audit().unwrap() {
            // Only the descriptor and keeper remain allocated.
            assert!(audit.alloc_blocks <= 2);
        }
    }

    #[test]
    fn deferred_free_keeps_data_until_commit() {
        let (_dev, pool) = pool();
        let block = pool.run(|tx| tx.alloc(64)).unwrap();
        // An aborted transaction that frees the block leaves it alive.
        let aborted: Result<(), PtxError> = pool.run(|tx| {
            tx.free(block)?;
            Err(PtxError::Aborted("no".into()))
        });
        assert!(aborted.is_err());
        assert!(pool.heap().block_size(block).is_ok(), "block freed despite abort");
        // A committed transaction releases it.
        pool.run(|tx| tx.free(block)).unwrap();
        assert!(pool.heap().block_size(block).is_err());
    }

    #[test]
    fn huge_allocations_commit_and_abort_transactionally() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(16)).unwrap());
        let max = heap.layout().max_alloc();
        let size = 4 * max; // beyond every buddy class: extent-table path
        assert!(3 * size <= heap.layout().huge_data_size(), "huge region too small for the test geometry");
        let pool = PtxPool::create(heap.clone()).unwrap();

        // Commit: the extent survives and both ends of the payload are
        // durable (the tail write also exercises huge block_size bounds).
        let big = pool
            .run(|tx| {
                let big = tx.alloc(size)?;
                tx.write_pod(big, 0, &0xB16_0B1Eu64)?;
                tx.write_pod(big, size - 8, &0xCAFEu64)?;
                tx.set_root(big)?;
                Ok(big)
            })
            .unwrap();
        let raw = heap.raw_offset(big).unwrap();
        assert_eq!(dev.read_pod::<u64>(raw).unwrap(), 0xB16_0B1E);
        assert_eq!(dev.read_pod::<u64>(raw + size - 8).unwrap(), 0xCAFE);
        let huge = heap.huge_audit().unwrap().unwrap();
        assert_eq!(huge.alloc_extents, 1);
        assert_eq!(huge.alloc_bytes, size);

        // Abort: the doomed extent is rolled back, the committed one
        // stays.
        let aborted: Result<(), PtxError> = pool.run(|tx| {
            let doomed = tx.alloc(size)?;
            tx.write_pod(doomed, 0, &7u64)?;
            Err(PtxError::Aborted("huge alloc rolled back".into()))
        });
        assert!(matches!(aborted, Err(PtxError::Aborted(_))));
        let huge = heap.huge_audit().unwrap().unwrap();
        assert_eq!(huge.alloc_extents, 1);
        assert_eq!(huge.alloc_bytes, size);

        // A committed free coalesces the region back to one extent.
        pool.run(|tx| tx.free(big)).unwrap();
        let huge = heap.huge_audit().unwrap().unwrap();
        assert_eq!(huge.alloc_extents, 0);
        assert_eq!(huge.free_extents, 1);
        assert_eq!(huge.free_bytes, heap.layout().huge_data_size());
    }

    #[test]
    fn panic_in_closure_rolls_back() {
        let (_dev, pool) = pool();
        let keeper = pool
            .run(|tx| {
                let k = tx.alloc(64)?;
                tx.write_pod(k, 0, &7u64)?;
                tx.set_root(k)?;
                Ok(k)
            })
            .unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), PtxError> = pool.run(|tx| {
                tx.write_pod(keeper, 0, &0u64)?;
                panic!("boom");
            });
        }));
        assert!(outcome.is_err());
        let value: u64 = pool.heap().device().read_pod(pool.heap().raw_offset(keeper).unwrap()).unwrap();
        assert_eq!(value, 7, "panic rollback failed");
        // Pool still works.
        pool.run(|tx| tx.alloc(32).map(|_| ())).unwrap();
    }

    #[test]
    fn write_bounds_are_enforced() {
        let (_dev, pool) = pool();
        let r: Result<(), PtxError> = pool.run(|tx| {
            let p = tx.alloc(64)?; // rounds to a 64-byte block
            tx.write(p, 60, &[0u8; 8])?;
            Ok(())
        });
        assert!(matches!(r, Err(PtxError::WriteOutOfBlock { .. })));
        // And the failed transaction rolled back cleanly.
        pool.run(|tx| tx.alloc(32).map(|_| ())).unwrap();
    }

    #[test]
    fn concurrent_transactions_commit_independently() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(128 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(4)).unwrap());
        let pool = Arc::new(PtxPool::create(heap).unwrap());
        // One persistent counter per thread, bumped transactionally with
        // allocation churn mixed in.
        let cells: Vec<NvmPtr> = (0..4)
            .map(|_| {
                pool.run(|tx| {
                    let c = tx.alloc(64)?;
                    tx.write_pod(c, 0, &0u64)?;
                    Ok(c)
                })
                .unwrap()
            })
            .collect();
        platform::thread::scope(|s| {
            for (thread, &cell) in cells.iter().enumerate() {
                let pool = pool.clone();
                s.spawn(move || {
                    pmem::numa::set_current_cpu(thread);
                    for _ in 0..150 {
                        pool.run(|tx| {
                            let v: u64 = tx.read_pod(cell, 0)?;
                            let scratch = tx.alloc(32)?;
                            tx.write_pod(scratch, 0, &v)?;
                            tx.free(scratch)?;
                            tx.write_pod(cell, 0, &(v + 1))?;
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        for &cell in &cells {
            let v: u64 = pool.heap().device().read_pod(pool.heap().raw_offset(cell).unwrap()).unwrap();
            assert_eq!(v, 150);
        }
        pool.heap().audit().unwrap();
    }

    #[test]
    fn crash_before_commit_rolls_back_on_open() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());
        let pool = PtxPool::create(heap).unwrap();
        let keeper = pool
            .run(|tx| {
                let k = tx.alloc(64)?;
                tx.write_pod(k, 0, &5u64)?;
                tx.set_root(k)?;
                Ok(k)
            })
            .unwrap();

        // Interrupt a transaction mid-flight with a device crash.
        dev.arm_crash_after(60);
        let _ = pool.run(|tx| {
            let a = tx.alloc(64)?;
            tx.write_pod(a, 0, &1u64)?;
            tx.write_pod(keeper, 0, &666u64)?;
            tx.set_root(a)?;
            tx.write_pod(a, 8, &2u64)?;
            Ok(())
        });
        dev.disarm_crash();
        drop(pool);
        dev.simulate_crash(CrashMode::Strict, 3);

        let heap = Arc::new(PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap());
        let pool = PtxPool::open(heap).unwrap();
        // Whatever instant the crash hit, the committed state is intact.
        assert_eq!(pool.root().unwrap(), keeper);
        let value: u64 = pool.heap().device().read_pod(pool.heap().raw_offset(keeper).unwrap()).unwrap();
        assert_eq!(value, 5);
        pool.heap().audit().unwrap();
    }

    #[test]
    fn crash_sweep_every_point_is_atomic() {
        // Crash at every mutation-event count through a transaction; after
        // recovery the pool must show either the full old state or the
        // full new state.
        for crash_at in (5..260).step_by(3) {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
            let heap =
                Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap());
            let pool = PtxPool::create(heap).unwrap();
            let old_root = pool
                .run(|tx| {
                    let k = tx.alloc(64)?;
                    tx.write_pod(k, 0, &111u64)?;
                    tx.set_root(k)?;
                    Ok(k)
                })
                .unwrap();

            dev.arm_crash_after(crash_at);
            let attempted = pool.run(|tx| {
                let n = tx.alloc(64)?;
                tx.write_pod(n, 0, &222u64)?;
                tx.free(old_root)?;
                tx.set_root(n)?;
                Ok(n)
            });
            dev.disarm_crash();
            drop(pool);
            dev.simulate_crash(CrashMode::Strict, crash_at);

            let heap = Arc::new(PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap());
            let pool = PtxPool::open(heap).unwrap();
            let root = pool.root().unwrap();
            let raw = pool.heap().raw_offset(root).unwrap();
            let value: u64 = dev.read_pod(raw).unwrap();
            if root == old_root {
                // Old world: value intact, old root still allocated.
                assert_eq!(value, 111, "crash_at {crash_at}: old world torn");
                assert!(pool.heap().block_size(old_root).is_ok());
            } else {
                // New world: new value, old root freed (roll-forward done).
                assert_eq!(value, 222, "crash_at {crash_at}: new world torn");
                assert!(pool.heap().block_size(old_root).is_err(), "crash_at {crash_at}: deferred free lost");
            }
            let _ = attempted;
            pool.heap().audit().unwrap();
        }
    }

    #[test]
    fn adversarial_crash_sweep_is_atomic() {
        for (i, crash_at) in (5..200).step_by(11).enumerate() {
            let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
            let heap =
                Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(1)).unwrap());
            let pool = PtxPool::create(heap).unwrap();
            let old_root = pool
                .run(|tx| {
                    let k = tx.alloc(64)?;
                    tx.write_pod(k, 0, &111u64)?;
                    tx.set_root(k)?;
                    Ok(k)
                })
                .unwrap();
            dev.arm_crash_after(crash_at);
            let _ = pool.run(|tx| {
                let n = tx.alloc(64)?;
                tx.write_pod(n, 0, &222u64)?;
                tx.free(old_root)?;
                tx.set_root(n)?;
                Ok(n)
            });
            dev.disarm_crash();
            drop(pool);
            dev.simulate_crash(CrashMode::Adversarial, i as u64 * 31 + 7);

            let heap = Arc::new(PoseidonHeap::load(dev.clone(), HeapConfig::new()).unwrap());
            let pool = PtxPool::open(heap).unwrap();
            let root = pool.root().unwrap();
            let value: u64 = dev.read_pod(pool.heap().raw_offset(root).unwrap()).unwrap();
            assert!(value == 111 || value == 222, "crash_at {crash_at}: root value torn ({value})");
            pool.heap().audit().unwrap();
        }
    }

    #[test]
    fn media_fault_mid_transaction_aborts_with_preimages_intact() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());
        let pool = PtxPool::create(heap.clone()).unwrap();
        pmem::numa::set_current_cpu(0);
        let keeper = pool
            .run(|tx| {
                let k = tx.alloc(64)?;
                tx.write_pod(k, 0, &41u64)?;
                tx.set_root(k)?;
                Ok(k)
            })
            .unwrap();

        // Pin a transaction, journal an overwrite of `keeper`, then
        // poison the pinned sub-heap's metadata header: the next alloc
        // trips the uncorrectable error, the allocator condemns the
        // sub-heap, and the transaction must abort with every pre-image
        // restored — no pool reopen, no torn user data.
        let mut pinned_sub = 0u16;
        let result: Result<(), PtxError> = pool.run(|tx| {
            let first = tx.alloc(64)?; // pins the transaction's sub-heap
            pinned_sub = first.subheap();
            tx.write_pod(keeper, 0, &99u64)?;
            dev.poison(heap.layout().meta_base(pinned_sub), 1).unwrap();
            tx.alloc(64)?; // hits Uncorrectable on the poisoned metadata
            Ok(())
        });
        assert!(result.is_err(), "the faulted transaction must not commit");

        // Pre-images intact, damage contained, pool still serving.
        assert_eq!(pool.root().unwrap(), keeper);
        let value: u64 = dev.read_pod(heap.raw_offset(keeper).unwrap()).unwrap();
        assert_eq!(value, 41, "journaled pre-image lost in the media-fault abort");
        assert_eq!(heap.quarantined_subheaps(), vec![pinned_sub]);
        pool.run(|tx| tx.alloc(32).map(drop)).unwrap(); // fails over
    }

    #[test]
    fn open_rejects_blank_and_foreign_roots() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let heap = Arc::new(PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).unwrap());
        assert!(matches!(PtxPool::open(heap.clone()), Err(PtxError::NoDescriptor)));
        // Root pointing at a non-descriptor block.
        let junk = heap.alloc(64).unwrap();
        heap.set_root(junk).unwrap();
        assert!(matches!(PtxPool::open(heap.clone()), Err(PtxError::NoDescriptor)));
        // And create refuses an occupied root.
        assert!(matches!(PtxPool::create(heap), Err(PtxError::RootOccupied)));
    }
}
