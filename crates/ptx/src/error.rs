//! Error type for persistent transactions.

use poseidon::PoseidonError;

/// Errors returned by [`PtxPool`](crate::PtxPool) and
/// [`Ptx`](crate::Ptx) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtxError {
    /// An underlying allocator error.
    Heap(PoseidonError),
    /// The transaction's user-data undo journal is full; split the work
    /// into smaller transactions.
    UndoFull {
        /// Journal capacity in bytes.
        capacity: u64,
    },
    /// The transaction's allocation or free journal is full.
    JournalFull {
        /// Maximum allocations/frees per transaction.
        max: usize,
    },
    /// A write would run past the end of its target block.
    WriteOutOfBlock {
        /// Offset within the block where the write starts.
        offset: u64,
        /// Length of the write.
        len: u64,
        /// The block's reserved size.
        block: u64,
    },
    /// The heap's root pointer does not lead to a ptx descriptor (the
    /// pool was never created, or the root was overwritten).
    NoDescriptor,
    /// The heap already carries a root pointer; refusing to overwrite it
    /// with a fresh descriptor.
    RootOccupied,
    /// The transaction closure signalled failure; the transaction was
    /// rolled back. Carries the application's message.
    Aborted(String),
}

impl std::fmt::Display for PtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtxError::Heap(e) => write!(f, "allocator error: {e}"),
            PtxError::UndoFull { capacity } => {
                write!(f, "transaction undo journal full ({capacity} bytes)")
            }
            PtxError::JournalFull { max } => {
                write!(f, "transaction journal full ({max} allocations/frees)")
            }
            PtxError::WriteOutOfBlock { offset, len, block } => {
                write!(f, "write [{offset}, {}) runs past the {block}-byte block", offset + len)
            }
            PtxError::NoDescriptor => f.write_str("heap root does not lead to a ptx descriptor"),
            PtxError::RootOccupied => {
                f.write_str("heap root already set; open the pool instead of creating it")
            }
            PtxError::Aborted(why) => write!(f, "transaction aborted: {why}"),
        }
    }
}

impl std::error::Error for PtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtxError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PoseidonError> for PtxError {
    fn from(err: PoseidonError) -> Self {
        PtxError::Heap(err)
    }
}

impl From<pmem::PmemError> for PtxError {
    fn from(err: pmem::PmemError) -> Self {
        // Route through Poseidon's conversion so uncorrectable media
        // errors keep their typed `MediaError` variant instead of
        // degenerating into a generic device failure.
        PtxError::Heap(PoseidonError::from(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e = PtxError::from(PoseidonError::ZeroSize);
        assert!(e.to_string().contains("allocator"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(PtxError::WriteOutOfBlock { offset: 8, len: 16, block: 16 }
            .to_string()
            .contains("runs past"));
    }
}
