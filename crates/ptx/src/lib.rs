//! # ptx — durable persistent transactions over Poseidon
//!
//! The Poseidon paper motivates *transactional allocation* with the
//! persistent-transaction programming model (§2.2, citing Romulus,
//! DudeTM, TimeStone, Mnemosyne): inside a persistent transaction, every
//! NVMM write — allocations, user data, frees — must reach persistence
//! all-or-nothing. The allocator contributes its micro log; this crate
//! builds the rest of the model on top of it:
//!
//! * **Transactional allocation** — [`Ptx::alloc`] uses the heap's micro
//!   log *and* the pool's own allocation journal, so allocations of an
//!   uncommitted transaction are reclaimed whatever instant the crash
//!   hits.
//! * **Undo-logged user writes** — [`Ptx::write`] journals the
//!   overwritten bytes before mutating them; an abort or crash restores
//!   them exactly.
//! * **Deferred frees** — [`Ptx::free`] only records an intent; the block
//!   is released after the commit point, so an aborted transaction never
//!   loses data it still references.
//! * **A transactional root pointer** — [`Ptx::set_root`] participates in
//!   the same all-or-nothing scope.
//!
//! The pool's persistent descriptor lives in a block allocated from the
//! heap itself and anchored at the heap's root pointer; it holds
//! [`TX_CONTEXTS`] independent transaction contexts (state word +
//! journals each), so that many transactions run concurrently — like
//! PMDK's per-thread transactions. Applications store *their* root
//! through [`PtxPool::root`]. Recovery ([`PtxPool::open`]) is
//! idempotent: every context crash-interrupted before its commit point
//! rolls back, after it rolls forward.
//!
//! # Example
//!
//! ```
//! use pmem::{DeviceConfig, PmemDevice};
//! use poseidon::{HeapConfig, PoseidonHeap};
//! use ptx::PtxPool;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), ptx::PtxError> {
//! let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
//! let heap = Arc::new(PoseidonHeap::open(dev, HeapConfig::new().with_subheaps(2))?);
//! let pool = PtxPool::create(heap)?;
//!
//! // Allocate a node and publish it at the root, atomically.
//! let node = pool.run(|tx| {
//!     let node = tx.alloc(64)?;
//!     tx.write_pod(node, 0, &42u64)?;
//!     tx.set_root(node)?;
//!     Ok(node)
//! })?;
//!
//! assert_eq!(pool.root()?, node);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod pool;

pub use error::PtxError;
pub use pool::{Ptx, PtxPool, PtxRecovery, TX_CONTEXTS};
