//! Non-poisoning lock wrappers and cache-line padding.
//!
//! The workspace's locks guard in-memory *simulation* state (the modelled
//! cache, the sparse store, benchmark slot arrays). A panicking thread
//! does not make that state less valid than the crash simulation already
//! assumes, so poisoning is pure noise here: these wrappers recover the
//! guard from a [`std::sync::PoisonError`] instead of propagating it,
//! giving `parking_lot`-style `lock()` / `read()` / `write()` call sites.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poisoning from a
    /// previously panicked holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()` / `write()` never return poison
/// errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until no writer holds the
    /// lock. Poisoning is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquires exclusive write access. Poisoning is ignored.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Pads and aligns `T` to 128 bytes so neighbouring values never share a
/// cache line (128 rather than 64 to defeat adjacent-line prefetching,
/// matching what striped counters need to avoid false sharing).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would error here; ours recovers the guard.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(m.try_lock().map(|g| *g), Some(8));
    }

    #[test]
    fn rwlock_allows_concurrent_readers_and_exclusive_writers() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() += 5;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn rwlock_survives_a_panicked_writer() {
        let l = Arc::new(RwLock::new(1u64));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn cache_padded_is_at_least_a_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 64);
        // Neighbouring array elements land on distinct lines.
        let pair = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*pair[0] as *const u64 as usize;
        let b = &*pair[1] as *const u64 as usize;
        assert!(b - a >= 64, "padded neighbours {a:#x} and {b:#x} share a line");
        assert_eq!(pair[1].into_inner(), 1);
    }
}
