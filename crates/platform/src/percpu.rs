//! Per-CPU slot array: one cache-padded, CAS-claimed slot per CPU.
//!
//! The substrate for transient per-CPU caches: a thread claims the slot
//! for its current CPU with a single `compare_exchange` on a `busy` flag,
//! works on the contents through a closure, and releases the flag on the
//! way out. Claiming never blocks — if the slot is taken (the thread was
//! migrated mid-operation, or a sibling hyper-thread got there first) the
//! caller falls back to a shared structure instead of spinning.
//!
//! The slot array is fixed at construction; each slot lives on its own
//! cache-line pair (via [`crate::sync::CachePadded`]) so two CPUs hammering
//! adjacent slots never false-share.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::sync::CachePadded;

struct Slot<T> {
    busy: AtomicBool,
    value: UnsafeCell<T>,
}

/// A fixed array of CAS-claimed per-CPU slots holding `T`.
pub struct PerCpuSlots<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
}

// Safety: a slot's value is only ever reached through `try_with` (which
// enforces exclusive access via the `busy` flag with acquire/release
// ordering) or through `&mut self` methods (exclusive by the borrow).
unsafe impl<T: Send> Sync for PerCpuSlots<T> {}
unsafe impl<T: Send> Send for PerCpuSlots<T> {}

impl<T> PerCpuSlots<T> {
    /// Creates `n` slots, initialising slot `i` with `init(i)`.
    pub fn new(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        let slots = (0..n)
            .map(|i| CachePadded::new(Slot { busy: AtomicBool::new(false), value: UnsafeCell::new(init(i)) }))
            .collect();
        Self { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with exclusive access to slot `idx`, or returns `None`
    /// without blocking if the slot is currently claimed (or out of
    /// range). The claim is a single CAS; there is no queueing and no
    /// spinning.
    pub fn try_with<R>(&self, idx: usize, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let slot = self.slots.get(idx)?;
        if slot.busy.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_err() {
            return None;
        }
        // Safety: the CAS above grants exclusive access until `busy` is
        // released below.
        let result = f(unsafe { &mut *slot.value.get() });
        slot.busy.store(false, Ordering::Release);
        Some(result)
    }

    /// Iterates every slot mutably. Exclusive access comes from the
    /// `&mut self` borrow, so busy flags are irrelevant here — used when
    /// tearing the structure down (e.g. draining caches on clean close).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|slot| slot.value.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn slots_initialise_per_index() {
        let slots = PerCpuSlots::new(4, |i| i * 10);
        for i in 0..4 {
            assert_eq!(slots.try_with(i, |v| *v), Some(i * 10));
        }
        assert_eq!(slots.len(), 4);
        assert!(!slots.is_empty());
    }

    #[test]
    fn out_of_range_index_is_none() {
        let slots = PerCpuSlots::new(2, |_| 0u64);
        assert_eq!(slots.try_with(2, |v| *v), None);
    }

    #[test]
    fn claimed_slot_is_skipped_not_blocked() {
        let slots = PerCpuSlots::new(1, |_| 0u64);
        let reentry = slots.try_with(0, |_| {
            // The slot is busy while we hold it: a nested claim must fail
            // immediately rather than deadlock.
            slots.try_with(0, |v| *v)
        });
        assert_eq!(reentry, Some(None));
        // Released on the way out.
        assert_eq!(slots.try_with(0, |v| *v), Some(0));
    }

    #[test]
    fn mutations_persist_across_claims() {
        let slots = PerCpuSlots::new(2, |_| Vec::<u64>::new());
        slots.try_with(1, |v| v.push(7)).unwrap();
        slots.try_with(1, |v| v.push(8)).unwrap();
        assert_eq!(slots.try_with(1, |v| v.clone()), Some(vec![7, 8]));
    }

    #[test]
    fn iter_mut_reaches_every_slot() {
        let mut slots = PerCpuSlots::new(3, |i| i);
        let total: usize = slots.iter_mut().map(|v| *v).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        let slots = std::sync::Arc::new(PerCpuSlots::new(1, |_| 0u64));
        let inside = std::sync::Arc::new(AtomicUsize::new(0));
        let max_inside = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let slots = slots.clone();
            let inside = inside.clone();
            let max_inside = max_inside.clone();
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0u64;
                for _ in 0..10_000 {
                    if slots
                        .try_with(0, |v| {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            max_inside.fetch_max(now, Ordering::SeqCst);
                            *v += 1;
                            inside.fetch_sub(1, Ordering::SeqCst);
                        })
                        .is_some()
                    {
                        claimed += 1;
                    }
                }
                claimed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(max_inside.load(Ordering::SeqCst), 1, "two threads entered the same slot");
        assert_eq!(slots.try_with(0, |v| *v), Some(total));
    }
}
