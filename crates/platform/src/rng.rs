//! Seeded, deterministic pseudo-random generation.
//!
//! One [`Rng`] per thread, seeded explicitly: a workload's op stream is a
//! pure function of its seed, so every benchmark run and every property
//! test is reproducible bit-for-bit. The core is the xorshift64 generator
//! (shifts 13/7/17) the workload suite has always used — kept identical
//! so op-stream digests are stable across the dependency refactor.

/// A deterministic xorshift64 generator.
///
/// Not cryptographic; statistically solid for workload generation and
/// property-test case selection.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator (0 is remapped to a fixed odd constant, since
    /// xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Rng {
        Rng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next pseudo-random u64.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift method with rejection (Lemire 2019,
    /// "Fast Random Integer Generation in an Interval"): the raw draw is
    /// widened to `u128`, multiplied by `bound`, and the high 64 bits are
    /// the result; draws landing in the short final partial interval are
    /// rejected and redrawn, so every value in `[0, bound)` is exactly
    /// equally likely. The previous `next_u64() % bound` carried modulo
    /// bias (up to 2x over-representation of low values for bounds near
    /// the top of the range), skewing every workload mix ratio and
    /// shuffle built on it. The underlying xorshift64 stream is
    /// unchanged; only the mapping from raw draws to bounded values
    /// differs.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let mut m = self.next_u64() as u128 * bound as u128;
        if (m as u64) < bound {
            // 2^64 mod bound, computed without u128 division.
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = self.next_u64() as u128 * bound as u128;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range {range:?}");
        range.start + self.below(range.end - range.start)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Splits off an independent generator (for handing a derived stream
    /// to another thread without sharing state).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

/// A 64-bit FNV-1a digest of a value stream — used by the repro harness
/// to fingerprint workload op streams, so RNG changes that would silently
/// alter a benchmark's operation mix are caught as a digest change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDigest(u64);

impl StreamDigest {
    /// Starts a fresh digest (FNV-1a offset basis).
    pub fn new() -> StreamDigest {
        StreamDigest(0xCBF2_9CE4_8422_2325)
    }

    /// Folds one value into the digest.
    pub fn update(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Returns the digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for StreamDigest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_gives_identical_sequences() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // And through every derived API.
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut va: Vec<u64> = (0..64).collect();
        let mut vb: Vec<u64> = (0..64).collect();
        a.shuffle(&mut va);
        b.shuffle(&mut vb);
        assert_eq!(va, vb);
        let (mut ba, mut bb) = ([0u8; 33], [0u8; 33]);
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
        assert_eq!(a.gen_range(10..999), b.gen_range(10..999));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let distinct = (0..100).filter(|_| a.next_u64() != b.next_u64()).count();
        assert!(distinct > 90);
    }

    #[test]
    fn matches_the_historical_workload_stream() {
        // The exact first values the pre-refactor `workloads::Xorshift`
        // produced for seed 1 — the workload determinism contract.
        let mut rng = Rng::new(1);
        assert_eq!(rng.next_u64(), 0x0000_0000_4082_2041);
        let mut rng = Rng::new(0x1A25_0000_0000_0001);
        let first = rng.next_u64();
        let mut again = Rng::new(0x1A25_0000_0000_0001);
        assert_eq!(first, again.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = Rng::new(99);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
            let v = rng.gen_range(5..8);
            assert!((5..8).contains(&v));
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_free_of_modulo_bias() {
        // bound = 3 * 2^62: under `next_u64() % bound`, raw draws in
        // [0, 2^62) and [bound, bound + 2^62) both map below 2^62, so
        // results < 2^62 carry probability 1/2 instead of 1/3. Lemire's
        // method must put ~1/3 of the mass there.
        let bound = 3u64 << 62;
        let cut = 1u64 << 62;
        let mut rng = Rng::new(0xB1A5);
        let draws = 30_000;
        let below_cut = (0..draws).filter(|_| rng.below(bound) < cut).count();
        let frac = below_cut as f64 / draws as f64;
        assert!(
            (0.30..0.37).contains(&frac),
            "fraction below bound/3 was {frac:.4}; ~0.333 expected, ~0.5 under modulo bias"
        );
    }

    #[test]
    fn below_is_uniform_on_small_bounds() {
        // Non-power-of-two bound, chi-square-lite: every residue within
        // 5% of the expected share.
        let mut rng = Rng::new(0x5EED);
        let bound = 10u64;
        let draws = 200_000u64;
        let mut counts = [0u64; 10];
        for _ in 0..draws {
            counts[rng.below(bound) as usize] += 1;
        }
        let expected = draws / bound;
        for (v, &n) in counts.iter().enumerate() {
            let dev = (n as f64 / expected as f64 - 1.0).abs();
            assert!(dev < 0.05, "value {v} drawn {n} times (expected ~{expected}, deviation {dev:.3})");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(3);
        let mut v: Vec<u64> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = Rng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = StreamDigest::new();
        a.update(1);
        a.update(2);
        let mut b = StreamDigest::new();
        b.update(2);
        b.update(1);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(StreamDigest::new().finish(), a.finish());
    }
}
