//! A minimal timing harness for `cargo bench`-compatible harness-less
//! binaries.
//!
//! Each benchmark is timed per invocation: after `warmup` unmeasured
//! calls, `sample_size` calls are measured individually and the median,
//! p95, and minimum are reported (plus element throughput at the median
//! when a [`Group::throughput_elements`] is set). No statistics beyond
//! order statistics: on a noisy shared host, the median is the robust
//! centre and p95 the honest tail.
//!
//! ```no_run
//! let harness = platform::bench::Harness::from_args();
//! let mut group = harness.group("fig6_micro");
//! group.sample_size(10).throughput_elements(8_000);
//! group.bench("poseidon/256B", || {
//!     // one benchmark iteration
//! });
//! group.finish();
//! ```
//!
//! Invoked by `cargo bench` (which passes `--bench`, ignored here) or
//! directly; a positional argument filters benchmark ids by substring.

use std::time::{Duration, Instant};

/// Command-line context shared by every group in one bench binary.
#[derive(Debug, Clone, Default)]
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Parses `std::env::args`: flags (`--bench`, `--exact`, ...) are
    /// ignored for `cargo bench` compatibility; the first positional
    /// argument becomes a substring filter on benchmark ids.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Starts a named benchmark group (one figure/panel).
    pub fn group(&self, name: &str) -> Group {
        println!("\n## bench group: {name}");
        println!("{:<40} {:>12} {:>12} {:>12} {:>12}", "benchmark", "median", "p95", "min", "Melem/s");
        Group {
            filter: self.filter.clone(),
            name: name.to_string(),
            sample_size: 20,
            warmup: 1,
            throughput: None,
            ran: 0,
        }
    }
}

/// One named group of benchmarks, printed as a table.
#[derive(Debug)]
pub struct Group {
    filter: Option<String>,
    name: String,
    sample_size: u32,
    warmup: u32,
    throughput: Option<u64>,
    ran: u32,
}

impl Group {
    /// Sets the number of measured samples per benchmark (default 20).
    pub fn sample_size(&mut self, samples: u32) -> &mut Group {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the number of unmeasured warmup invocations (default 1).
    pub fn warmup(&mut self, warmup: u32) -> &mut Group {
        self.warmup = warmup;
        self
    }

    /// Declares that each invocation processes `elements` items, enabling
    /// the Melem/s column. Applies to subsequent [`bench`](Group::bench)
    /// calls until changed.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Group {
        self.throughput = Some(elements);
        self
    }

    /// Runs and reports one benchmark. `routine` is invoked `warmup`
    /// unmeasured times, then `sample_size` measured times.
    pub fn bench(&mut self, id: &str, mut routine: impl FnMut()) {
        if let Some(filter) = &self.filter {
            let full = format!("{}/{id}", self.name);
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        for _ in 0..self.warmup {
            routine();
        }
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                routine();
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let report = Report::from_sorted(&samples, self.throughput);
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>12}",
            id,
            format_ns(report.median_ns),
            format_ns(report.p95_ns),
            format_ns(report.min_ns),
            report.melem_per_sec.map(|m| format!("{m:.3}")).unwrap_or_else(|| "-".to_string()),
        );
        self.ran += 1;
    }

    /// Finishes the group (prints a trailer so truncated output is
    /// detectable in CI logs).
    pub fn finish(self) {
        println!("group {}: {} benchmark(s) run", self.name, self.ran);
    }
}

/// Order statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Median sample, nanoseconds.
    pub median_ns: u64,
    /// 95th-percentile sample, nanoseconds.
    pub p95_ns: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Element throughput at the median, if a throughput was declared.
    pub melem_per_sec: Option<f64>,
}

impl Report {
    /// Builds a report from ascending-sorted samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_sorted(samples: &[Duration], elements: Option<u64>) -> Report {
        assert!(!samples.is_empty());
        let nth = |q: f64| -> u64 {
            let index = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[index].as_nanos() as u64
        };
        let median_ns = nth(0.5);
        Report {
            median_ns,
            p95_ns: nth(0.95),
            min_ns: nth(0.0),
            melem_per_sec: elements.map(|e| e as f64 / median_ns.max(1) as f64 * 1e3),
        }
    }
}

fn format_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_percentiles() {
        let samples: Vec<Duration> = (1..=100u64).map(Duration::from_nanos).collect();
        let r = Report::from_sorted(&samples, Some(1000));
        assert_eq!(r.min_ns, 1);
        assert_eq!(r.median_ns, 51);
        assert_eq!(r.p95_ns, 95);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        // 1000 elements / 51 ns ≈ 19.6 Gelem/s → 19607 Melem/s.
        let m = r.melem_per_sec.unwrap();
        assert!((m - 1000.0 / 51.0 * 1e3).abs() < 1e-6);
    }

    #[test]
    fn single_sample_report() {
        let r = Report::from_sorted(&[Duration::from_nanos(500)], None);
        assert_eq!(r.median_ns, 500);
        assert_eq!(r.p95_ns, 500);
        assert_eq!(r.melem_per_sec, None);
    }

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let harness = Harness::default();
        let mut group = harness.group("test_group");
        let count = std::cell::Cell::new(0u32);
        group.sample_size(5).warmup(2);
        group.bench("counting", || count.set(count.get() + 1));
        assert_eq!(count.get(), 7);
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let harness = Harness { filter: Some("keep_me".to_string()) };
        let mut group = harness.group("g");
        let ran = std::cell::Cell::new(false);
        group.bench("skip_this_bench", || panic!("must not run"));
        group.bench("keep_me_bench", || ran.set(true));
        assert!(ran.get());
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(512), "512 ns");
        assert_eq!(format_ns(51_200), "51.20 us");
        assert_eq!(format_ns(51_200_000), "51.20 ms");
        assert_eq!(format_ns(51_200_000_000), "51.20 s");
    }
}
