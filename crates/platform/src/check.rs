//! A small property-testing harness.
//!
//! Replaces the `proptest` suites with the subset this workspace uses:
//! seeded case generation, an iteration budget, failing-seed reporting,
//! and shrink-by-halving of the input size budget.
//!
//! ```
//! use platform::check::{check, Config};
//!
//! check("addition_commutes", Config::cases(64), |g| {
//!     let a = g.u64(0..1 << 20);
//!     let b = g.u64(0..1 << 20);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Each case draws its inputs from a [`Gen`] seeded deterministically
//! from the test name and case index, so runs are reproducible without
//! any state files. When a case fails (panics), the harness re-runs the
//! same case seed with the collection size budget repeatedly halved and
//! reports the smallest configuration that still fails, plus the
//! environment variables to replay it:
//!
//! * `PLATFORM_CHECK_SEED=<hex>` — replay exactly one case seed.
//! * `PLATFORM_CHECK_CASES=<n>` — override every harness's case budget
//!   (e.g. crank to 10000 for a soak run).

use crate::rng::Rng;

/// Budget and seeding for one [`check`] call.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases to run.
    pub cases: u32,
    /// Base seed; case `i` derives its seed from this and `i`.
    pub seed: u64,
}

impl Config {
    /// A config running `cases` cases with the default base seed.
    pub fn cases(cases: u32) -> Config {
        Config { cases, seed: 0x5EED_0000_0000_0000 }
    }

    /// Overrides the base seed.
    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

/// The per-case input generator handed to the property closure.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    /// Size budget in (0, 1]: scales collection lengths during shrinking.
    size: f64,
}

impl Gen {
    fn new(seed: u64, size: f64) -> Gen {
        Gen { rng: Rng::new(seed), size }
    }

    /// Uniform u64 in `[range.start, range.end)`.
    pub fn u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// Uniform usize in `[range.start, range.end)`.
    pub fn usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.rng.gen_range(range.start as u64..range.end as u64) as usize
    }

    /// Uniform u8 in `[range.start, range.end)`.
    pub fn u8(&mut self, range: std::ops::Range<u8>) -> u8 {
        self.rng.gen_range(range.start as u64..range.end as u64) as u8
    }

    /// A u64 drawn from the full 64-bit range (`any::<u64>()`).
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A u8 drawn from the full range.
    pub fn any_u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// A usize drawn from the full range.
    pub fn any_usize(&mut self) -> usize {
        self.rng.next_u64() as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Picks an index with the given relative weights (the `prop_oneof!`
    /// replacement): `weighted(&[4, 2, 1])` returns 0 four times as often
    /// as 2.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted() needs a non-empty, non-zero weight list");
        let mut pick = self.rng.below(total);
        for (index, &w) in weights.iter().enumerate() {
            if pick < w as u64 {
                return index;
            }
            pick -= w as u64;
        }
        unreachable!("pick < total by construction")
    }

    /// A collection length in `[range.start, range.end)`, scaled by the
    /// current shrink budget — this is the knob shrink-by-halving turns.
    pub fn len(&mut self, range: std::ops::Range<usize>) -> usize {
        let lo = range.start as u64;
        let hi = range.end as u64;
        assert!(lo < hi, "len() on empty range");
        let span = ((hi - lo - 1) as f64 * self.size).floor() as u64;
        (lo + if span == 0 { 0 } else { self.rng.below(span + 1) }) as usize
    }

    /// A vector of `len(len_range)` elements produced by `element`.
    pub fn vec<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.len(len_range);
        (0..n).map(|_| element(self)).collect()
    }
}

/// Outcome detail of a failing case, for the panic message.
struct Failure {
    case: u32,
    seed: u64,
    size: f64,
    message: String,
}

/// Runs `prop` against `config.cases` generated cases.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails, after
/// shrinking, with the failing seed and replay instructions.
pub fn check(name: &str, config: Config, prop: impl Fn(&mut Gen)) {
    let cases = match std::env::var("PLATFORM_CHECK_CASES") {
        Ok(v) => v.parse().unwrap_or(config.cases),
        Err(_) => config.cases,
    };
    // Replay mode: exactly one case seed, full size.
    if let Ok(v) = std::env::var("PLATFORM_CHECK_SEED") {
        let seed = u64::from_str_radix(v.trim_start_matches("0x"), 16)
            .unwrap_or_else(|_| panic!("PLATFORM_CHECK_SEED {v:?} is not hex"));
        let mut gen = Gen::new(seed, 1.0);
        prop(&mut gen);
        return;
    }
    let base = config.seed ^ fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = splitmix64(base.wrapping_add(case as u64));
        if let Some(message) = run_case(&prop, seed, 1.0) {
            let failure = shrink(&prop, case, seed, message);
            panic!(
                "property {name:?} failed at case {}/{cases}\n  seed: {:#018x} (size budget {:.3})\n  {}\n  replay: PLATFORM_CHECK_SEED={:#x} cargo test {name}",
                failure.case, failure.seed, failure.size, failure.message, failure.seed,
            );
        }
    }
}

/// Runs one case, returning the panic message if it failed.
fn run_case(prop: &impl Fn(&mut Gen), seed: u64, size: f64) -> Option<String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut gen = Gen::new(seed, size);
        prop(&mut gen);
    }));
    result.err().map(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Shrink-by-halving: re-runs the failing seed with the size budget
/// halved while the failure persists; returns the smallest still-failing
/// configuration.
fn shrink(prop: &impl Fn(&mut Gen), case: u32, seed: u64, message: String) -> Failure {
    // Quiet the default panic hook while shrinking re-panics on purpose.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut best = Failure { case, seed, size: 1.0, message };
    let mut size = 0.5;
    while size >= 1.0 / 128.0 {
        match run_case(prop, seed, size) {
            Some(message) => {
                best = Failure { case, seed, size, message };
                size /= 2.0;
            }
            None => break,
        }
    }
    std::panic::set_hook(hook);
    best
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("always_true", Config::cases(37), |g| {
            counter.set(counter.get() + 1);
            let v = g.vec(1..50, |g| g.u64(0..100));
            assert!(v.iter().all(|&x| x < 100));
            assert!(!v.is_empty());
        });
        assert_eq!(counter.get(), 37);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("too_long_vectors_fail", Config::cases(50), |g| {
                let v = g.vec(1..200, |g| g.any_u64());
                assert!(v.len() < 40, "vector of {} elements", v.len());
            });
        });
        let message = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(message.contains("seed:"), "no seed in: {message}");
        assert!(message.contains("PLATFORM_CHECK_SEED="), "no replay line in: {message}");
        // Shrinking halved the size budget below 1.0.
        assert!(message.contains("size budget 0."), "no shrink evidence in: {message}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            // Mutable borrow through a RefCell-free closure: use Cell trick.
            let cell = std::cell::RefCell::new(&mut seen);
            check("determinism_probe", Config::cases(10), |g| {
                cell.borrow_mut().push(g.any_u64());
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut gen = Gen::new(123, 1.0);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[gen.weighted(&[8, 1, 1])] += 1;
        }
        assert!(counts[0] > counts[1] * 4, "weights ignored: {counts:?}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn len_respects_bounds_at_every_size() {
        for &size in &[1.0, 0.5, 0.01] {
            let mut gen = Gen::new(9, size);
            for _ in 0..1000 {
                let n = gen.len(3..17);
                assert!((3..17).contains(&n), "len {n} escaped 3..17 at size {size}");
            }
        }
        // Fully shrunk: pinned to the minimum.
        let mut gen = Gen::new(9, 0.0);
        assert_eq!(gen.len(5..100), 5);
    }
}
