//! The in-tree platform layer.
//!
//! Every crate in this workspace used to pull six crates.io dependencies
//! (`parking_lot`, `crossbeam`, `rand`, `proptest`, `criterion`, `libc`)
//! for a small slice of each crate's surface. This crate owns those
//! slices directly, on top of `std` alone, so the workspace builds and
//! tests hermetically — and so the primitives the measurement harness
//! depends on (lock guards, per-thread CPU clocks, deterministic RNG
//! streams) are ours to instrument:
//!
//! * [`sync`] — non-poisoning [`Mutex`](sync::Mutex) /
//!   [`RwLock`](sync::RwLock) wrappers and a cache-line-aligned
//!   [`CachePadded`](sync::CachePadded) wrapper.
//! * [`thread`] — scoped spawning ([`thread::scope`]) and the
//!   thread-CPU-time clock ([`thread::cpu_time_ns`]) that lock-hold
//!   accounting and throughput projection are built on.
//! * [`rng`] — a seeded xorshift generator ([`rng::Rng`]) with
//!   `gen_range` / `shuffle` / `fill` APIs; workload op streams are a
//!   pure function of the seed.
//! * [`check`] — a property-testing harness: seeded case generation, an
//!   iteration budget, failing-seed reporting, and shrink-by-halving of
//!   the input size budget.
//! * [`bench`] — a minimal timing harness (warmup, N samples,
//!   median/p95) for `cargo bench`-compatible harness-less binaries.
//! * [`percpu`] — a fixed array of CAS-claimed, cache-padded per-CPU
//!   slots ([`percpu::PerCpuSlots`]), the substrate for transient
//!   per-CPU caches.
//! * [`lockfree`] — bounded lock-free value pools
//!   ([`lockfree::SlotPool`]), ABA-free by storing values rather than
//!   nodes.

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod lockfree;
pub mod percpu;
pub mod rng;
pub mod sync;
pub mod thread;
