//! Bounded lock-free pools of plain values.
//!
//! [`SlotPool`] is the transfer-cache substrate: a fixed array of atomic
//! words where `0` means "empty" and any other word is a stored value
//! (biased by one so value `0` is representable). Push scans for an empty
//! slot and CASes the value in; pop scans for a full slot and CASes it
//! back to empty. Because slots hold the *value itself* rather than a
//! pointer to a node, there is no ABA hazard and no reclamation problem —
//! the classic Treiber-stack pitfalls simply do not arise.
//!
//! Both operations are O(capacity) scans in the worst case; pools are
//! sized small (tens of entries) so the scan stays within a few cache
//! lines. `push` fails on a full pool and `pop` returns `None` on an
//! empty one — callers treat both as "fall through to the slower tier".

use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded lock-free pool of `u64` values (values must be below
/// `u64::MAX`; they are stored biased by one so that `0` marks an empty
/// slot).
pub struct SlotPool {
    slots: Box<[AtomicU64]>,
}

impl SlotPool {
    /// Creates an empty pool with room for `capacity` values.
    pub fn new(capacity: usize) -> Self {
        Self { slots: (0..capacity).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts `value`; returns `Err(value)` if every slot is occupied.
    pub fn push(&self, value: u64) -> Result<(), u64> {
        debug_assert!(value < u64::MAX);
        let stored = value + 1;
        for slot in self.slots.iter() {
            if slot.load(Ordering::Relaxed) == 0
                && slot.compare_exchange(0, stored, Ordering::Release, Ordering::Relaxed).is_ok()
            {
                return Ok(());
            }
        }
        Err(value)
    }

    /// Removes and returns some stored value, or `None` if the pool is
    /// empty.
    pub fn pop(&self) -> Option<u64> {
        for slot in self.slots.iter() {
            let current = slot.load(Ordering::Relaxed);
            if current != 0 && slot.compare_exchange(current, 0, Ordering::Acquire, Ordering::Relaxed).is_ok()
            {
                return Some(current - 1);
            }
        }
        None
    }

    /// Pops every currently stored value into `out`. Concurrent pushes
    /// may land behind the scan; this is a best-effort drain, made exact
    /// only by external quiescence (e.g. clean close).
    pub fn drain_into(&self, out: &mut Vec<u64>) {
        for slot in self.slots.iter() {
            let current = slot.swap(0, Ordering::Acquire);
            if current != 0 {
                out.push(current - 1);
            }
        }
    }

    /// Approximate number of stored values (racy under concurrency).
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.load(Ordering::Relaxed) != 0).count()
    }

    /// Whether the pool currently looks empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip_including_zero() {
        let pool = SlotPool::new(4);
        pool.push(0).unwrap();
        pool.push(41).unwrap();
        let mut got = vec![pool.pop().unwrap(), pool.pop().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![0, 41]);
        assert_eq!(pool.pop(), None);
    }

    #[test]
    fn full_pool_rejects_push() {
        let pool = SlotPool::new(2);
        pool.push(1).unwrap();
        pool.push(2).unwrap();
        assert_eq!(pool.push(3), Err(3));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn drain_empties_the_pool() {
        let pool = SlotPool::new(8);
        for v in 10..15 {
            pool.push(v).unwrap();
        }
        let mut out = Vec::new();
        pool.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_values() {
        let pool = std::sync::Arc::new(SlotPool::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut kept = Vec::new();
                for i in 0..1000u64 {
                    let v = t * 1_000_000 + i;
                    if pool.push(v).is_err() {
                        kept.push(v);
                    }
                    if i % 3 == 0 {
                        if let Some(got) = pool.pop() {
                            kept.push(got);
                        }
                    }
                }
                kept
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let mut rest = Vec::new();
        pool.drain_into(&mut rest);
        all.extend(rest);
        all.sort_unstable();
        all.dedup();
        // Every pushed value is either still in the pool or was popped or
        // rejected exactly once: 4 threads × 1000 distinct values.
        assert_eq!(all.len(), 4000);
    }
}
