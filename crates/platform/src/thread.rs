//! Scoped thread spawning and the per-thread CPU clock.
//!
//! [`scope`] replaces `crossbeam::thread::scope`: it delegates to
//! [`std::thread::scope`], which guarantees every spawned thread is
//! joined before the scope returns (so borrows of stack data are sound)
//! and propagates worker panics to the caller.
//!
//! [`cpu_time_ns`] is the clock the measurement stack is built on: lock
//! hold-time accounting (`pmem::contention`), per-worker work
//! accounting in the benchmark driver, and the work-span throughput
//! projection all need CPU time (immune to preemption), which `std` does
//! not expose. On Linux it is a direct `clock_gettime` syscall through
//! the C runtime `std` already links — no `libc` crate needed.

pub use std::thread::{scope, Scope, ScopedJoinHandle};

#[cfg(target_os = "linux")]
mod imp {
    /// Matches the kernel/glibc `struct timespec` on 64-bit Linux.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// `CLOCK_THREAD_CPUTIME_ID` from `<time.h>`.
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    pub fn cpu_time_ns() -> u64 {
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: `ts` is a valid out-pointer; the clock id is a constant
        // every Linux supports.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::time::Instant;

    /// Fallback for platforms without a thread CPU clock: monotonic wall
    /// time from first use. Lock-hold measurements then include
    /// preemption, which only degrades projection quality, not
    /// correctness.
    pub fn cpu_time_ns() -> u64 {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Nanoseconds of CPU time consumed by the calling thread
/// (`CLOCK_THREAD_CPUTIME_ID`). Unlike wall time, this does not advance
/// while the thread is blocked or preempted, so lock-hold measurements
/// stay accurate even when benchmark threads oversubscribe the host's
/// cores. Returns 0 if the clock is unavailable.
pub fn cpu_time_ns() -> u64 {
    imp::cpu_time_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_propagates_results_through_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move || x * 10)).collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        });
        assert_eq!(total, 100);
        drop(data); // still owned here: the scope borrowed it
    }

    #[test]
    fn scope_joins_workers_before_returning() {
        let mut counter = 0u64;
        scope(|s| {
            let c = &mut counter;
            s.spawn(move || {
                *c = 42;
            });
        });
        // The write is visible: the thread completed inside the scope.
        assert_eq!(counter, 42);
    }

    #[test]
    fn cpu_clock_is_monotonic_and_advances_under_load() {
        let t0 = cpu_time_ns();
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i ^ x);
        }
        std::hint::black_box(x);
        let t1 = cpu_time_ns();
        assert!(t1 >= t0, "clock went backwards: {t0} -> {t1}");
        assert!(t1 > t0, "clock did not advance over 2M iterations of work");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn cpu_clock_does_not_advance_while_sleeping() {
        // CPU time must be (nearly) flat across a wall-clock sleep; allow
        // generous slack for the sleep/wake syscall path itself.
        let t0 = cpu_time_ns();
        std::thread::sleep(std::time::Duration::from_millis(120));
        let consumed = cpu_time_ns() - t0;
        assert!(consumed < 40_000_000, "thread CPU clock advanced {consumed} ns across a 120 ms sleep");
    }
}
