//! Smoke test: `repro fig3` at CI scale must show Poseidon rejecting the
//! paper's metadata attacks while the PMDK simulation visibly corrupts.
//! Also pins the workload op-stream digests: two `repro digest` runs must
//! agree (determinism is part of the reproduction contract).

use std::process::Command;

fn run_repro(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("spawn repro binary");
    assert!(
        output.status.success(),
        "repro {args:?} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

#[test]
fn fig3_poseidon_rejects_attacks_while_pmdk_corrupts() {
    let out = run_repro(&["fig3"]);

    // Poseidon stops every attack.
    assert!(out.contains("MPK protection fault (store rejected)"), "overflow not rejected:\n{out}");
    assert!(out.contains("rejected as invalid free"), "forged free not rejected:\n{out}");
    assert!(out.contains("rejected as double free"), "double free not rejected:\n{out}");
    assert!(out.contains("audit clean — no metadata corruption"), "audit not clean:\n{out}");
    assert!(!out.contains("UNEXPECTED"), "an attack had an unexpected outcome:\n{out}");

    // The PMDK simulation, by design, corrupts: the overlap count and the
    // leak count on its lines must be non-zero.
    let overlaps: u64 = field_before(&out, "overlapping allocations");
    assert!(overlaps > 0, "pmdk overlap attack produced no overlaps:\n{out}");
    let leaked: u64 = field_before(&out, "chunks permanently leaked");
    assert!(leaked > 0, "pmdk shrink attack leaked nothing:\n{out}");
}

#[test]
fn digest_output_is_stable_across_runs() {
    let first = run_repro(&["digest"]);
    let second = run_repro(&["digest"]);
    assert!(first.contains("fnv1a-64"), "digest table missing:\n{first}");
    assert_eq!(digest_lines(&first), digest_lines(&second), "op-stream digests changed between runs");
    assert!(!digest_lines(&first).is_empty());
}

/// Extracts the number immediately preceding `marker` on its line.
fn field_before(out: &str, marker: &str) -> u64 {
    let line =
        out.lines().find(|l| l.contains(marker)).unwrap_or_else(|| panic!("no line with {marker:?}:\n{out}"));
    let prefix = line.split(marker).next().unwrap();
    prefix
        .split_whitespace()
        .last()
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("no count before {marker:?} in line {line:?}"))
}

fn digest_lines(out: &str) -> Vec<&str> {
    out.lines().filter(|l| l.contains("0x")).collect()
}
