//! Regenerates every table and figure of the Poseidon paper.
//!
//! ```text
//! repro [--full] [--threads N] <fig3|fig6|fig7|fig8|fig9|ablation|all>
//! ```
//!
//! Default is a quick, CI-scale run; `--full` uses paper-scale operation
//! counts (still on the simulated device, so absolute numbers differ from
//! the paper's testbed — EXPERIMENTS.md records the shape comparison).

use std::sync::Arc;
use std::time::Duration;

use bench::{bench_device, measure, print_panel, thread_sweep, Point};
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::alloc_api::{AllocatorKind, PersistentAllocator};
use workloads::{ackermann, kruskal, larson, latency, micro, nqueens, ycsb};

struct Options {
    full: bool,
    max_threads: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Sweep at least to 8 threads even on small hosts: with global-lock
    // designs, oversubscription exposes the same contention the paper's
    // 64-core sweep does (as throughput retention rather than speedup).
    let mut options = Options {
        full: false,
        max_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8).max(8),
    };
    let mut command = String::from("all");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => options.full = true,
            "--threads" => {
                options.max_threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid value for --threads"));
            }
            other if !other.starts_with('-') => command = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    println!(
        "# Poseidon reproduction harness — mode: {}, threads up to {}",
        if options.full { "full" } else { "quick" },
        options.max_threads
    );
    match command.as_str() {
        "digest" => digest(),
        "fig3" => fig3(),
        "fig6" => fig6(&options),
        "fig7" => fig7(&options),
        "fig8" => fig8(&options),
        "fig9" => fig9(&options),
        "ablation" => ablation(&options),
        "capacity" => capacity(&options),
        "all" => {
            fig3();
            fig6(&options);
            fig7(&options);
            fig8(&options);
            fig9(&options);
            ablation(&options);
            capacity(&options);
        }
        other => usage(&format!("unknown command {other}")),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: repro [--full] [--threads N] <digest|fig3|fig6|fig7|fig8|fig9|ablation|capacity|all>");
    std::process::exit(2)
}

// --------------------------------------------------------------- digests

/// Fingerprints the per-thread RNG streams each workload draws its
/// operations from. The digests are pure functions of the configured
/// seeds, so any change to the generator (or to per-thread seed
/// derivation) that would silently alter a benchmark's operation mix
/// shows up here as a digest change.
fn digest() {
    use platform::rng::StreamDigest;
    use workloads::Xorshift;

    const THREADS: u64 = 4;
    const DRAWS: u64 = 4096;
    println!("\n## Workload op-stream digests ({THREADS} threads x {DRAWS} draws)");
    println!("{:<12} {:>18} {:>20}", "stream", "seed", "fnv1a-64");
    // (workload, base seed, per-thread seed multiplier) — matches the
    // derivation inside each workload's worker loop.
    let streams: &[(&str, u64, u64)] = &[
        ("micro", 0xC0FFEE, 0x9E37),
        ("larson", 0x1A250, 0xABCD),
        ("ycsb-load", 0x9C5B, 0x51AB),
        ("ycsb-a", 0x9C5B, 0xE5E5),
    ];
    for &(name, seed, mix) in streams {
        let mut fold = StreamDigest::new();
        for thread in 0..THREADS {
            let mut rng = Xorshift::new(seed ^ (thread + 1).wrapping_mul(mix));
            for _ in 0..DRAWS {
                fold.update(rng.next_u64());
            }
        }
        println!("{:<12} {:>#18x} {:>#20x}", name, seed, fold.finish());
    }

    // Extent-table digest: a fixed sequence of huge allocations and
    // frees folds every offset first-fit hands out, so any change to
    // the huge region's split/coalesce policy or geometry shows up as
    // a digest change, alongside a summary of the resulting table.
    const HUGE_SEED: u64 = 0x4855_4745;
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(16)).expect("heap");
    let max = heap.layout().max_alloc();
    let mut fold = StreamDigest::new();
    let mut rng = Xorshift::new(HUGE_SEED);
    let mut live = Vec::new();
    for _ in 0..64 {
        if !live.is_empty() && (live.len() >= 5 || rng.below(3) == 0) {
            let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
            heap.free(victim).expect("huge free");
        } else {
            match heap.alloc(max + 1 + rng.below(4 << 20)) {
                Ok(ptr) => {
                    fold.update(heap.raw_offset(ptr).expect("raw offset"));
                    live.push(ptr);
                }
                // Deterministic fallback: fold the rejection itself.
                Err(poseidon::PoseidonError::NoSpace { .. }) => fold.update(u64::MAX),
                Err(e) => panic!("huge alloc: {e}"),
            }
        }
    }
    let huge = heap.huge_audit().expect("huge audit").expect("huge region");
    println!(
        "\n## Extent-table digest (64 huge ops over a {} MiB region)",
        heap.layout().huge_data_size() >> 20
    );
    println!("{:<12} {:>#18x} {:>#20x}", "huge-extent", HUGE_SEED, fold.finish());
    println!(
        "  extent table: {} allocated / {} free / {} quarantined extents, {} KiB live, largest free {} KiB",
        huge.alloc_extents,
        huge.free_extents,
        huge.quarantined_extents,
        huge.alloc_bytes >> 10,
        huge.largest_free >> 10
    );

    // Cache-behaviour digest: a fixed single-threaded alloc/free mix
    // through the transient cache. The hit/miss/refill/drain counters
    // are a pure function of the seed and the cache policy, so any
    // change to magazine sizing, the footprint gate, or refill batching
    // shows up here before it shows up as a benchmark regression.
    const CACHE_SEED: u64 = 0xCAC4E;
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
    let heap = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(1)).expect("heap");
    pmem::numa::set_current_cpu(0);
    let mut rng = Xorshift::new(CACHE_SEED);
    let mut live = Vec::new();
    for _ in 0..4096 {
        if !live.is_empty() && rng.below(2) == 0 {
            let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
            heap.free(victim).expect("cached free");
        } else if let Ok(ptr) = heap.alloc(1 + rng.below(4096)) {
            live.push(ptr);
        }
    }
    for ptr in live {
        heap.free(ptr).expect("drain free");
    }
    let profile = heap.contention_profile();
    let cache = profile[0].cache.expect("cache stats");
    println!("\n## Cache-behaviour digest (4096 mixed ops <= 4 KiB, seed {CACHE_SEED:#x})");
    println!(
        "  {} hits / {} misses / {} refills / {} drains — {:.1}% hit rate",
        cache.hits,
        cache.misses,
        cache.refills,
        cache.drains,
        100.0 * cache.hit_rate()
    );

    // Self-healing digest: a fixed fault-injection sequence — one
    // metadata line condemning a sub-heap wholesale, a spread of
    // user-data lines promoted at block granularity — driven through
    // two full scrubber passes. The folded health census is a pure
    // function of the seed and the healing policy, so any change to
    // quarantine granularity, scrubber order, or failover accounting
    // shows up here before it shows up as a broken recovery.
    const HEAL_SEED: u64 = 0x4EA1;
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(256 << 20)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(4)).expect("heap");
    let mut rng = Xorshift::new(HEAL_SEED);
    for cpu in 0..4usize {
        let _pin = pmem::numa::CpuPinGuard::pin(cpu);
        let mut live = Vec::new();
        for _ in 0..32 {
            live.push(heap.alloc(1 + rng.below(2048)).expect("populate"));
        }
        for ptr in live.into_iter().step_by(2) {
            heap.free(ptr).expect("depopulate");
        }
    }
    dev.poison(heap.layout().meta_base(0), 1).expect("meta poison");
    for sub in 0..4u16 {
        for _ in 0..4 {
            dev.poison(heap.layout().user_base(sub) + 64 * rng.below(4096), 1).expect("user poison");
        }
    }
    let mut total = poseidon::ScrubStep::default();
    while total.passes_completed < 2 {
        total.absorb(&heap.scrub_step(1).expect("scrub step"));
    }
    let health = heap.health();
    let mut fold = StreamDigest::new();
    for sub in heap.quarantined_subheaps() {
        fold.update(u64::from(sub));
    }
    fold.update(health.subheaps_condemned_live);
    fold.update(health.blocks_quarantined_live);
    fold.update(health.media_errors_during_scrub);
    fold.update(total.units_examined);
    println!("\n## Self-healing digest (1 metadata + 16 user-data faults, 2 scrub passes)");
    println!("{:<12} {:>#18x} {:>#20x}", "self-heal", HEAL_SEED, fold.finish());
    println!(
        "  health: {} sub-heaps frozen, {} free blocks quarantined live, {} scrub faults, {} units examined",
        health.quarantined_subheaps,
        health.blocks_quarantined_live,
        health.media_errors_during_scrub,
        total.units_examined
    );

    // Sparse-cost digest: creating and then growing an almost-empty
    // pool must touch O(metadata) bytes, not O(capacity) — sub-heaps
    // materialise lazily and a growth writes one epoch record plus the
    // huge band's extent bookkeeping. Resident bytes count the device
    // chunks any write has materialised, so this is exactly "bytes
    // touched".
    let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20).growable_to(4 << 30)));
    let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(4)).expect("heap");
    let anchor = heap.alloc(64).expect("anchor alloc");
    let after_create = dev.resident_bytes();
    let report = heap.grow(4 << 30).expect("grow");
    let after_grow = dev.resident_bytes();
    println!("\n## Sparse-cost digest — create + grow an almost-empty pool");
    println!(
        "  create 256 MiB (4 sub-heaps) + one 64 B object: {} KiB touched ({:.3}% of capacity)",
        after_create >> 10,
        100.0 * after_create as f64 / (256u64 << 20) as f64
    );
    println!(
        "  grow to 4 GiB (epoch {}, +{} sub-heaps, +{} MiB huge band): {} KiB more touched \
         ({:.4}% of the added capacity)",
        report.epoch,
        report.new_subheaps,
        report.huge_bytes_added >> 20,
        (after_grow - after_create) >> 10,
        100.0 * (after_grow - after_create) as f64 / (report.new_capacity - report.old_capacity) as f64
    );
    heap.free(anchor).expect("anchor free");

    // Maintenance digest: the same deterministic churn run twice — once
    // with the engine off (coalescing debt accumulates and stays) and
    // once stepping a small budget between churn rounds (debt is paid
    // down online). The trajectory, not the absolute numbers, is the
    // reproduced claim: budgeted background merging bounds steady-state
    // fragmentation without a stop-the-world pass.
    println!("\n## Maintenance digest — coalescing debt, engine off vs budget 96/round");
    println!("{:<7} {:>14} {:>14}", "round", "off KiB", "on KiB");
    let mut debt = [Vec::new(), Vec::new()];
    for (run, trajectory) in debt.iter_mut().enumerate() {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(64 << 20)));
        let config = HeapConfig::new().with_subheaps(1).without_cache();
        let heap = PoseidonHeap::create(dev, config).expect("heap");
        for round in 0..6u32 {
            // One size class per round (a phase change): the freed
            // blocks of this round are buddy pairs the free path leaves
            // unmerged — exactly the deferred-coalescing debt.
            let size = 64 << round;
            let batch: Vec<_> = (0..128).map(|_| heap.alloc(size).expect("churn alloc")).collect();
            for ptr in batch {
                heap.free(ptr).expect("churn free");
            }
            if run == 1 {
                heap.maint_step(96).expect("maintenance step");
            }
            trajectory.push(heap.fragmentation().expect("fragmentation").frag_bytes());
        }
    }
    for (round, (off, on)) in debt[0].iter().zip(&debt[1]).enumerate() {
        println!("{:<7} {:>14} {:>14}", round, off >> 10, on >> 10);
    }
}

/// Runs `work` for each allocator and thread count (fresh pool per
/// point, one warm-up pass, measured pass projected via lock profiles)
/// and collects one series per allocator.
fn sweep_allocators(
    threads: &[usize],
    gib: u64,
    work: impl Fn(&dyn PersistentAllocator, usize) -> workloads::RunResult,
) -> Vec<(&'static str, Vec<Point>)> {
    AllocatorKind::ALL
        .iter()
        .map(|&kind| {
            let series = threads
                .iter()
                .map(|&t| {
                    let alloc = kind.build(bench_device(gib));
                    measure(&*alloc, |a| work(a, t))
                })
                .collect();
            (kind.name(), series)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 3

fn fig3() {
    println!("\n## Figure 3 — heap-metadata corruption from a heap overflow");
    println!("{:<44} {:<10} outcome", "scenario", "allocator");

    // PMDK: overlapping allocation.
    {
        let dev = bench_device(1);
        let pool = baselines::PmdkSim::new(dev).expect("pmdk pool");
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(pool.alloc(0, 48).expect("alloc"));
        }
        let victim = live[32];
        pool.device()
            .write_pod(
                victim - 16,
                &baselines::pmdk_sim::ObjHeader { size: 1088, status: baselines::pmdk_sim::STATUS_ALLOC },
            )
            .expect("corrupt header");
        pool.free(0, victim).expect("free");
        let mut overlaps = 0;
        for _ in 0..17 {
            let fresh = pool.alloc(0, 48).expect("alloc");
            if live.contains(&fresh) && fresh != victim {
                overlaps += 1;
            }
        }
        println!(
            "{:<44} {:<10} {} overlapping allocations (silent user-data corruption)",
            "grow header 64->1088 then free", "pmdk", overlaps
        );
    }

    // PMDK: permanent leak.
    {
        let dev = bench_device(1);
        let pool = baselines::PmdkSim::new(dev).expect("pmdk pool");
        let before = pool.free_chunks();
        let big = pool.alloc(0, 2 * 1024 * 1024).expect("alloc");
        pool.device()
            .write_pod(
                big - 16,
                &baselines::pmdk_sim::ObjHeader { size: 64, status: baselines::pmdk_sim::STATUS_ALLOC },
            )
            .expect("corrupt header");
        pool.free(0, big).expect("free");
        let leaked = before - pool.free_chunks();
        println!(
            "{:<44} {:<10} {} chunks permanently leaked",
            "shrink header 2MB->64 then free", "pmdk", leaked
        );
    }

    // PMDK with the §8 canary mitigation: overlap attack stopped.
    {
        let dev = bench_device(1);
        let pool = baselines::PmdkSim::with_canary(dev).expect("pmdk pool");
        let mut live = Vec::new();
        for _ in 0..64 {
            live.push(pool.alloc(0, 48).expect("alloc"));
        }
        let victim = live[32];
        pool.device()
            .write_pod(
                victim - 16,
                &baselines::pmdk_sim::ObjHeader { size: 1088, status: baselines::pmdk_sim::STATUS_ALLOC },
            )
            .expect("corrupt header");
        pool.free(0, victim).expect("free");
        let mut overlaps = 0;
        for _ in 0..17 {
            let fresh = pool.alloc(0, 48).expect("alloc");
            if live.contains(&fresh) && fresh != victim {
                overlaps += 1;
            }
        }
        println!(
            "{:<44} {:<10} {} overlaps; {} free skipped (object leaked, corruption contained)",
            "same attack, with the #8 canary mitigation",
            "pmdk+can",
            overlaps,
            pool.skipped_frees()
        );
    }

    // Makalu: corrupted pointer defeats GC.
    {
        let dev = bench_device(1);
        let pool = baselines::MakaluSim::new(dev).expect("makalu pool");
        let root = pool.alloc(0, 64).expect("alloc");
        let middle = pool.alloc(0, 64).expect("alloc");
        let leaf = pool.alloc(0, 64).expect("alloc");
        pool.device().write_pod(root, &middle).expect("link");
        pool.device().write_pod(middle, &leaf).expect("link");
        pool.device().write_pod(root, &0u64).expect("corrupt pointer");
        let swept = pool.gc(&[root]).expect("gc");
        println!(
            "{:<44} {:<10} {} live objects swept as garbage (data loss)",
            "corrupt object pointer then mark-and-sweep", "makalu", swept
        );
    }

    // Poseidon: the same attacks are stopped.
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::new(256 << 20)));
        let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(2)).expect("heap");
        let ptr = heap.alloc(64).expect("alloc");

        // 1. There is no in-place header to corrupt: bytes before the
        //    first block are metadata, and MPK rejects the store.
        let meta_store = dev.write(heap.layout().user_base(0) - 8, &[0xFF; 16]);
        println!(
            "{:<44} {:<10} {}",
            "heap overflow into metadata region",
            "poseidon",
            match meta_store {
                Err(pmem::PmemError::ProtectionFault { .. }) => "MPK protection fault (store rejected)",
                _ => "UNEXPECTED: store permitted",
            }
        );

        // 2. Free of a forged interior pointer: invalid free, rejected.
        let forged = poseidon::NvmPtr::new(heap.heap_id(), 0, ptr.offset() + 8);
        println!(
            "{:<44} {:<10} {}",
            "free(forged interior pointer)",
            "poseidon",
            match heap.free(forged) {
                Err(poseidon::PoseidonError::InvalidFree { .. }) => "rejected as invalid free",
                _ => "UNEXPECTED",
            }
        );

        // 3. Double free: rejected.
        heap.free(ptr).expect("legitimate free");
        println!(
            "{:<44} {:<10} {}",
            "double free",
            "poseidon",
            match heap.free(ptr) {
                Err(poseidon::PoseidonError::DoubleFree { .. }) => "rejected as double free",
                _ => "UNEXPECTED",
            }
        );
        heap.audit().expect("heap intact after attacks");
        println!(
            "{:<44} {:<10} audit clean — no metadata corruption",
            "post-attack structural audit", "poseidon"
        );
    }
}

// ---------------------------------------------------------------- Fig. 6

fn fig6(options: &Options) {
    let sizes: &[(u64, &str)] = &[
        (256, "256B"),
        (1 << 10, "1KB"),
        (4 << 10, "4KB"),
        (128 << 10, "128KB"),
        (256 << 10, "256KB"),
        (512 << 10, "512KB"),
    ];
    let threads = thread_sweep(options.max_threads);
    for &(size, label) in sizes {
        // The paper performs 1M ops total; quick mode scales down.
        let ops = if options.full { 100_000 } else { baseline_ops_for_size(size) };
        let series = sweep_allocators(&threads, 64, |alloc, t| {
            micro::run(alloc, micro::MicroConfig::new(size, t, ops))
        });
        print_panel(&format!("Figure 6 — microbenchmark, {label} ({ops} ops/thread)"), &series);
    }
}

fn baseline_ops_for_size(size: u64) -> u64 {
    match size {
        0..=4096 => 20_000,
        _ => 2_000,
    }
}

// ---------------------------------------------------------------- Fig. 7

fn fig7(options: &Options) {
    let threads = thread_sweep(options.max_threads);
    let duration = if options.full { Duration::from_secs(10) } else { Duration::from_millis(500) };
    let series =
        sweep_allocators(&threads, 64, |alloc, t| larson::run(alloc, larson::LarsonConfig::new(t, duration)));
    print_panel(&format!("Figure 7 — Larson benchmark ({duration:?} per point)"), &series);
}

// ---------------------------------------------------------------- Fig. 8

fn fig8(options: &Options) {
    let threads = thread_sweep(options.max_threads);
    let (ack_iters, cache) = if options.full { (1_000, 16 << 20) } else { (40, 1 << 20) };
    let series = sweep_allocators(&threads, 64, |alloc, t| {
        ackermann::run(alloc, ackermann::AckermannConfig::new(t, ack_iters, cache))
    });
    print_panel(&format!("Figure 8 — Ackermann ({ack_iters} x {} MiB cache)", cache >> 20), &series);

    let kruskal_iters = if options.full { 100_000 } else { 3_000 };
    let series = sweep_allocators(&threads, 64, |alloc, t| {
        kruskal::run(alloc, kruskal::KruskalConfig::new(t, kruskal_iters))
    });
    print_panel(&format!("Figure 8 — Kruskal MST order 5 ({kruskal_iters} iters/thread)"), &series);

    let queens_iters = if options.full { 100_000 } else { 2_000 };
    let series = sweep_allocators(&threads, 64, |alloc, t| {
        nqueens::run(alloc, nqueens::NQueensConfig::new(t, queens_iters))
    });
    print_panel(&format!("Figure 8 — 8-Queens ({queens_iters} iters/thread)"), &series);
}

// ---------------------------------------------------------------- Fig. 9

fn fig9(options: &Options) {
    let threads = thread_sweep(options.max_threads);
    let (load_keys, ops) = if options.full { (10_000_000, 200_000) } else { (100_000, 20_000) };

    let mut load_series: Vec<(&'static str, Vec<Point>)> = Vec::new();
    let mut a_series: Vec<(&'static str, Vec<Point>)> = Vec::new();
    for kind in AllocatorKind::ALL {
        let mut load_points = Vec::new();
        let mut a_points = Vec::new();
        for &t in &threads {
            let alloc: Arc<dyn PersistentAllocator> = kind.build(bench_device(64));
            let config = ycsb::YcsbConfig::new(t, load_keys, ops);
            alloc.reset_contention();
            let (tree, load) = ycsb::run_load(&alloc, config);
            load_points.push(bench::project(&load, &alloc.contention_profile()));
            // Workload A: warm-up pass, then measured pass.
            let _ = ycsb::run_workload_a(&tree, config);
            alloc.reset_contention();
            let a = ycsb::run_workload_a(&tree, config);
            a_points.push(bench::project(&a, &alloc.contention_profile()));
        }
        load_series.push((kind.name(), load_points));
        a_series.push((kind.name(), a_points));
    }
    print_panel(&format!("Figure 9 — YCSB Load ({load_keys} keys)"), &load_series);
    print_panel(&format!("Figure 9 — YCSB Workload A ({ops} ops/thread)"), &a_series);

    // Extension: the read-heavy workloads the paper skips, demonstrating
    // its stated reason — the allocator effect vanishes as the update
    // fraction drops.
    let t = *threads.last().expect("non-empty sweep");
    println!("\n## Figure 9 extension — read-heavy YCSB at {t} threads (allocator effect vanishes)");
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "allocator", "A (50% upd)", "B (5% upd)", "C (0% upd)", "E (scans)"
    );
    for kind in AllocatorKind::ALL {
        let alloc: Arc<dyn PersistentAllocator> = kind.build(bench_device(64));
        let config = ycsb::YcsbConfig::new(t, load_keys.min(50_000), ops);
        let (tree, _) = ycsb::run_load(&alloc, config);
        let a = bench::project(&ycsb::run_workload_a(&tree, config), &alloc.contention_profile());
        alloc.reset_contention();
        let b = bench::project(&ycsb::run_workload_b(&tree, config), &alloc.contention_profile());
        alloc.reset_contention();
        let c = bench::project(&ycsb::run_workload_c(&tree, config), &alloc.contention_profile());
        alloc.reset_contention();
        let e = bench::project(&ycsb::run_workload_e(&tree, config), &alloc.contention_profile());
        println!("{:>10} {:>14.3} {:>14.3} {:>14.3} {:>14.3}", kind.name(), a.mops, b.mops, c.mops, e.mops);
    }
}

// -------------------------------------------------------- §4.7 capacity

/// The constant-time claim: op latency percentiles as the live-block
/// population grows. Constant-time designs stay flat; tree-indexed and
/// rescan-based designs grow.
fn capacity(options: &Options) {
    let populations: &[u64] =
        if options.full { &[1_000, 10_000, 100_000, 400_000] } else { &[500, 5_000, 20_000] };
    let pairs = if options.full { 20_000 } else { 3_000 };
    println!("\n## Section 4.7 — constant-time allocation (latency vs live population)");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "allocator", "live", "alloc p50", "p99", "max", "free p50", "p99"
    );
    for kind in AllocatorKind::ALL {
        for &live in populations {
            let alloc = kind.build(bench_device(64));
            let (a, f) = latency::measure(&*alloc, latency::LatencyConfig::new(live, pairs));
            println!(
                "{:>10} {:>10} {:>10} ns {:>7} ns {:>7} ns {:>10} ns {:>7} ns",
                kind.name(),
                live,
                a.p50,
                a.p99,
                a.max,
                f.p50,
                f.p99
            );
        }
    }

    // The large-object path with fragmented free space: PMDK serves these
    // from its AVL tree (which now holds live/2 disjoint ranges), Makalu
    // from its global chunk map; Poseidon pops a buddy-list head either
    // way.
    // Populations sized to fit one sub-heap's ~1 GiB user region at
    // 512 KiB per block.
    let populations: &[u64] = &[100, 400, 1_000];
    let pairs = if options.full { 5_000 } else { 800 };
    println!("\n## Section 4.7 — 512 KiB allocations over fragmented free space");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "allocator", "fragments", "alloc p50", "p99", "max", "free p50", "p99"
    );
    for kind in AllocatorKind::ALL {
        for &live in populations {
            let alloc = kind.build(bench_device(64));
            let config = latency::LatencyConfig::new(live, pairs).with_size(512 << 10).fragmented();
            let (a, f) = latency::measure(&*alloc, config);
            println!(
                "{:>10} {:>10} {:>10} ns {:>7} ns {:>7} ns {:>10} ns {:>7} ns",
                kind.name(),
                live / 2,
                a.p50,
                a.p99,
                a.max,
                f.p50,
                f.p99
            );
        }
    }
}

// -------------------------------------------------------------- Ablation

fn ablation(options: &Options) {
    let threads = thread_sweep(options.max_threads);
    let ops = if options.full { 100_000 } else { 20_000 };
    let size = 256;

    let run_poseidon = |config: HeapConfig, tracking: bool, t: usize| -> Point {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let topology = pmem::NumaTopology::new(2, host.max(64));
        let dev = Arc::new(PmemDevice::new(
            DeviceConfig::bench(64 << 30).with_crash_tracking(tracking).with_topology(topology),
        ));
        let heap = PoseidonHeap::create(dev, config).expect("heap");
        measure(&heap, |a| micro::run(a, micro::MicroConfig::new(size, t, ops)))
    };

    // (a) MPK protection on vs off (§4.3's "low latency" claim).
    let series: Vec<(&str, Vec<Point>)> = vec![
        ("mpk-on", threads.iter().map(|&t| run_poseidon(HeapConfig::new(), false, t)).collect()),
        (
            "mpk-off",
            threads.iter().map(|&t| run_poseidon(HeapConfig::new().without_protection(), false, t)).collect(),
        ),
    ];
    print_panel("Ablation — MPK metadata protection (256B micro)", &series);

    // (b) Per-CPU sub-heaps vs one global sub-heap (§4.1's claim).
    let series: Vec<(&str, Vec<Point>)> = vec![
        ("per-cpu", threads.iter().map(|&t| run_poseidon(HeapConfig::new(), false, t)).collect()),
        (
            "single",
            threads.iter().map(|&t| run_poseidon(HeapConfig::new().with_subheaps(1), false, t)).collect(),
        ),
    ];
    print_panel("Ablation — per-CPU sub-heaps vs a single sub-heap (256B micro)", &series);

    // (c) Substrate sanity: device crash tracking on vs off.
    let series: Vec<(&str, Vec<Point>)> = vec![
        ("tracking-off", threads.iter().map(|&t| run_poseidon(HeapConfig::new(), false, t)).collect()),
        ("tracking-on", threads.iter().map(|&t| run_poseidon(HeapConfig::new(), true, t)).collect()),
    ];
    print_panel("Ablation — device crash-tracking overhead (substrate, not the paper)", &series);

    // (d) Transient cache on vs off (DESIGN.md §11): the magazine fast
    // path against every operation taking the undo-logged buddy, on the
    // fig6-style micro mix and Larson's free-heavy server mix.
    let series: Vec<(&str, Vec<Point>)> = vec![
        ("cache-on", threads.iter().map(|&t| run_poseidon(HeapConfig::new(), false, t)).collect()),
        (
            "cache-off",
            threads.iter().map(|&t| run_poseidon(HeapConfig::new().without_cache(), false, t)).collect(),
        ),
    ];
    print_panel("Ablation — transient cache vs slow-path-only (256B micro)", &series);

    let duration = if options.full { Duration::from_secs(2) } else { Duration::from_millis(300) };
    let run_larson = |config: HeapConfig, t: usize| -> Point {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let topology = pmem::NumaTopology::new(2, host.max(64));
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(64 << 30).with_topology(topology)));
        let heap = PoseidonHeap::create(dev, config).expect("heap");
        measure(&heap, |a| larson::run(a, larson::LarsonConfig::new(t, duration)))
    };
    let series: Vec<(&str, Vec<Point>)> = vec![
        ("cache-on", threads.iter().map(|&t| run_larson(HeapConfig::new(), t)).collect()),
        ("cache-off", threads.iter().map(|&t| run_larson(HeapConfig::new().without_cache(), t)).collect()),
    ];
    print_panel(&format!("Ablation — transient cache, Larson mix ({duration:?} per point)"), &series);

    // The fence budget behind the panels: a warm single-threaded
    // alloc/free pair costs zero fences through the cache, 3.00/op
    // amortised through the batched slow path.
    println!("\n## Ablation — fences per operation (warm 256B alloc/free pairs)");
    for (name, config) in [("cache-on", HeapConfig::new()), ("cache-off", HeapConfig::new().without_cache())]
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(8 << 30)));
        let heap = PoseidonHeap::create(dev.clone(), config).expect("heap");
        pmem::numa::set_current_cpu(0);
        let mut warm = Vec::new();
        for _ in 0..64 {
            warm.push(heap.alloc(256).expect("warm alloc"));
        }
        for p in warm {
            heap.free(p).expect("warm free");
        }
        let before = dev.stats();
        for _ in 0..ops {
            let p = heap.alloc(256).expect("alloc");
            heap.free(p).expect("free");
        }
        let after = dev.stats();
        println!(
            "  {:<9} {:>6.2} sfences/op, {:>6.2} clwbs/op",
            name,
            (after.sfence_count - before.sfence_count) as f64 / (2 * ops) as f64,
            (after.clwb_count - before.clwb_count) as f64 / (2 * ops) as f64
        );
    }

    // (e) Self-healing scrubber: time-to-detect a poisoned free block,
    // in serving operations. The allocator never reads user bytes, so
    // without the scrubber user-data poison on a free block sits
    // undetected until the block is reallocated into someone's hands;
    // with the scrubber, detection latency is bounded by the budget.
    println!("\n## Ablation — scrubber time-to-detect (poisoned free block under a 256B serving mix)");
    println!("{:>16} {:>16} {:>20}", "scrubber", "ops to detect", "scrub units spent");
    let max_ops = 20_000u64;
    for (name, every, budget) in
        [("off", 0u64, 0usize), ("1 unit/64 ops", 64, 1), ("1 unit/8 ops", 8, 1), ("4 units/8 ops", 8, 4)]
    {
        let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(1 << 30)));
        let heap = PoseidonHeap::create(dev.clone(), HeapConfig::new().with_subheaps(4)).expect("heap");
        pmem::numa::set_current_cpu(0);
        // The victim: a block big enough to bypass the transient cache,
        // freed back to the buddy lists, then hit by a media fault.
        let victim = heap.alloc(16 << 10).expect("victim alloc");
        let raw = heap.raw_offset(victim).expect("victim offset");
        heap.free(victim).expect("victim free");
        dev.poison(raw, 1).expect("victim poison");

        let mut rng = workloads::Xorshift::new(0x5C2B);
        let mut live = Vec::new();
        let mut detected = None;
        let mut units = 0u64;
        for op in 1..=max_ops {
            if !live.is_empty() && rng.below(2) == 0 {
                let idx = rng.below(live.len() as u64) as usize;
                heap.free(live.swap_remove(idx)).expect("serving free");
            } else if let Ok(p) = heap.alloc(256) {
                live.push(p);
            }
            if every != 0 && op % every == 0 {
                let step = heap.scrub_step(budget).expect("scrub step");
                units += step.units_examined;
                if step.blocks_quarantined > 0 {
                    detected = Some(op);
                    break;
                }
            }
        }
        match detected {
            Some(op) => println!("{:>16} {:>16} {:>20}", name, op, units),
            None => println!("{:>16} {:>16} {:>20}", name, format!("never (> {max_ops})"), units),
        }
    }
}
