//! The KV service soak gate: mixed zipfian traffic over sharded
//! FAST-FAIR trees on one Poseidon heap, with kill-and-resume, live
//! media-fault, and online-grow events injected mid-run.
//!
//! ```text
//! kvserve [--threads N] [--shards S] [--keys K] [--ops O] [--seed X]
//!         [--value-size B] [--events kill,poison,grow] [--maint N]
//! ```
//!
//! Prints the per-interval latency table (p50/p99/p999 per op class),
//! one line per injected event, and a final summary. Exits non-zero
//! (panics) on any correctness violation: a lost acknowledged key, a
//! corrupt value, an out-of-order scan, or a failed recovery/audit —
//! which is what makes it a CI gate rather than a benchmark.

use workloads::kvserve::{run_soak, EventReport, KvServeConfig, SoakEvent, SoakReport};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 4usize;
    let mut shards = 4usize;
    let mut keys = 4000u64;
    let mut ops = 4000u64;
    let mut seed = 0x5EA5_0A4Bu64;
    let mut value_size = 100u64;
    let mut events = vec![SoakEvent::Kill, SoakEvent::Poison, SoakEvent::Grow];
    let mut maint_budget: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value =
            |name: &str| iter.next().cloned().unwrap_or_else(|| usage(&format!("missing value for {name}")));
        match arg.as_str() {
            "--threads" => threads = parse(&value("--threads")),
            "--shards" => shards = parse(&value("--shards")),
            "--keys" => keys = parse(&value("--keys")),
            "--ops" => ops = parse(&value("--ops")),
            "--seed" => seed = parse(&value("--seed")),
            "--value-size" => value_size = parse(&value("--value-size")),
            "--maint" => maint_budget = Some(parse(&value("--maint"))),
            "--events" => {
                let list = value("--events");
                events = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| SoakEvent::parse(s).unwrap_or_else(|| usage(&format!("unknown event {s}"))))
                    .collect();
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let mut config = KvServeConfig::new(threads, shards, keys, ops).with_events(events);
    config.seed = seed;
    config.value_size = value_size;
    if let Some(budget) = maint_budget {
        config = config.with_maint(budget);
    }
    println!(
        "# kvserve soak: {threads} threads x {ops} ops over {shards} shards, {keys} loaded keys, \
         events [{}], maint budget {}, seed {seed:#x}",
        config.events.iter().map(|e| e.name()).collect::<Vec<_>>().join(","),
        config.maint_budget
    );

    let report = run_soak(&config);
    print_report(&report);

    // Gate assertions beyond run_soak's internal invariants: the service
    // must have actually exercised what the flags asked for.
    report.assert_invariants(&config);
    for event in &report.events {
        if let EventReport::Kill { reopen, population, verified, .. } = event {
            assert_eq!(verified, population, "kill verification skipped keys");
            assert!(
                reopen.as_millis() < 5_000,
                "reopen took {reopen:?} — recovery is not O(metadata) anymore"
            );
        }
    }
    println!("kvserve gate: OK ({} ops, {} intervals)", report.ops, report.intervals.len());
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| usage(&format!("invalid numeric value {s}")))
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: kvserve [--threads N] [--shards S] [--keys K] [--ops O] [--seed X] \
         [--value-size B] [--events kill,poison,grow] [--maint N]"
    );
    std::process::exit(2)
}

fn print_report(report: &SoakReport) {
    println!("\n## intervals (latency ns per op class)");
    println!("{:<4} {:>8} {:>10}  class p50/p99/p999", "#", "ops", "ms");
    for interval in &report.intervals {
        let mut cells = Vec::new();
        for (class, summary) in &interval.classes {
            if summary.count > 0 {
                cells.push(format!("{} {}/{}/{}", class.name(), summary.p50, summary.p99, summary.p999));
            }
        }
        println!(
            "{:<4} {:>8} {:>10.1}  {}",
            interval.index,
            interval.ops,
            interval.elapsed.as_secs_f64() * 1e3,
            cells.join("  ")
        );
    }

    println!("\n## events");
    for event in &report.events {
        match event {
            EventReport::Kill { at_op, reopen, population, verified } => println!(
                "kill   @op {at_op}: reopened in {:.2} ms, verified {verified}/{population} \
                 acknowledged keys",
                reopen.as_secs_f64() * 1e3
            ),
            EventReport::Poison { at_op, keys } => {
                println!("poison @op {at_op}: {keys} live value blocks poisoned")
            }
            EventReport::Grow { at_op, old_capacity, new_capacity, new_subheaps } => println!(
                "grow   @op {at_op}: {} MiB -> {} MiB (+{new_subheaps} sub-heaps)",
                old_capacity >> 20,
                new_capacity >> 20
            ),
        }
    }

    println!("\n## fragmentation (coalescing debt over time)");
    println!(
        "{:>10} {:>12} {:>12} {:>13} {:>14}",
        "at op", "free KiB", "frag KiB", "largest", "huge largest"
    );
    for sample in &report.fragmentation {
        println!(
            "{:>10} {:>12} {:>12} {:>13} {:>14}",
            sample.at_op,
            sample.free_bytes >> 10,
            sample.frag_bytes >> 10,
            sample.largest_block,
            sample.huge_largest_free.map_or_else(|| "-".into(), |v| v.to_string())
        );
    }
    let h = &report.health;
    println!(
        "maintenance: {} steps, {} full passes, {} buddy merges, {} table levels shrunk, \
         {} cached blocks trimmed",
        h.maint_steps, h.maint_passes, h.maint_merges, h.maint_table_levels_shrunk, h.maint_blocks_trimmed
    );

    println!("\n## totals");
    for (class, summary) in &report.totals {
        if summary.count > 0 {
            println!("{:<7} {summary}", class.name());
        }
    }
    let c = &report.counters;
    println!(
        "population {} ({} loaded + {} inserted), healed {}, dirty allocs {}, space stalls {}, \
         read races {}, free errors {}",
        report.population,
        report.loaded,
        report.inserted,
        c.healed,
        c.dirty_allocs,
        c.space_stalls,
        c.read_races,
        c.free_errors
    );
    let h = &report.health;
    println!(
        "health: {} live media errors, {} blocks quarantined live ({} durable), {} scrub steps, \
         {} poisoned lines left",
        h.live_media_errors(),
        h.blocks_quarantined_live,
        report.quarantined_blocks,
        h.scrub_steps,
        h.poisoned_lines
    );
    println!(
        "soak elapsed {:.2} s ({:.0} ops/s)",
        report.elapsed.as_secs_f64(),
        report.ops as f64 / report.elapsed.as_secs_f64().max(1e-9)
    );
}
