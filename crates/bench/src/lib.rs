//! Shared plumbing for the figure-reproduction harness.
//!
//! The `repro` binary (and the `cargo bench` binaries) regenerate every figure
//! of the Poseidon paper; this library holds the pieces they share:
//! device construction, thread sweeps, and series printing.

#![warn(missing_docs)]

use std::sync::Arc;

use pmem::{DeviceConfig, PmemDevice};
use workloads::{AllocatorKind, PersistentAllocator, RunResult};

/// Builds a fresh benchmark device (crash tracking off, protection on) of
/// `gib` virtual GiB — backing memory materialises only when touched.
///
/// The device models the paper's 2-socket topology with at least 64
/// logical CPUs regardless of the host, so per-CPU structures (Poseidon
/// sub-heaps, Makalu local lists) exist at benchmark scale; the host's
/// real core count only affects wall-clock, which the projection
/// normalises out.
pub fn bench_device(gib: u64) -> Arc<PmemDevice> {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let config = DeviceConfig::bench(gib << 30).with_topology(pmem::NumaTopology::new(2, host.max(64)));
    Arc::new(PmemDevice::new(config))
}

/// Builds allocator `kind` on a fresh `gib`-GiB device.
pub fn fresh_allocator(kind: AllocatorKind, gib: u64) -> Arc<dyn PersistentAllocator> {
    kind.build(bench_device(gib))
}

/// The paper's thread sweep (1, 2, 4, ... up to `max`), always including
/// `max` itself.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let mut sweep = Vec::new();
    let mut t = 1;
    while t < max {
        sweep.push(t);
        t *= 2;
    }
    sweep.push(max);
    sweep
}

/// One measured point of a figure series.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// X value (thread count).
    pub threads: usize,
    /// Y value: throughput projected to `threads` cores (Mops/sec).
    pub mops: f64,
    /// Throughput actually observed on this host's wall clock.
    pub wall_mops: f64,
}

/// Per-handoff penalty charged to contended locks in the projection:
/// roughly one cross-core cache-line transfer of the lock word.
pub const LOCK_HANDOFF_NS: u64 = 150;

/// Projects a run onto `threads` cores with the work-span bound
/// `T(p) = max(total_work / p, max_resource_serial_time)`.
///
/// `total_work` is the workers' summed thread-CPU time (immune to host
/// core count and preemption). Each lock's serial time is its measured
/// CPU-time hold plus [`LOCK_HANDOFF_NS`] per acquisition.
///
/// This is how the paper's scalability shapes — who saturates where — are
/// reproduced on hosts with fewer cores than the paper's 112-thread
/// testbed; EXPERIMENTS.md discusses fidelity and limits.
pub fn project(result: &RunResult, profile: &[pmem::LockProfile]) -> Point {
    let busy_ns = if result.cpu_ns > 0 { result.cpu_ns } else { result.elapsed.as_nanos() as u64 };
    let serial_ns = profile.iter().map(|p| p.effective_serial_ns(LOCK_HANDOFF_NS)).max().unwrap_or(0);
    let projected_ns = (busy_ns / result.threads.max(1) as u64).max(serial_ns).max(1);
    Point {
        threads: result.threads,
        mops: result.total_ops as f64 / projected_ns as f64 * 1e3,
        wall_mops: result.mops(),
    }
}

/// Runs `run` once as warm-up (creating sub-heaps, filling caches), then
/// twice measured with fresh lock counters, keeping the better projection
/// (best-of-2 damps scheduler noise on oversubscribed hosts).
pub fn measure(
    alloc: &dyn PersistentAllocator,
    run: impl Fn(&dyn PersistentAllocator) -> RunResult,
) -> Point {
    let _ = run(alloc);
    let mut best: Option<Point> = None;
    for _ in 0..2 {
        alloc.reset_contention();
        alloc.device().reset_stats();
        let result = run(alloc);
        let p = project(&result, &alloc.contention_profile());
        if best.is_none_or(|b| p.mops > b.mops) {
            best = Some(p);
        }
    }
    best.expect("two measured passes ran")
}

/// Prints one figure panel: a header, then rows of
/// `threads  poseidon  pmdk  makalu` (whichever series are present).
pub fn print_panel(title: &str, series: &[(&str, Vec<Point>)]) {
    println!("\n## {title}");
    print!("{:>8}", "threads");
    for (name, _) in series {
        print!("{name:>12}");
    }
    println!();
    let xs: Vec<usize> =
        series.first().map(|(_, s)| s.iter().map(|p| p.threads).collect()).unwrap_or_default();
    for (row, &threads) in xs.iter().enumerate() {
        print!("{threads:>8}");
        for (_, points) in series {
            match points.get(row) {
                Some(p) => print!("{:>12.3}", p.mops),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

/// Converts a [`RunResult`] into a wall-clock-only [`Point`] (no
/// projection; used where locks are not instrumented).
pub fn point(result: &RunResult) -> Point {
    Point { threads: result.threads, mops: result.mops(), wall_mops: result.mops() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_powers_of_two_and_max() {
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(1), vec![1]);
    }

    #[test]
    fn fresh_allocators_work() {
        for kind in AllocatorKind::ALL {
            let alloc = fresh_allocator(kind, 1);
            let a = alloc.alloc(64).unwrap();
            alloc.free(a).unwrap();
        }
    }
}
