//! Bench for the transaction and data-structure layers: cost of a
//! persistent transaction (alloc + write + root update) and of PVec /
//! PMap operations, all on Poseidon.

use std::sync::Arc;

use pds::{PMap, PVec};
use platform::bench::Harness;
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use ptx::PtxPool;

fn pool() -> PtxPool {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(2 << 30)));
    let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(2)).expect("heap"));
    PtxPool::create(heap).expect("pool")
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("ptx_pds");
    group.sample_size(10).throughput_elements(1);

    let p = pool();
    group.bench("tx_alloc_write_free", || {
        p.run(|tx| {
            let block = tx.alloc(128)?;
            tx.write_pod(block, 0, &0xABu64)?;
            tx.free(block)?;
            Ok(())
        })
        .expect("tx")
    });

    let p = pool();
    let vec: PVec<u64> = PVec::create(&p).expect("vec");
    group.bench("pvec_push_pop", || {
        vec.push(&p, 7).expect("push");
        vec.pop(&p).expect("pop");
    });

    let p = pool();
    let map: PMap<u64> = PMap::create(&p, 256).expect("map");
    for k in 0..1000u64 {
        map.insert(&p, k, k).expect("prefill");
    }
    let key = std::cell::Cell::new(1000u64);
    group.bench("pmap_insert_remove", || {
        key.set(key.get() + 1);
        map.insert(&p, key.get(), key.get()).expect("insert");
        map.remove(&p, key.get()).expect("remove");
    });
    let probe = std::cell::Cell::new(0u64);
    group.bench("pmap_get", || {
        probe.set((probe.get() + 7) % 1000);
        map.get(&p, probe.get()).expect("get");
    });
    group.finish();
}
