//! Criterion bench for the transaction and data-structure layers: cost of
//! a persistent transaction (alloc + write + root update) and of PVec /
//! PMap operations, all on Poseidon.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pds::{PMap, PVec};
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use ptx::PtxPool;

fn pool() -> PtxPool {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(2 << 30)));
    let heap = Arc::new(PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(2)).expect("heap"));
    PtxPool::create(heap).expect("pool")
}

fn ptx_pds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ptx_pds");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));

    let p = pool();
    group.bench_function(BenchmarkId::from_parameter("tx_alloc_write_free"), |b| {
        b.iter(|| {
            p.run(|tx| {
                let block = tx.alloc(128)?;
                tx.write_pod(block, 0, &0xABu64)?;
                tx.free(block)?;
                Ok(())
            })
            .expect("tx")
        });
    });

    let p = pool();
    let vec: PVec<u64> = PVec::create(&p).expect("vec");
    group.bench_function(BenchmarkId::from_parameter("pvec_push_pop"), |b| {
        b.iter(|| {
            vec.push(&p, 7).expect("push");
            vec.pop(&p).expect("pop");
        });
    });

    let p = pool();
    let map: PMap<u64> = PMap::create(&p, 256).expect("map");
    for k in 0..1000u64 {
        map.insert(&p, k, k).expect("prefill");
    }
    let mut key = 1000u64;
    group.bench_function(BenchmarkId::from_parameter("pmap_insert_remove"), |b| {
        b.iter(|| {
            key += 1;
            map.insert(&p, key, key).expect("insert");
            map.remove(&p, key).expect("remove");
        });
    });
    group.bench_function(BenchmarkId::from_parameter("pmap_get"), |b| {
        let mut probe = 0u64;
        b.iter(|| {
            probe = (probe + 7) % 1000;
            map.get(&p, probe).expect("get")
        });
    });
    group.finish();
}

criterion_group!(benches, ptx_pds);
criterion_main!(benches);
