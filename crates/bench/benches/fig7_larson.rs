//! Criterion bench for Figure 7: the Larson cross-thread server
//! allocation pattern (operation-bounded variant).

use std::time::Duration;

use bench::fresh_allocator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::larson::{self, LarsonConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 5_000;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_larson");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        let alloc = fresh_allocator(kind, 32);
        group.throughput(Throughput::Elements(THREADS as u64 * OPS_PER_THREAD));
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                larson::run_ops(
                    &*alloc,
                    LarsonConfig::new(THREADS, Duration::ZERO),
                    OPS_PER_THREAD,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
