//! Figure 7 bench: the Larson cross-thread server allocation pattern
//! (operation-bounded variant).

use std::time::Duration;

use bench::fresh_allocator;
use platform::bench::Harness;
use workloads::larson::{self, LarsonConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 5_000;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("fig7_larson");
    group.sample_size(10).throughput_elements(THREADS as u64 * OPS_PER_THREAD);
    for kind in AllocatorKind::ALL {
        let alloc = fresh_allocator(kind, 32);
        group.bench(kind.name(), || {
            larson::run_ops(&*alloc, LarsonConfig::new(THREADS, Duration::ZERO), OPS_PER_THREAD);
        });
    }
    group.finish();
}
