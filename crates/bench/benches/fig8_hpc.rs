//! Criterion bench for Figure 8: the Ackermann, Kruskal, and N-Queens
//! compute benchmarks.

use bench::fresh_allocator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::AllocatorKind;
use workloads::{ackermann, kruskal, nqueens};

const THREADS: usize = 4;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_hpc");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        let alloc = fresh_allocator(kind, 32);
        group.bench_function(BenchmarkId::new("ackermann", kind.name()), |b| {
            b.iter(|| ackermann::run(&*alloc, ackermann::AckermannConfig::new(THREADS, 5, 256 << 10)));
        });
        group.bench_function(BenchmarkId::new("kruskal", kind.name()), |b| {
            b.iter(|| kruskal::run(&*alloc, kruskal::KruskalConfig::new(THREADS, 200)));
        });
        group.bench_function(BenchmarkId::new("nqueens", kind.name()), |b| {
            b.iter(|| nqueens::run(&*alloc, nqueens::NQueensConfig::new(THREADS, 200)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
