//! Figure 8 bench: the Ackermann, Kruskal, and N-Queens compute
//! benchmarks.

use bench::fresh_allocator;
use platform::bench::Harness;
use workloads::AllocatorKind;
use workloads::{ackermann, kruskal, nqueens};

const THREADS: usize = 4;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("fig8_hpc");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        let alloc = fresh_allocator(kind, 32);
        group.bench(&format!("ackermann/{}", kind.name()), || {
            ackermann::run(&*alloc, ackermann::AckermannConfig::new(THREADS, 5, 256 << 10));
        });
        group.bench(&format!("kruskal/{}", kind.name()), || {
            kruskal::run(&*alloc, kruskal::KruskalConfig::new(THREADS, 200));
        });
        group.bench(&format!("nqueens/{}", kind.name()), || {
            nqueens::run(&*alloc, nqueens::NQueensConfig::new(THREADS, 200));
        });
    }
    group.finish();
}
