//! Bench for the design ablations DESIGN.md calls out: MPK protection
//! on/off and per-CPU sub-heaps vs a single sub-heap.

use std::sync::Arc;

use platform::bench::Harness;
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::micro::{self, MicroConfig};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn heap(config: HeapConfig) -> PoseidonHeap {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(8 << 30)));
    PoseidonHeap::create(dev, config).expect("heap")
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("ablation");
    group.sample_size(10).throughput_elements(THREADS as u64 * OPS_PER_THREAD);
    let variants: [(&str, HeapConfig); 6] = [
        ("mpk-on", HeapConfig::new()),
        ("mpk-off", HeapConfig::new().without_protection()),
        ("per-cpu-subheaps", HeapConfig::new()),
        ("single-subheap", HeapConfig::new().with_subheaps(1)),
        ("cache-on", HeapConfig::new()),
        ("cache-off", HeapConfig::new().without_cache()),
    ];
    for (name, config) in variants {
        let h = heap(config);
        group.bench(name, || {
            micro::run(&h, MicroConfig::new(256, THREADS, OPS_PER_THREAD));
        });
    }
    group.finish();
    validation_ablation();
    persistence_ablation();
    cache_ablation();
    huge_path_ablation();
}

/// Session-layer ablation: access validations per operation on the
/// alloc/free hot path. Before the checked-session refactor every
/// metadata word access ran its own bounds/protection/poison sequence,
/// so the per-word column is exactly what the validation count used to
/// be; the per-op column is what `map_meta` costs now. Runs with the
/// transient cache off — this measures the slow path, and warm cached
/// pairs touch no metadata words at all (see `cache_ablation`).
fn validation_ablation() {
    const OPS: u64 = 10_000;
    let h = heap(HeapConfig::new().without_cache());
    // Warm up so steady state excludes sub-heap creation and hash-table
    // level activation.
    let mut warm = Vec::new();
    for _ in 0..64 {
        warm.push(h.alloc(256).expect("warm alloc"));
    }
    for p in warm {
        h.free(p).expect("warm free");
    }
    let before = h.device().stats();
    for _ in 0..OPS {
        let p = h.alloc(256).expect("alloc");
        h.free(p).expect("free");
    }
    let after = h.device().stats();
    let ops = OPS * 2; // each round is one alloc + one free
    let validations = after.validations - before.validations;
    let word_accesses = (after.read_ops + after.write_ops) - (before.read_ops + before.write_ops);
    println!("\nablation/validation-cost (alloc+free hot path, {ops} ops)");
    println!(
        "  per-word (pre-session baseline): {:>8} validations  ({:.2}/op)",
        word_accesses,
        word_accesses as f64 / ops as f64
    );
    println!(
        "  per-op   (checked sessions):     {:>8} validations  ({:.2}/op)",
        validations,
        validations as f64 / ops as f64
    );
}

/// Persistence-batching ablation: sfences and clwbs per operation on the
/// alloc/free hot path. The measured column is the batched two-fence
/// commit; the baselines are modelled from the same run's undo-log
/// counters — per-word is one `clwb`+`sfence` pair per logged 8-byte
/// word (plus the commit fence and generation bump every protocol
/// needs), per-entry is the pre-batching eager code (one pair per log
/// entry plus the same two commit fences). Runs with the transient
/// cache off: this pins the *slow path's* fence budget (the batched
/// commit's 3.00 sfences/op); the cached fast path's 0.00/op is
/// `cache_ablation`'s row.
fn persistence_ablation() {
    const OPS: u64 = 10_000;
    let h = heap(HeapConfig::new().without_cache());
    let mut warm = Vec::new();
    for _ in 0..64 {
        warm.push(h.alloc(256).expect("warm alloc"));
    }
    for p in warm {
        h.free(p).expect("warm free");
    }
    let before = h.device().stats();
    for _ in 0..OPS {
        let p = h.alloc(256).expect("alloc");
        h.free(p).expect("free");
    }
    let after = h.device().stats();
    let ops = OPS * 2;
    let sfences = after.sfence_count - before.sfence_count;
    let clwbs = after.clwb_count - before.clwb_count;
    let entries = after.undo_entries - before.undo_entries;
    let words = after.undo_words - before.undo_words;
    let per_word_sfences = words + 2 * ops;
    let per_entry_sfences = entries + 2 * ops;
    println!("\nablation/persistence-cost (alloc+free hot path, {ops} ops)");
    println!(
        "  per-word  (modelled baseline):   {:>8} sfences      ({:.2}/op)",
        per_word_sfences,
        per_word_sfences as f64 / ops as f64
    );
    println!(
        "  per-entry (pre-batching code):   {:>8} sfences      ({:.2}/op)",
        per_entry_sfences,
        per_entry_sfences as f64 / ops as f64
    );
    println!(
        "  measured  (batched commit):      {:>8} sfences      ({:.2}/op)",
        sfences,
        sfences as f64 / ops as f64
    );
    println!(
        "  measured  (batched commit):      {:>8} clwbs        ({:.2}/op)",
        clwbs,
        clwbs as f64 / ops as f64
    );
    println!(
        "  fence reduction: {:.1}x vs per-word, {:.1}x vs per-entry (pair: {:.0} -> {:.0} sfences)",
        per_word_sfences as f64 / sfences as f64,
        per_entry_sfences as f64 / sfences as f64,
        2.0 * per_word_sfences as f64 / ops as f64,
        2.0 * sfences as f64 / ops as f64
    );
}

/// Transient-cache ablation (DESIGN.md §11): the warm alloc/free pair
/// with the magazine cache on vs off. The cached row's fence, flush and
/// lock columns are the design's acceptance bar — 0.00/op, pure DRAM —
/// while the uncached row is the §9 batched slow path every operation
/// used to take. The hit-rate line shows how much of the cached run the
/// magazines absorbed (the remainder is refill/drain batches, each one
/// two-fence commit amortised over a magazine of blocks).
fn cache_ablation() {
    const OPS: u64 = 10_000;
    println!("\nablation/transient-cache (alloc+free hot path, {} ops)", OPS * 2);
    for (name, config) in [("cache-on", HeapConfig::new()), ("cache-off", HeapConfig::new().without_cache())]
    {
        let h = heap(config);
        pmem::numa::set_current_cpu(0);
        let mut warm = Vec::new();
        for _ in 0..64 {
            warm.push(h.alloc(256).expect("warm alloc"));
        }
        for p in warm {
            h.free(p).expect("warm free");
        }
        let locks_before: u64 = h.contention_profile().iter().map(|p| p.acquisitions).sum();
        let before = h.device().stats();
        let start = std::time::Instant::now();
        for _ in 0..OPS {
            let p = h.alloc(256).expect("alloc");
            h.free(p).expect("free");
        }
        let elapsed = start.elapsed();
        let after = h.device().stats();
        let locks = h.contention_profile().iter().map(|p| p.acquisitions).sum::<u64>() - locks_before;
        let ops = OPS * 2;
        println!(
            "  {:<9} {:>7.0} ns/op, {:>5.2} sfences/op, {:>5.2} clwbs/op, {:>5.2} locks/op",
            name,
            elapsed.as_nanos() as f64 / ops as f64,
            (after.sfence_count - before.sfence_count) as f64 / ops as f64,
            (after.clwb_count - before.clwb_count) as f64 / ops as f64,
            locks as f64 / ops as f64,
        );
        let mut totals = pmem::CacheStats::default();
        for profile in h.contention_profile() {
            if let Some(cache) = profile.cache {
                totals.hits += cache.hits;
                totals.misses += cache.misses;
                totals.refills += cache.refills;
                totals.drains += cache.drains;
            }
        }
        if totals.hits + totals.misses > 0 {
            println!(
                "            cache: {:.1}% hit rate ({} hits, {} misses, {} refills, {} drains)",
                100.0 * totals.hit_rate(),
                totals.hits,
                totals.misses,
                totals.refills,
                totals.drains
            );
        }
    }
}

/// Huge-path ablation: alloc/free cost and fence budget across the
/// sub-heap -> extent-table boundary. The geometry pins the sub-heap
/// cap to 8 MiB so the 1-64 MiB sweep crosses the boundary mid-range;
/// both paths commit through the same batched two-fence undo protocol,
/// so the interesting column is how flat the fence budget stays while
/// the buddy split/merge work is replaced by a first-fit extent walk.
/// The ns/op step at the boundary is the huge free's hole punch: freed
/// extents return their backing pages to the device (and shed any
/// poison), which the buddy path never does.
fn huge_path_ablation() {
    const ROUNDS: u64 = 2_000;
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(512 << 20)));
    let h = PoseidonHeap::create(dev, HeapConfig::new().with_subheaps(16)).expect("heap");
    let max = h.layout().max_alloc();
    println!(
        "\nablation/huge-path (alloc+free rounds, sub-heap cap {} MiB, huge region {} MiB)",
        max >> 20,
        h.layout().huge_data_size() >> 20
    );
    let mut size = 1u64 << 20;
    while size <= 64 << 20 && size <= h.layout().huge_data_size() {
        let p = h.alloc(size).expect("warm alloc");
        h.free(p).expect("warm free");
        let before = h.device().stats();
        let start = std::time::Instant::now();
        for _ in 0..ROUNDS {
            let p = h.alloc(size).expect("alloc");
            h.free(p).expect("free");
        }
        let elapsed = start.elapsed();
        let after = h.device().stats();
        let ops = ROUNDS * 2;
        let sfences = after.sfence_count - before.sfence_count;
        let clwbs = after.clwb_count - before.clwb_count;
        let path = if size > max { "huge " } else { "buddy" };
        println!(
            "  {:>3} MiB [{path}]: {:>8.0} ns/op, {:>6.2} sfences/op, {:>6.2} clwbs/op",
            size >> 20,
            elapsed.as_nanos() as f64 / ops as f64,
            sfences as f64 / ops as f64,
            clwbs as f64 / ops as f64,
        );
        size *= 2;
    }
    let huge = h.huge_audit().expect("huge audit").expect("huge region");
    assert_eq!(huge.alloc_extents, 0, "sweep must leave the extent table empty");
    println!(
        "  extent table after sweep: {} free extent(s), largest {} MiB",
        huge.free_extents,
        huge.largest_free >> 20
    );
}
