//! Bench for the design ablations DESIGN.md calls out: MPK protection
//! on/off and per-CPU sub-heaps vs a single sub-heap.

use std::sync::Arc;

use platform::bench::Harness;
use pmem::{DeviceConfig, PmemDevice};
use poseidon::{HeapConfig, PoseidonHeap};
use workloads::micro::{self, MicroConfig};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn heap(config: HeapConfig) -> PoseidonHeap {
    let dev = Arc::new(PmemDevice::new(DeviceConfig::bench(8 << 30)));
    PoseidonHeap::create(dev, config).expect("heap")
}

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("ablation");
    group.sample_size(10).throughput_elements(THREADS as u64 * OPS_PER_THREAD);
    let variants: [(&str, HeapConfig); 4] = [
        ("mpk-on", HeapConfig::new()),
        ("mpk-off", HeapConfig::new().without_protection()),
        ("per-cpu-subheaps", HeapConfig::new()),
        ("single-subheap", HeapConfig::new().with_subheaps(1)),
    ];
    for (name, config) in variants {
        let h = heap(config);
        group.bench(name, || {
            micro::run(&h, MicroConfig::new(256, THREADS, OPS_PER_THREAD));
        });
    }
    group.finish();
}
