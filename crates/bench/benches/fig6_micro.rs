//! Figure 6 bench: the random 100-alloc/100-free microbenchmark across
//! allocation sizes and allocators.

use bench::fresh_allocator;
use platform::bench::Harness;
use workloads::micro::{self, MicroConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("fig6_micro");
    group.sample_size(10).throughput_elements(THREADS as u64 * OPS_PER_THREAD);
    for kind in AllocatorKind::ALL {
        for &size in &[256u64, 4 << 10, 256 << 10] {
            let alloc = fresh_allocator(kind, 32);
            group.bench(&format!("{}/{size}B", kind.name()), || {
                micro::run(&*alloc, MicroConfig::new(size, THREADS, OPS_PER_THREAD));
            });
        }
    }
    group.finish();
}
