//! Criterion bench for Figure 6: the random 100-alloc/100-free
//! microbenchmark across allocation sizes and allocators.

use bench::fresh_allocator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::micro::{self, MicroConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_micro");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        for &size in &[256u64, 4 << 10, 256 << 10] {
            let alloc = fresh_allocator(kind, 32);
            group.throughput(Throughput::Elements(THREADS as u64 * OPS_PER_THREAD));
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{size}B")),
                &size,
                |b, &size| {
                    b.iter(|| micro::run(&*alloc, MicroConfig::new(size, THREADS, OPS_PER_THREAD)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
