//! Figure 9 bench: YCSB Load and Workload A over the FAST-FAIR-style
//! persistent B+-tree.

use bench::fresh_allocator;
use platform::bench::Harness;
use workloads::ycsb::{self, YcsbConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const LOAD_KEYS: u64 = 20_000;
const OPS_PER_THREAD: u64 = 5_000;

fn main() {
    let harness = Harness::from_args();
    let mut group = harness.group("fig9_ycsb");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        group.throughput_elements(LOAD_KEYS);
        group.bench(&format!("load/{}", kind.name()), || {
            let alloc = fresh_allocator(kind, 32);
            ycsb::run_load(&alloc, YcsbConfig::new(THREADS, LOAD_KEYS, 0));
        });
        // Workload A over a pre-loaded tree.
        let alloc = fresh_allocator(kind, 32);
        let config = YcsbConfig::new(THREADS, LOAD_KEYS, OPS_PER_THREAD);
        let (tree, _) = ycsb::run_load(&alloc, config);
        group.throughput_elements(THREADS as u64 * OPS_PER_THREAD);
        group.bench(&format!("workload_a/{}", kind.name()), || {
            ycsb::run_workload_a(&tree, config);
        });
    }
    group.finish();
}
