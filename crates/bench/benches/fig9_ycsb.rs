//! Criterion bench for Figure 9: YCSB Load and Workload A over the
//! FAST-FAIR-style persistent B+-tree.

use bench::fresh_allocator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workloads::ycsb::{self, YcsbConfig};
use workloads::AllocatorKind;

const THREADS: usize = 4;
const LOAD_KEYS: u64 = 20_000;
const OPS_PER_THREAD: u64 = 5_000;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_ycsb");
    group.sample_size(10);
    for kind in AllocatorKind::ALL {
        group.throughput(Throughput::Elements(LOAD_KEYS));
        group.bench_function(BenchmarkId::new("load", kind.name()), |b| {
            b.iter(|| {
                let alloc = fresh_allocator(kind, 32);
                ycsb::run_load(&alloc, YcsbConfig::new(THREADS, LOAD_KEYS, 0))
            });
        });
        // Workload A over a pre-loaded tree.
        let alloc = fresh_allocator(kind, 32);
        let config = YcsbConfig::new(THREADS, LOAD_KEYS, OPS_PER_THREAD);
        let (tree, _) = ycsb::run_load(&alloc, config);
        group.throughput(Throughput::Elements(THREADS as u64 * OPS_PER_THREAD));
        group.bench_function(BenchmarkId::new("workload_a", kind.name()), |b| {
            b.iter(|| ycsb::run_workload_a(&tree, config));
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
