//! Crash-fuzz support: undo-chain decoding for the out-of-tree
//! `crashfuzz` harness.
//!
//! Hidden from the public API (`#[doc(hidden)]` at the `mod`
//! declaration): the harness needs to inspect undo-log internals to
//! check the batched-persistence ordering invariant — *a missing or
//! torn log entry implies no target of the operation was mutated* — and
//! nothing else should depend on these details. Chains are decoded with
//! the same `read_entry` validation recovery uses, so the harness and
//! the allocator can never disagree about what counts as a live entry.

use pmem::PmemDevice;

use crate::layout::HeapLayout;
use crate::persist::{HugeCtx, SubCtx};
use crate::superblock;
use crate::undo::{self, UndoArea};

/// One live undo-log entry: the target range's offset and logged
/// pre-image.
#[derive(Debug, Clone)]
pub struct UndoChainEntry {
    /// Device offset the entry would restore.
    pub target: u64,
    /// The logged original bytes.
    pub old: Vec<u8>,
}

/// Decodes the live entry chain of every undo area of a heap with
/// geometry `layout` — the superblock's area first, then one per
/// sub-heap, then (when the layout carves a huge region) the huge
/// region's area. An area that cannot be read (e.g. a poisoned line)
/// decodes to `None`.
///
/// Readable both before and after [`PmemDevice::simulate_crash`]:
/// before, it sees the in-cache (DRAM) chain a crashed operation left
/// behind; after, only what survived to media.
pub fn undo_chains(dev: &PmemDevice, layout: &HeapLayout) -> Vec<Option<Vec<UndoChainEntry>>> {
    let mut areas = vec![superblock::undo_area()];
    for sub in 0..layout.num_subheaps() {
        areas.push(SubCtx { dev, layout, sub }.undo_area());
    }
    if layout.huge_data_size() > 0 {
        areas.push(HugeCtx { dev, layout }.undo_area());
    }
    areas.into_iter().map(|area| decode_chain(dev, area)).collect()
}

/// Rewrites a closed, never-grown pool image into the version-1 byte
/// format (pre-epoch-chain). Test support: integration tests downgrade
/// a freshly created pool, save/reload the bytes, and reopen to pin the
/// v1→v2 migration path. Errors on anything but a clean single-epoch
/// v2 image.
pub fn downgrade_to_v1(dev: &PmemDevice) -> crate::error::Result<()> {
    superblock::downgrade_to_v1(dev)
}

fn decode_chain(dev: &PmemDevice, area: UndoArea) -> Option<Vec<UndoChainEntry>> {
    let gen: u64 = dev.read_pod(area.gen_field).ok()?;
    let mut entries = Vec::new();
    let mut pos = 0u64;
    loop {
        match undo::read_entry(dev, area, gen, pos) {
            Ok(Some((target, _len, old, entry_len))) => {
                entries.push(UndoChainEntry { target, old });
                pos += entry_len;
            }
            Ok(None) => break,
            Err(_) => return None, // unreadable area (e.g. poison)
        }
    }
    Some(entries)
}
