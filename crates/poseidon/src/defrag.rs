//! Local defragmentation (§5.4).
//!
//! Poseidon defragments a *single sub-heap*, never globally, in two
//! situations:
//!
//! 1. **No free block of the requested class** — free blocks in smaller
//!    classes are merged with their buddies, cascading upward, until the
//!    request can be served ([`merge_all_below`]).
//! 2. **A hash-table probe window is full** — the free blocks within the
//!    window are merged; every merge tombstones one record, freeing a
//!    slot ([`compact_windows`]).
//!
//! Blocks are classic binary buddies: a block of size `s` at sub-heap
//! offset `o` (always `s`-aligned) merges with the block at `o ^ s` iff
//! that block exists, is free, and has the same size. Each merge runs in
//! its own undo scope, so the heap is consistent between merges and a
//! crash mid-defragmentation loses nothing.

use crate::buddy;
use crate::error::Result;
use crate::hashtable;
use crate::layout::class_for_size;
use crate::persist::{state, FLAG_CACHED};
use crate::session::OpSession;

/// Merges the FREE block recorded at `rec_off` with its buddy, cascading
/// to larger classes while possible. Returns the number of merges.
///
/// Cache-managed records (`FLAG_CACHED`) are ineligible on either side:
/// they are media-FREE but *withdrawn* from the free lists, so unlinking
/// one here would corrupt list pointers — and the block may be in the
/// application's hands via the cached fast path.
pub(crate) fn merge_cascade(op: &OpSession<'_>, mut rec_off: u64) -> Result<u64> {
    let mut merged = 0;
    while let Some((surv_off, _)) = merge_once(op, rec_off)? {
        merged += 1;
        rec_off = surv_off;
    }
    Ok(merged)
}

/// One bounded unit of coalescing (one two-fence undo scope): merges the
/// FREE block recorded at `rec_off` with its buddy if eligible. Returns
/// the surviving record offset and the merged block's new size, or
/// `None` when no merge is possible. [`merge_cascade`] is this in a
/// loop; the maintenance engine calls it directly so every unit lands
/// inside its budget.
pub(crate) fn merge_once(op: &OpSession<'_>, rec_off: u64) -> Result<Option<(u64, u64)>> {
    let rec = op.entry(rec_off)?;
    if rec.state != state::FREE || rec.flags & FLAG_CACHED != 0 {
        return Ok(None);
    }
    let buddy_key = rec.offset ^ rec.size;
    let Some((buddy_off, buddy_rec)) = hashtable::lookup(op, buddy_key)? else {
        return Ok(None);
    };
    if buddy_rec.state != state::FREE || buddy_rec.flags & FLAG_CACHED != 0 || buddy_rec.size != rec.size {
        return Ok(None);
    }

    // Survivor is the lower half; the upper half's record is deleted.
    let (surv_off, mut surv, loser_off, loser) = if rec.offset < buddy_rec.offset {
        (rec_off, rec, buddy_off, buddy_rec)
    } else {
        (buddy_off, buddy_rec, rec_off, rec)
    };

    let mut scope = op.undo()?;
    buddy::unlink(op, &mut scope, surv_off, &surv)?;
    // Unlinking the survivor may have rewritten the loser's links
    // (they can be neighbours in the same class list): reload it.
    let loser_now = op.entry(loser_off)?;
    debug_assert_eq!(loser_now.offset, loser.offset);
    buddy::unlink(op, &mut scope, loser_off, &loser_now)?;
    hashtable::delete(op, &mut scope, loser_off)?;
    surv.size *= 2;
    surv.state = state::FREE;
    buddy::push_tail(op, &mut scope, surv_off, &mut surv)?;
    scope.commit()?;
    Ok(Some((surv_off, surv.size)))
}

/// Trigger 1 (§5.4): merges buddies in every class **below** `class`,
/// hoping to assemble a block large enough. Returns the number of merges.
pub(crate) fn merge_all_below(op: &OpSession<'_>, class: usize) -> Result<u64> {
    let mut merged = 0;
    for k in 0..class {
        // Snapshot, then re-validate each record: earlier merges may have
        // consumed or grown entries from this list.
        for rec_off in buddy::collect(op, k)? {
            let rec = op.entry(rec_off)?;
            if rec.state == state::FREE && class_for_size(rec.size)?.0 == k {
                merged += merge_cascade(op, rec_off)?;
            }
        }
    }
    Ok(merged)
}

/// Trigger 2 (§5.4): merges the free blocks found in `key`'s probe
/// windows so an insert of `key` can find a slot. Returns the number of
/// merges.
pub(crate) fn compact_windows(op: &OpSession<'_>, key: u64) -> Result<u64> {
    let mut merged = 0;
    for (rec_off, rec) in hashtable::free_in_windows(op, key)? {
        let now = op.entry(rec_off)?;
        if now.state == state::FREE && now.offset == rec.offset {
            merged += merge_cascade(op, rec_off)?;
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::persist::{HashEntry, SubCtx};
    use pmem::{DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        dev.write_pod(ctx.active_levels_off(), &1u64).unwrap();
        (dev, layout)
    }

    fn add(op: &OpSession<'_>, off: u64, size: u64, st: u32) -> u64 {
        let mut s = op.undo().unwrap();
        let mut rec = HashEntry { offset: off, size, state: st, ..Default::default() };
        let rec_off = hashtable::insert(op, &mut s, rec, false).unwrap();
        if st == state::FREE {
            buddy::push_tail(op, &mut s, rec_off, &mut rec).unwrap();
        }
        s.commit().unwrap();
        rec_off
    }

    #[test]
    fn two_free_buddies_merge() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add(&op, 0, 64, state::FREE);
        add(&op, 64, 64, state::FREE);
        assert!(merge_cascade(&op, a).unwrap() > 0);
        let (_, merged) = hashtable::lookup(&op, 0).unwrap().unwrap();
        assert_eq!(merged.size, 128);
        assert_eq!(merged.state, state::FREE);
        assert!(hashtable::lookup(&op, 64).unwrap().is_none());
        // It sits in the 128-byte list now.
        let (c128, _) = class_for_size(128).unwrap();
        assert_eq!(buddy::collect(&op, c128).unwrap().len(), 1);
        let (c64, _) = class_for_size(64).unwrap();
        assert!(buddy::collect(&op, c64).unwrap().is_empty());
    }

    #[test]
    fn merge_cascades_upward() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        // Four free 64 B blocks covering [0, 256): cascade to one 256 B.
        let a = add(&op, 0, 64, state::FREE);
        add(&op, 64, 64, state::FREE);
        add(&op, 128, 64, state::FREE);
        add(&op, 192, 64, state::FREE);
        // First cascade: 0+64 -> 128-size block at 0; buddy at 128 is only
        // 64 bytes, so the cascade pauses there.
        merge_cascade(&op, a).unwrap();
        // Merge the right pair too, then cascade again.
        let (right_off, _) = hashtable::lookup(&op, 128).unwrap().unwrap();
        merge_cascade(&op, right_off).unwrap();
        let (_, merged) = hashtable::lookup(&op, 0).unwrap().unwrap();
        assert_eq!(merged.size, 256);
    }

    #[test]
    fn allocated_or_mismatched_buddies_do_not_merge() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add(&op, 0, 64, state::FREE);
        add(&op, 64, 64, state::ALLOC);
        assert_eq!(merge_cascade(&op, a).unwrap(), 0);
        // Different size: 128 at offset 128 is not the buddy of 64 at 0.
        let b = add(&op, 256, 64, state::FREE);
        add(&op, 320, 128, state::FREE); // overlapping nonsense aside, sizes differ
        assert_eq!(merge_cascade(&op, b).unwrap(), 0);
    }

    #[test]
    fn merge_all_below_assembles_larger_blocks() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        for i in 0..8 {
            add(&op, i * 64, 64, state::FREE);
        }
        let (c512, _) = class_for_size(512).unwrap();
        assert!(buddy::head(&op, c512).unwrap() == 0);
        assert!(merge_all_below(&op, c512).unwrap() > 0);
        let (_, big) = hashtable::lookup(&op, 0).unwrap().unwrap();
        assert_eq!(big.size, 512);
        assert_ne!(buddy::head(&op, c512).unwrap(), 0);
    }

    #[test]
    fn compact_windows_merges_only_window_blocks() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let _ = add(&op, 0, 64, state::FREE);
        add(&op, 64, 64, state::FREE);
        // Compacting around key 0 must at least merge the [0,128) pair if
        // it sits in the window.
        compact_windows(&op, 0).unwrap();
        let (_, e) = hashtable::lookup(&op, 0).unwrap().unwrap();
        assert_eq!(e.size, 128);
    }

    #[test]
    fn adjacent_same_class_list_neighbours_merge_safely() {
        // The survivor and loser are adjacent in the same free list — the
        // reload-after-unlink path must handle their link updates.
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let a = add(&op, 0, 64, state::FREE);
        let b = add(&op, 64, 64, state::FREE);
        let (c64, _) = class_for_size(64).unwrap();
        assert_eq!(buddy::collect(&op, c64).unwrap(), vec![a, b]);
        assert!(merge_cascade(&op, a).unwrap() > 0);
        assert!(buddy::collect(&op, c64).unwrap().is_empty());
    }
}
