//! The micro log: transactional-allocation history (§4.5, §5.3).
//!
//! `tx_alloc` appends each allocated pointer to a micro-log *slot*
//! claimed by the transaction (the paper's per-thread micro log),
//! through the same undo scope as the allocation — so an aborted
//! allocation also reverts its log entry. Committing truncates the slot
//! with a single atomic count reset. On recovery, a non-empty slot means
//! its transaction never committed: every logged address is freed,
//! preventing a persistent leak. Slots make concurrent transactions on
//! one sub-heap independent: each commits or aborts only its own log.

use crate::error::{PoseidonError, Result};
use crate::layout::{MICRO_LOG_CAPACITY, MICRO_SLOTS};
use crate::nvmptr::NvmPtr;
use crate::session::{OpSession, UndoScope};

/// Number of pointers currently logged in `slot`.
pub(crate) fn count(op: &OpSession<'_>, slot: usize) -> Result<u64> {
    op.read_pod(op.ctx.micro_count_off(slot))
}

/// Appends `ptr` to `slot` through the open undo scope.
///
/// # Errors
///
/// [`PoseidonError::TxTooLarge`] if the slot is full.
pub(crate) fn append(
    op: &OpSession<'_>,
    scope: &mut UndoScope<'_, '_>,
    slot: usize,
    ptr: NvmPtr,
) -> Result<()> {
    let n = count(op, slot)?;
    if n as usize >= MICRO_LOG_CAPACITY {
        return Err(PoseidonError::TxTooLarge { max: MICRO_LOG_CAPACITY });
    }
    scope.log_and_write_pod(op.ctx.micro_entry_off(slot, n), &ptr)?;
    scope.log_and_write_pod(op.ctx.micro_count_off(slot), &(n + 1))
}

/// Truncates `slot` — the transaction's commit point. A single 8-byte
/// persisted store, hence atomic, and local to this transaction.
pub(crate) fn truncate(op: &OpSession<'_>, slot: usize) -> Result<()> {
    op.view().write_pod(op.ctx.micro_count_off(slot), &0u64)?;
    op.view().persist(op.ctx.micro_count_off(slot), 8)?;
    Ok(())
}

/// Reads all logged pointers of `slot` (for recovery/abort).
pub(crate) fn entries(op: &OpSession<'_>, slot: usize) -> Result<Vec<NvmPtr>> {
    let n = count(op, slot)?;
    if n as usize > MICRO_LOG_CAPACITY {
        return Err(PoseidonError::Corrupted("micro log count beyond capacity"));
    }
    (0..n).map(|i| op.read_pod(op.ctx.micro_entry_off(slot, i))).collect()
}

/// Device-backed twin of [`entries`] for the offline repair pass, which
/// deliberately runs without a session (see `repair.rs`).
pub(crate) fn entries_direct(ctx: &crate::persist::SubCtx<'_>, slot: usize) -> Result<Vec<NvmPtr>> {
    let n: u64 = ctx.dev.read_pod(ctx.micro_count_off(slot))?;
    if n as usize > MICRO_LOG_CAPACITY {
        return Err(PoseidonError::Corrupted("micro log count beyond capacity"));
    }
    (0..n).map(|i| Ok(ctx.dev.read_pod(ctx.micro_entry_off(slot, i))?)).collect()
}

/// Iterates every slot (for recovery).
pub(crate) fn all_slots() -> std::ops::Range<usize> {
    0..MICRO_SLOTS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HeapLayout;
    use crate::persist::SubCtx;
    use pmem::{DeviceConfig, PmemDevice};

    fn setup() -> (PmemDevice, HeapLayout) {
        let layout = HeapLayout::compute(64 << 20, 2).unwrap();
        let dev = PmemDevice::new(DeviceConfig::new(64 << 20));
        (dev, layout)
    }

    #[test]
    fn append_read_truncate_per_slot() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let mut s = op.undo().unwrap();
        append(&op, &mut s, 3, NvmPtr::new(9, 0, 64)).unwrap();
        append(&op, &mut s, 3, NvmPtr::new(9, 0, 128)).unwrap();
        append(&op, &mut s, 7, NvmPtr::new(9, 0, 256)).unwrap();
        s.commit().unwrap();
        assert_eq!(count(&op, 3).unwrap(), 2);
        assert_eq!(count(&op, 7).unwrap(), 1);
        assert_eq!(entries(&op, 3).unwrap()[1].offset(), 128);
        // Truncating one slot leaves the other intact.
        truncate(&op, 3).unwrap();
        assert_eq!(count(&op, 3).unwrap(), 0);
        assert_eq!(count(&op, 7).unwrap(), 1);
    }

    #[test]
    fn aborted_scope_reverts_appends() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        let mut s = op.undo().unwrap();
        append(&op, &mut s, 0, NvmPtr::new(9, 0, 64)).unwrap();
        s.abort().unwrap();
        assert_eq!(count(&op, 0).unwrap(), 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        dev.write_pod(op.ctx.micro_count_off(5), &(MICRO_LOG_CAPACITY as u64)).unwrap();
        let mut s = op.undo().unwrap();
        let r = append(&op, &mut s, 5, NvmPtr::new(9, 0, 64));
        assert!(matches!(r, Err(PoseidonError::TxTooLarge { .. })));
        drop(s);
    }

    #[test]
    fn corrupt_count_is_detected() {
        let (dev, layout) = setup();
        let op = OpSession::unguarded(SubCtx { dev: &dev, layout: &layout, sub: 0 }).unwrap();
        dev.write_pod(op.ctx.micro_count_off(2), &u64::MAX).unwrap();
        assert!(matches!(entries(&op, 2), Err(PoseidonError::Corrupted(_))));
    }

    #[test]
    fn slots_do_not_overlap() {
        let (dev, layout) = setup();
        let ctx = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let last = MICRO_SLOTS - 1;
        assert!(
            ctx.micro_entry_off(last, MICRO_LOG_CAPACITY as u64 - 1) + 16
                <= ctx.meta_base() + crate::layout::SH_TABLE_OFF
        );
        for slot in 0..MICRO_SLOTS - 1 {
            assert!(
                ctx.micro_entry_off(slot, MICRO_LOG_CAPACITY as u64 - 1) + 16
                    <= ctx.micro_count_off(slot + 1)
            );
        }
    }
}
