//! The transient caching layer: lock-free per-CPU magazines and transfer
//! pools in front of the persistent buddy allocator.
//!
//! The persistent slow path pays a sub-heap mutex, a metadata-range
//! validation, and a two-fence undo commit per operation. This layer
//! amortises all three: a *magazine* of recently freed blocks per CPU and
//! a lock-free *transfer pool* per sub-heap serve repeat
//! allocate/free cycles with a handful of atomic operations — **zero
//! locks, zero fences, zero device traffic**.
//!
//! Everything here is DRAM-only. The persistent invariant is brutal on
//! purpose: every cache-managed block stays `FREE` on media, carrying
//! [`FLAG_CACHED`](crate::persist::FLAG_CACHED) and unlinked from its
//! buddy list (withdrawn in one batched, undo-logged *refill*). A crash
//! at any instant therefore needs no cache-specific recovery — load-time
//! reconciliation just relinks flagged records as free. The flip side is
//! the durability contract: a cached allocation that was never
//! *published* (via `set_root` or a clean close, which flip checked-out
//! blocks to `ALLOC` in one batch) evaporates across a crash, exactly
//! like a DRAM `malloc`.
//!
//! Block ownership is tracked by a per-sub-heap **residency map**: a
//! lazily chunked array of one atomic byte per 32-byte granule of user
//! space (`0` = not cache-managed, `0x80|class` = resident/free,
//! `0x40|class` = checked out to the application). The cached free is a
//! single CAS on that byte — which also gives the fast path the same
//! double-free protection the table gives the slow path.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use platform::lockfree::SlotPool;
use platform::percpu::PerCpuSlots;
use pmem::contention::CacheStats;
use pmem::numa;

use crate::error::{PoseidonError, Result};
use crate::heap::PoseidonHeap;
use crate::layout::{class_for_size, class_size, HeapLayout, MAX_SUBHEAPS, MIN_BLOCK};
use crate::nvmptr::NvmPtr;
use crate::subheap::{self, CacheResidency};

/// Configuration of the transient caching layer (see [`crate::HeapConfig`]).
///
/// The cache is volatile and bounded: per CPU at most `magazine_size`
/// blocks per size class, plus one transfer pool of `max_cached_per_class`
/// slots per sub-heap and class. Classes whose worst-case cache footprint
/// would eat a meaningful fraction of the sub-heap degrade to cache
/// bypass automatically, so a tiny pool never OOMs behind the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Whether the caching layer is built at all. Disabled, every
    /// operation takes the undo-logged slow path (the PR-4 behaviour).
    pub enabled: bool,
    /// Blocks held per CPU magazine and size class; also the batch a
    /// cache miss withdraws under one two-fence commit.
    pub magazine_size: usize,
    /// Capacity of each per-sub-heap, per-class transfer pool (the
    /// overflow and cross-CPU free destination). A full pool drains back
    /// to the persistent free lists in one batch.
    pub max_cached_per_class: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { enabled: true, magazine_size: 32, max_cached_per_class: 128 }
    }
}

/// Number of buddy classes the cache fronts: classes 0..=7, i.e. blocks
/// up to `32 << 7` = 4 KiB — the sizes where per-operation overhead
/// dominates. Larger blocks always take the slow path.
pub(crate) const CACHEABLE_CLASSES: usize = 8;

/// User space covered by one lazily allocated residency-map chunk.
const CHUNK_BYTES: u64 = 2 << 20;
const CHUNK_GRANULES: usize = (CHUNK_BYTES / MIN_BLOCK) as usize;

const RESIDENT: u8 = 0x80;
const CHECKED_OUT: u8 = 0x40;
const KIND_MASK: u8 = 0xC0;
const CLASS_MASK: u8 = 0x3F;

/// One residency-map chunk: a byte per 32-byte granule.
struct Chunk([AtomicU8; CHUNK_GRANULES]);

/// Per-sub-heap residency map: chunk directory with CAS-installed, leaked
/// chunks (freed in [`Drop`]). Only the head granule of a block carries
/// its byte, so interior pointers never match.
struct ResidencyMap {
    chunks: Box<[AtomicPtr<Chunk>]>,
}

impl ResidencyMap {
    fn new(user_size: u64) -> ResidencyMap {
        let n = user_size.div_ceil(CHUNK_BYTES) as usize;
        ResidencyMap { chunks: (0..n).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect() }
    }

    /// The byte for `offset`, if its chunk exists (read paths; offsets
    /// out of range — e.g. from an invalid pointer — return `None`).
    /// Misaligned offsets also return `None`: a forged interior pointer
    /// like `head + 8` must not divide down to the head's byte — the slow
    /// path rejects it with a metadata lookup instead.
    fn granule(&self, offset: u64) -> Option<&AtomicU8> {
        if !offset.is_multiple_of(MIN_BLOCK) {
            return None;
        }
        let g = (offset / MIN_BLOCK) as usize;
        let p = self.chunks.get(g / CHUNK_GRANULES)?.load(Ordering::Acquire);
        if p.is_null() {
            return None;
        }
        // SAFETY: a non-null chunk pointer was CAS-installed from
        // `Box::into_raw` and is only freed in `Drop`, which requires
        // `&mut self` — no outstanding shared borrow can coexist with it.
        Some(unsafe { &(*p).0[g % CHUNK_GRANULES] })
    }

    /// The byte for `offset`, installing its chunk first if needed (used
    /// on refill, where offsets come from the allocator and are in
    /// bounds).
    fn granule_or_install(&self, offset: u64) -> &AtomicU8 {
        let g = (offset / MIN_BLOCK) as usize;
        let slot = &self.chunks[g / CHUNK_GRANULES];
        let mut p = slot.load(Ordering::Acquire);
        if p.is_null() {
            let fresh = Box::into_raw(Box::new(Chunk(std::array::from_fn(|_| AtomicU8::new(0)))));
            match slot.compare_exchange(std::ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => p = fresh,
                Err(winner) => {
                    // SAFETY: `fresh` was never published; we still own it.
                    drop(unsafe { Box::from_raw(fresh) });
                    p = winner;
                }
            }
        }
        // SAFETY: as in `granule`.
        unsafe { &(*p).0[g % CHUNK_GRANULES] }
    }

    /// Visits every byte of every installed chunk with its user-region
    /// offset.
    fn for_each(&self, mut f: impl FnMut(u64, &AtomicU8)) {
        for (ci, slot) in self.chunks.iter().enumerate() {
            let p = slot.load(Ordering::Acquire);
            if p.is_null() {
                continue;
            }
            // SAFETY: as in `granule`.
            let chunk = unsafe { &*p };
            for (i, byte) in chunk.0.iter().enumerate() {
                f((ci * CHUNK_GRANULES + i) as u64 * MIN_BLOCK, byte);
            }
        }
    }
}

impl Drop for ResidencyMap {
    fn drop(&mut self) {
        for slot in self.chunks.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: the pointer came from `Box::into_raw` and is
                // dropped exactly once (swapped out above).
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// One CPU's magazines: a bounded LIFO of resident block offsets per
/// cacheable class. Only blocks of one sub-heap live here at a time.
struct Magazine {
    /// Which sub-heap the parked rounds belong to. Routing can re-home a
    /// CPU when [`PoseidonHeap::grow`](crate::PoseidonHeap::grow) enlarges
    /// the sub-heap set, so the invariant is *not* "home == current
    /// routing" — it is that every offset in `rounds` belongs to `home`,
    /// whatever the routing says today. `u16::MAX` means unhomed (empty).
    home: u16,
    rounds: [Vec<u64>; CACHEABLE_CLASSES],
}

impl Default for Magazine {
    fn default() -> Magazine {
        Magazine { home: u16::MAX, rounds: Default::default() }
    }
}

/// Per-sub-heap cache state.
struct SubCache {
    map: ResidencyMap,
    /// One lock-free transfer pool per cacheable class: overflow from
    /// magazines and the landing zone for cross-CPU frees.
    pools: Box<[SlotPool]>,
    hits: AtomicU64,
    misses: AtomicU64,
    refills: AtomicU64,
    drains: AtomicU64,
}

impl SubCache {
    fn new(config: &CacheConfig, user_size: u64) -> SubCache {
        SubCache {
            map: ResidencyMap::new(user_size),
            pools: (0..CACHEABLE_CLASSES)
                .map(|_| SlotPool::new(config.max_cached_per_class.max(1)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            drains: AtomicU64::new(0),
        }
    }
}

/// What [`HeapCache::try_free`] did with a free request.
pub(crate) enum CachedFree {
    /// Absorbed into a magazine or pool — done, nothing touched media.
    Hit,
    /// The residency map says the block is already free in the cache.
    DoubleFree,
    /// Not cache-managed: take the slow path.
    Miss,
    /// Absorbed, but the pool overflowed: the caller must drain this
    /// batch (now exclusively owned by it) through the slow path.
    Drain(Vec<u64>),
}

/// The whole caching layer of one heap (DRAM-only; rebuilt empty on every
/// load).
pub(crate) struct HeapCache {
    pub(crate) config: CacheConfig,
    magazines: PerCpuSlots<Magazine>,
    /// Lazily materialised per-sub-heap state, pre-sized for the largest
    /// sub-heap set an epoch chain can reach so `grow` never reallocates
    /// (fast paths index this slice without any lock).
    subs: Box<[OnceLock<SubCache>]>,
    /// Per-class cache eligibility: a class whose worst-case footprint
    /// would hog the sub-heap is bypassed (tiny-pool degradation).
    cacheable: [bool; CACHEABLE_CLASSES],
    /// Uniform per-sub-heap user size (shared by every epoch).
    user_size: u64,
}

impl HeapCache {
    pub(crate) fn new(config: CacheConfig, layout: &HeapLayout, num_cpus: usize) -> HeapCache {
        let mut cacheable = [false; CACHEABLE_CLASSES];
        for (class, ok) in cacheable.iter_mut().enumerate() {
            let footprint = ((config.max_cached_per_class + 2 * config.magazine_size) as u64)
                .saturating_mul(class_size(class));
            *ok = config.magazine_size > 0 && footprint <= layout.user_size / 8;
        }
        HeapCache {
            config,
            magazines: PerCpuSlots::new(num_cpus.max(1), |_| Magazine::default()),
            subs: (0..MAX_SUBHEAPS).map(|_| OnceLock::new()).collect(),
            cacheable,
            user_size: layout.user_size,
        }
    }

    /// The sub-heap's cache state, materialising it on first touch.
    fn sub_cache(&self, sub: u16) -> &SubCache {
        self.subs[sub as usize].get_or_init(|| SubCache::new(&self.config, self.user_size))
    }

    /// The sub-heap's cache state only if something already touched it.
    fn existing(&self, sub: u16) -> Option<&SubCache> {
        self.subs[sub as usize].get()
    }

    /// Runs `f` on `cpu`'s magazine once it is homed on `sub`. A magazine
    /// still holding another sub-heap's rounds first spills them to *that*
    /// sub-heap's transfer pools (they must never change owners); rounds
    /// that do not fit keep the old home and `f` is skipped this round.
    fn with_homed_magazine<R>(&self, cpu: usize, sub: u16, f: impl FnOnce(&mut Magazine) -> R) -> Option<R> {
        self.magazines
            .try_with(cpu, |m| {
                if m.home != sub {
                    if m.home != u16::MAX {
                        let old = self.sub_cache(m.home);
                        for (class, v) in m.rounds.iter_mut().enumerate() {
                            v.retain(|&offset| old.pools[class].push(offset).is_err());
                        }
                        if m.rounds.iter().any(|v| !v.is_empty()) {
                            return None;
                        }
                    }
                    m.home = sub;
                }
                Some(f(m))
            })
            .flatten()
    }

    pub(crate) fn is_cacheable(&self, class: usize) -> bool {
        class < CACHEABLE_CLASSES && self.cacheable[class]
    }

    /// The lock-free allocation fast path: pop the CPU's magazine (home
    /// sub-heap only), then the sub-heap's transfer pool. On success the
    /// block's map byte flips to checked-out. `None` is a miss (counted);
    /// the caller refills through the slow path.
    pub(crate) fn try_alloc(&self, cpu: usize, sub: u16, home: bool, class: usize) -> Option<u64> {
        let sc = self.sub_cache(sub);
        let from_magazine =
            if home { self.with_homed_magazine(cpu, sub, |m| m.rounds[class].pop()).flatten() } else { None };
        match from_magazine.or_else(|| sc.pools[class].pop()) {
            Some(offset) => {
                // We own the popped block exclusively; hand it out.
                sc.map.granule_or_install(offset).store(CHECKED_OUT | class as u8, Ordering::Release);
                sc.hits.fetch_add(1, Ordering::Relaxed);
                Some(offset)
            }
            None => {
                sc.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The lock-free free fast path: one CAS on the residency byte
    /// (checked-out → resident) claims the block, then it parks in the
    /// CPU's magazine or the sub-heap's pool. The byte also adjudicates
    /// double frees without any metadata read.
    pub(crate) fn try_free(&self, cpu: usize, sub: u16, home: bool, offset: u64) -> CachedFree {
        let Some(sc) = self.existing(sub) else { return CachedFree::Miss };
        let Some(byte) = sc.map.granule(offset) else { return CachedFree::Miss };
        let mut cur = byte.load(Ordering::Acquire);
        loop {
            match cur & KIND_MASK {
                CHECKED_OUT => {
                    let class = (cur & CLASS_MASK) as usize;
                    match byte.compare_exchange(
                        cur,
                        RESIDENT | class as u8,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            sc.hits.fetch_add(1, Ordering::Relaxed);
                            return self.park(cpu, sub, home, class, offset);
                        }
                        Err(now) => cur = now,
                    }
                }
                RESIDENT => return CachedFree::DoubleFree,
                _ => return CachedFree::Miss,
            }
        }
    }

    /// Parks a claimed block: magazine (home CPU, space permitting), then
    /// pool; a full pool is handed back as a drain batch.
    fn park(&self, cpu: usize, sub: u16, home: bool, class: usize, offset: u64) -> CachedFree {
        if home {
            let cap = self.config.magazine_size;
            let parked = self.with_homed_magazine(cpu, sub, |m| {
                let v = &mut m.rounds[class];
                if v.len() < cap {
                    v.push(offset);
                    true
                } else {
                    false
                }
            });
            if parked == Some(true) {
                return CachedFree::Hit;
            }
        }
        let sc = self.sub_cache(sub);
        if sc.pools[class].push(offset).is_ok() {
            return CachedFree::Hit;
        }
        let mut batch = vec![offset];
        sc.pools[class].drain_into(&mut batch);
        CachedFree::Drain(batch)
    }

    /// Records a fresh refill batch in the residency map: the first block
    /// is checked out (it is about to be returned to the caller), the
    /// rest are resident. Called under the sub-heap lock, right after the
    /// persistent withdrawal commits.
    pub(crate) fn admit(&self, sub: u16, class: usize, offsets: &[u64]) {
        let sc = self.sub_cache(sub);
        for (i, &offset) in offsets.iter().enumerate() {
            let kind = if i == 0 { CHECKED_OUT } else { RESIDENT };
            sc.map.granule_or_install(offset).store(kind | class as u8, Ordering::Release);
        }
    }

    /// Parks refilled resident blocks (magazine first, then pool) and
    /// returns whatever fit nowhere — the caller drains that overflow
    /// back while it still holds the sub-heap lock.
    pub(crate) fn stash(&self, cpu: usize, sub: u16, home: bool, class: usize, rest: &[u64]) -> Vec<u64> {
        let sc = self.sub_cache(sub);
        let mut rest: Vec<u64> = rest.to_vec();
        if home {
            let cap = self.config.magazine_size;
            self.with_homed_magazine(cpu, sub, |m| {
                let v = &mut m.rounds[class];
                while v.len() < cap {
                    match rest.pop() {
                        Some(offset) => v.push(offset),
                        None => break,
                    }
                }
            });
        }
        rest.retain(|&offset| sc.pools[class].push(offset).is_err());
        rest
    }

    /// Clears the residency bytes of blocks that just left cache
    /// management (drained or published while their bytes were still
    /// set).
    pub(crate) fn clear(&self, sub: u16, offsets: &[u64]) {
        let Some(sc) = self.existing(sub) else { return };
        for &offset in offsets {
            if let Some(byte) = sc.map.granule(offset) {
                byte.store(0, Ordering::Release);
            }
        }
    }

    /// Pops every resident block of `sub` the caller can reach (its pools
    /// and any idle magazine homed on it) for a drain. Busy magazines are
    /// skipped — this is a best-effort eviction, not a barrier.
    pub(crate) fn evict_resident(&self, sub: u16) -> Vec<u64> {
        let mut out = Vec::new();
        for cpu in 0..self.magazines.len() {
            // Every magazine is checked against its *recorded* home, not
            // the routing formula: after a grow re-homes CPUs, stale
            // magazines still hold the old sub-heap's rounds.
            self.magazines.try_with(cpu, |m| {
                if m.home == sub {
                    for v in m.rounds.iter_mut() {
                        out.append(v);
                    }
                }
            });
        }
        if let Some(sc) = self.existing(sub) {
            for pool in sc.pools.iter() {
                pool.drain_into(&mut out);
            }
        }
        out
    }

    /// Invalidates every cache structure of a condemned sub-heap in DRAM:
    /// magazines homed on it are emptied, its transfer pools drained, and
    /// every residency byte zeroed, so the lock-free frontend can never
    /// hand out (or absorb) one of its blocks again. The media is *not*
    /// touched — the condemned metadata keeps its `FLAG_CACHED` records
    /// for `pfsck --repair` to reconcile. Safe against racing fast-path
    /// operations: once a byte is zero, `try_alloc`/`try_free` treat the
    /// block as not cache-managed and fall to the slow path, which
    /// refuses the quarantined sub-heap; blocks a racing free parks after
    /// the sweep stay unreachable because routing never selects this
    /// sub-heap again. Returns the number of blocks invalidated.
    pub(crate) fn condemn(&self, sub: u16) -> usize {
        // Discard rather than drain: these offsets' records live in
        // damaged metadata that nobody writes again this session.
        let _ = self.evict_resident(sub);
        let Some(sc) = self.existing(sub) else { return 0 };
        let mut invalidated = 0;
        sc.map.for_each(|_, byte| {
            if byte.swap(0, Ordering::AcqRel) != 0 {
                invalidated += 1;
            }
        });
        // One more sweep for blocks a racing free parked mid-sweep.
        let mut junk = Vec::new();
        for pool in sc.pools.iter() {
            pool.drain_into(&mut junk);
        }
        invalidated
    }

    /// Whether `sub` has any checked-out blocks (cheap pre-check so
    /// publishing skips untouched sub-heaps without taking their locks).
    pub(crate) fn has_checked_out(&self, sub: u16) -> bool {
        let Some(sc) = self.existing(sub) else { return false };
        let mut found = false;
        sc.map.for_each(|_, byte| {
            found |= byte.load(Ordering::Acquire) & KIND_MASK == CHECKED_OUT;
        });
        found
    }

    /// Claims every checked-out block of `sub` for publication: CAS each
    /// byte to 0 (a concurrent cached free that wins the CAS keeps the
    /// block — it is free, not published). Called under the sub-heap
    /// lock, immediately before [`subheap::publish_blocks`], so a slow
    /// free racing the publish serialises behind the commit.
    pub(crate) fn claim_checked_out(&self, sub: u16) -> Vec<u64> {
        let mut out = Vec::new();
        let Some(sc) = self.existing(sub) else { return out };
        sc.map.for_each(|offset, byte| {
            let cur = byte.load(Ordering::Acquire);
            if cur & KIND_MASK == CHECKED_OUT
                && byte.compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire).is_ok()
            {
                out.push(offset);
            }
        });
        out
    }

    /// The reserved size of a checked-out block, straight from its
    /// residency byte (no locks, no metadata read).
    pub(crate) fn checked_out_size(&self, sub: u16, offset: u64) -> Option<u64> {
        let byte = self.existing(sub)?.map.granule(offset)?;
        let cur = byte.load(Ordering::Acquire);
        (cur & KIND_MASK == CHECKED_OUT).then(|| class_size((cur & CLASS_MASK) as usize))
    }

    /// How the audit should account the record at `offset`.
    pub(crate) fn residency(&self, sub: u16, offset: u64) -> CacheResidency {
        match self
            .existing(sub)
            .and_then(|sc| sc.map.granule(offset))
            .map(|byte| byte.load(Ordering::Acquire) & KIND_MASK)
        {
            Some(RESIDENT) => CacheResidency::Resident,
            Some(CHECKED_OUT) => CacheResidency::CheckedOut,
            _ => CacheResidency::None,
        }
    }

    /// Every cache-managed block as `(sub_heap, offset)` — the crash-fuzz
    /// inspection hook behind [`PoseidonHeap::cache_snapshot`].
    pub(crate) fn snapshot(&self) -> Vec<(u16, u64)> {
        let mut out = Vec::new();
        for (sub, slot) in self.subs.iter().enumerate() {
            let Some(sc) = slot.get() else { continue };
            sc.map.for_each(|offset, byte| {
                if byte.load(Ordering::Acquire) != 0 {
                    out.push((sub as u16, offset));
                }
            });
        }
        out
    }

    pub(crate) fn stats(&self, sub: u16) -> CacheStats {
        let Some(sc) = self.existing(sub) else { return CacheStats::default() };
        CacheStats {
            hits: sc.hits.load(Ordering::Relaxed),
            misses: sc.misses.load(Ordering::Relaxed),
            refills: sc.refills.load(Ordering::Relaxed),
            drains: sc.drains.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_refill(&self, sub: u16) {
        self.sub_cache(sub).refills.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_drain(&self, sub: u16) {
        self.sub_cache(sub).drains.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reset_stats(&self) {
        for sc in self.subs.iter().filter_map(OnceLock::get) {
            sc.hits.store(0, Ordering::Relaxed);
            sc.misses.store(0, Ordering::Relaxed);
            sc.refills.store(0, Ordering::Relaxed);
            sc.drains.store(0, Ordering::Relaxed);
        }
    }
}

/// The cache-fronted entry points. [`PoseidonHeap::alloc`] and
/// [`PoseidonHeap::free`] try these first; `Ok(None)` / `Ok(false)` means
/// "not handled — take the [`backend`](crate::backend) slow path".
impl PoseidonHeap {
    /// Fast-path allocation. A hit costs a few atomics; a miss withdraws
    /// a magazine batch from the persistent free lists under one
    /// two-fence commit, then serves from that.
    pub(crate) fn cached_alloc(&self, size: u64) -> Result<Option<NvmPtr>> {
        let Some(cache) = self.cache() else { return Ok(None) };
        if size == 0 || size > self.layout().max_alloc() {
            return Ok(None);
        }
        let (class, _) = class_for_size(size)?;
        if !cache.is_cacheable(class) {
            return Ok(None);
        }
        let cpu = numa::current_cpu();
        let home = self.layout().subheap_for_cpu(cpu);
        let Ok(sub) = self.healthy_sub(home) else { return Ok(None) };
        if let Some(offset) = cache.try_alloc(cpu, sub, sub == home, class) {
            self.note_alloc();
            return Ok(Some(NvmPtr::new(self.heap_id(), sub, offset)));
        }
        // Miss: refill through the undo-logged slow path — the whole
        // batch under one commit, ~3 fences amortised over
        // `magazine_size` future hits.
        self.ensure_subheap(sub)?;
        let op = self.begin_op(sub)?;
        let offsets = subheap::refill_blocks(&op, class, cache.config.magazine_size.max(1))?;
        if offsets.is_empty() {
            return Ok(None); // free-space pressure: let the slow path defragment
        }
        cache.note_refill(sub);
        cache.admit(sub, class, &offsets);
        let overflow = cache.stash(cpu, sub, sub == home, class, &offsets[1..]);
        if !overflow.is_empty() {
            let quarantined = subheap::drain_blocks(&op, &overflow)?;
            self.health.blocks_quarantined.fetch_add(quarantined, Ordering::Relaxed);
            cache.clear(sub, &overflow);
        }
        drop(op);
        self.note_alloc();
        Ok(Some(NvmPtr::new(self.heap_id(), sub, offsets[0])))
    }

    /// Fast-path free. Returns `Ok(true)` when the cache absorbed the
    /// block (possibly draining an overflowed pool batch through the slow
    /// path first) and surfaces double frees the residency map catches.
    pub(crate) fn cached_free(&self, ptr: NvmPtr) -> Result<bool> {
        let Some(cache) = self.cache() else { return Ok(false) };
        let sub = ptr.subheap();
        let cpu = numa::current_cpu();
        let home = self.layout().subheap_for_cpu(cpu) == sub;
        match cache.try_free(cpu, sub, home, ptr.offset()) {
            CachedFree::Miss => Ok(false),
            CachedFree::DoubleFree => {
                self.note_rejected_free();
                Err(PoseidonError::DoubleFree { offset: ptr.offset() })
            }
            CachedFree::Hit => {
                self.note_free();
                Ok(true)
            }
            CachedFree::Drain(batch) => {
                let op = self.begin_op(sub)?;
                let quarantined = subheap::drain_blocks(&op, &batch)?;
                self.health.blocks_quarantined.fetch_add(quarantined, Ordering::Relaxed);
                cache.clear(sub, &batch);
                cache.note_drain(sub);
                drop(op);
                self.note_free();
                Ok(true)
            }
        }
    }

    /// Publishes every checked-out cached block as a real `ALLOC` on
    /// media — the durability hand-off run by `set_root` (the moment
    /// cached allocations can become reachable) and by a clean close.
    pub(crate) fn publish_cached(&self) -> Result<()> {
        let Some(cache) = self.cache() else { return Ok(()) };
        for sub in 0..self.layout().num_subheaps() {
            if !self.sub_usable(sub) || !cache.has_checked_out(sub) {
                continue;
            }
            let op = self.begin_op(sub)?;
            let offsets = cache.claim_checked_out(sub);
            if !offsets.is_empty() {
                subheap::publish_blocks(&op, &offsets)?;
            }
            drop(op);
        }
        Ok(())
    }

    /// Drains every resident block of `sub` back to the persistent free
    /// lists (the NoSpace last resort — the cache may be sitting on
    /// exactly the capacity the slow path needs). Returns how many blocks
    /// were returned.
    pub(crate) fn evict_subheap_cache(&self, sub: u16) -> Result<usize> {
        let Some(cache) = self.cache() else { return Ok(0) };
        let victims = cache.evict_resident(sub);
        if victims.is_empty() {
            return Ok(0);
        }
        let op = self.begin_op(sub)?;
        let quarantined = subheap::drain_blocks(&op, &victims)?;
        self.health.blocks_quarantined.fetch_add(quarantined, Ordering::Relaxed);
        cache.clear(sub, &victims);
        cache.note_drain(sub);
        drop(op);
        Ok(victims.len())
    }

    /// Clean-close teardown: publish checked-out blocks (the application
    /// still holds their pointers) and drain resident ones, leaving zero
    /// `FLAG_CACHED` records on media so the audit and the next load see
    /// an ordinary heap.
    pub(crate) fn flush_cache(&mut self) -> Result<()> {
        let Some(cache) = self.take_cache() else { return Ok(()) };
        let result = self.flush_cache_inner(&cache);
        self.put_cache(cache);
        result
    }

    fn flush_cache_inner(&self, cache: &HeapCache) -> Result<()> {
        for sub in 0..self.layout().num_subheaps() {
            if !self.sub_usable(sub) {
                continue;
            }
            let resident = cache.evict_resident(sub);
            if resident.is_empty() && !cache.has_checked_out(sub) {
                continue;
            }
            let op = self.begin_op(sub)?;
            let checked_out = cache.claim_checked_out(sub);
            if !checked_out.is_empty() {
                subheap::publish_blocks(&op, &checked_out)?;
            }
            if !resident.is_empty() {
                let quarantined = subheap::drain_blocks(&op, &resident)?;
                self.health.blocks_quarantined.fetch_add(quarantined, Ordering::Relaxed);
                cache.clear(sub, &resident);
                cache.note_drain(sub);
            }
            drop(op);
        }
        Ok(())
    }

    /// Every cache-managed block as `(sub_heap, user_offset)` pairs.
    /// Inspection hook for the crash-fuzz harness: each of these must be
    /// `FREE` on media at any instant (the cache-residency ⟹ media-FREE
    /// invariant).
    #[doc(hidden)]
    pub fn cache_snapshot(&self) -> Vec<(u16, u64)> {
        self.cache().map(HeapCache::snapshot).unwrap_or_default()
    }

    /// Flushes every cached block of every sub-heap back to the
    /// persistent free lists — the rebalance step of
    /// [`grow`](PoseidonHeap::grow): emptied magazines re-home themselves
    /// on the next fast-path touch under the enlarged routing.
    pub(crate) fn drain_cache_for_rebalance(&self) -> Result<()> {
        if self.cache().is_none() {
            return Ok(());
        }
        for sub in 0..self.layout().num_subheaps() {
            if self.sub_usable(sub) {
                self.evict_subheap_cache(sub)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_map_roundtrips_and_scans() {
        let map = ResidencyMap::new(8 << 20);
        assert!(map.granule(0).is_none(), "no chunk installed yet");
        map.granule_or_install(64).store(RESIDENT | 3, Ordering::Release);
        map.granule_or_install(4 << 20).store(CHECKED_OUT | 1, Ordering::Release);
        assert_eq!(map.granule(64).unwrap().load(Ordering::Acquire), RESIDENT | 3);
        assert!(map.granule(32).unwrap().load(Ordering::Acquire) == 0);
        let mut seen = Vec::new();
        map.for_each(|offset, byte| {
            if byte.load(Ordering::Acquire) != 0 {
                seen.push(offset);
            }
        });
        assert_eq!(seen, vec![64, 4 << 20]);
        // Out-of-range offsets are a clean miss, not a panic.
        assert!(map.granule(1 << 40).is_none());
    }

    #[test]
    fn tiny_pools_degrade_classes_to_bypass() {
        let layout = HeapLayout::compute(8 << 20, 1).unwrap();
        let cache = HeapCache::new(CacheConfig::default(), &layout, 2);
        assert!(cache.is_cacheable(0), "32 B blocks must stay cacheable");
        let degraded = (0..CACHEABLE_CLASSES).any(|c| !cache.is_cacheable(c));
        let budget = |c: usize| (128 + 64) as u64 * class_size(c);
        // The gate is exactly the documented footprint bound.
        for c in 0..CACHEABLE_CLASSES {
            assert_eq!(cache.is_cacheable(c), budget(c) <= layout.user_size / 8, "class {c}");
        }
        let _ = degraded;
    }

    #[test]
    fn free_via_map_detects_double_free() {
        let layout = HeapLayout::compute(64 << 20, 1).unwrap();
        let cache = HeapCache::new(CacheConfig::default(), &layout, 1);
        cache.admit(0, 2, &[128]); // checked out
        assert!(matches!(cache.try_free(0, 0, true, 128), CachedFree::Hit));
        assert!(matches!(cache.try_free(0, 0, true, 128), CachedFree::DoubleFree));
        assert!(matches!(cache.try_free(0, 0, true, 4096), CachedFree::Miss));
        // And the parked block comes back out of the magazine.
        assert_eq!(cache.try_alloc(0, 0, true, 2), Some(128));
    }
}
