//! Persistent on-device structures and the sub-heap access context.

use pmem::{pod_struct, PmemDevice};

use crate::error::Result;
use crate::layout::{
    HeapLayout, ENTRY_SIZE, EXTENT_RECORD_SIZE, HUGE_EXTENT_SLOTS, HUGE_TABLE_OFF, HUGE_UNDO_OFF,
    HUGE_UNDO_SIZE, SH_BUDDY_HEADS_OFF, SH_BUDDY_TAILS_OFF, SH_LEVEL_COUNTS_OFF, SH_LEVEL_SUMS_OFF,
    SH_MICRO_OFF, SH_UNDO_OFF, SH_UNDO_SIZE,
};
use crate::nvmptr::NvmPtr;
use crate::undo::UndoArea;

/// Magic value identifying a Poseidon superblock ("POSEIDON").
pub const SUPERBLOCK_MAGIC: u64 = 0x504F_5345_4944_4F4E;
/// Magic value identifying an initialised sub-heap header.
pub const SUBHEAP_MAGIC: u64 = 0x5355_4248_4541_5021;
/// Magic value identifying an initialised huge-region header ("HUGEREGN").
pub const HUGE_MAGIC: u64 = 0x4855_4745_5245_474E;
/// On-device format version. Version 1 pools (single fixed layout, no
/// epoch records) are migrated in place on open; see
/// [`EpochRecord`] for what version 2 adds.
pub const FORMAT_VERSION: u32 = 2;
/// The pre-epoch on-device format, still accepted by `open` via an
/// in-place migration that synthesises epoch 0 from the header geometry.
pub const FORMAT_VERSION_V1: u32 = 1;

pod_struct! {
    /// The heap superblock (device offset 0): identity, geometry, the
    /// superblock undo-log tail, and the root pointer (§2.2, §4.6).
    pub struct SuperblockHeader {
        /// [`SUPERBLOCK_MAGIC`]; written last during creation, so its
        /// presence implies a fully initialised heap.
        pub magic: u64,
        /// [`FORMAT_VERSION`].
        pub version: u32,
        /// Reserved.
        pub _pad0: u32,
        /// Random non-zero heap id embedded in every [`NvmPtr`].
        pub heap_id: u64,
        /// Device capacity at creation (validated on load).
        pub capacity: u64,
        /// Number of sub-heaps.
        pub num_subheaps: u32,
        /// Reserved.
        pub _pad1: u32,
        /// Per-sub-heap metadata region size.
        pub meta_size: u64,
        /// Per-sub-heap user region size.
        pub user_size: u64,
        /// Hash-table level-0 capacity.
        pub c0: u64,
        /// Huge-object data region size (0 when the device has no huge
        /// region).
        pub huge_data_size: u64,
        /// Superblock undo-log generation (entries of older generations are dead).
        pub undo_gen: u64,
        /// The heap's root pointer (§4.6).
        pub root: NvmPtr,
        /// Number of committed layout epochs (format v2+). Version-1
        /// images read 0 here — the sparse device returns zeros for bytes
        /// never written — which is exactly what triggers migration.
        pub epoch_count: u32,
        /// Reserved.
        pub _pad2: u32,
    }
}

pod_struct! {
    /// One persistent layout-epoch record (format v2). The array of these
    /// lives at [`SB_EPOCHS_OFF`](crate::layout::SB_EPOCHS_OFF) in the
    /// superblock region, one 64-byte slot per epoch, and is the durable
    /// form of the in-memory [`Epoch`](crate::layout::Epoch) chain.
    ///
    /// A grow appends the record and bumps the header's `epoch_count`
    /// inside one superblock undo transaction, so its two-fence commit is
    /// the *single* commit point of the whole growth: a crash before it
    /// reverts both together (the grow never happened), a crash after it
    /// leaves a fully described epoch whose huge-band bookkeeping recovery
    /// completes idempotently.
    pub struct EpochRecord {
        /// [`EPOCH_COMMITTED`], or [`EPOCH_EMPTY`] for an unused slot.
        pub state: u32,
        /// Reserved.
        pub _pad: u32,
        /// Device offset where the epoch's capacity range starts.
        pub base: u64,
        /// Total device capacity once this epoch is committed.
        pub capacity: u64,
        /// Global index of the first sub-heap this epoch hosts.
        pub first_subheap: u32,
        /// Number of sub-heaps this epoch hosts.
        pub num_subheaps: u32,
        /// Device offset of this epoch's huge-data band.
        pub huge_base: u64,
        /// Bytes of huge-data band in this epoch.
        pub huge_size: u64,
        /// Reserved (pads the record to 64 bytes).
        pub _reserved: [u64; 2],
    }
}

/// [`EpochRecord::state`]: slot never written.
pub const EPOCH_EMPTY: u32 = 0;
/// [`EpochRecord::state`]: the epoch is committed.
pub const EPOCH_COMMITTED: u32 = 1;

const _: () = assert!(std::mem::size_of::<EpochRecord>() == 64);
const _: () = assert!(
    crate::layout::SB_EPOCHS_OFF + crate::layout::MAX_EPOCHS as u64 * 64 <= crate::layout::SB_REGION_SIZE
);

impl EpochRecord {
    /// The durable form of an in-memory epoch.
    pub fn from_epoch(epoch: &crate::layout::Epoch) -> EpochRecord {
        EpochRecord {
            state: EPOCH_COMMITTED,
            _pad: 0,
            base: epoch.base,
            capacity: epoch.capacity,
            first_subheap: epoch.first_subheap,
            num_subheaps: epoch.num_subheaps,
            huge_base: epoch.huge_base,
            huge_size: epoch.huge_size,
            _reserved: [0; 2],
        }
    }

    /// The in-memory form of a committed record.
    pub fn to_epoch(self) -> crate::layout::Epoch {
        crate::layout::Epoch {
            base: self.base,
            capacity: self.capacity,
            first_subheap: self.first_subheap,
            num_subheaps: self.num_subheaps,
            huge_base: self.huge_base,
            huge_size: self.huge_size,
        }
    }
}

pod_struct! {
    /// One entry of the sub-heap directory in the superblock region.
    pub struct DirEntry {
        /// 0 = never created, 1 = active.
        pub state: u32,
        /// NUMA node the sub-heap was placed on.
        pub node: u32,
    }
}

pod_struct! {
    /// The per-sub-heap metadata header.
    pub struct SubheapHeader {
        /// [`SUBHEAP_MAGIC`].
        pub magic: u64,
        /// Index of this sub-heap.
        pub subheap_id: u32,
        /// NUMA node this sub-heap's memory is placed on (§4.1).
        pub node: u32,
        /// Sub-heap undo-log generation (entries of older generations are dead).
        pub undo_gen: u64,
        /// Reserved (micro-log counts live per slot in the micro area).
        pub micro_count: u64,
        /// Number of active hash-table levels (≥ 1).
        pub active_levels: u64,
    }
}

/// Memory-block states stored in [`HashEntry::state`].
pub mod state {
    /// Slot never used.
    pub const EMPTY: u32 = 0;
    /// Block is free (linked into a buddy list).
    pub const FREE: u32 = 1;
    /// Block is allocated.
    pub const ALLOC: u32 = 2;
    /// Slot held a block that was merged away; kept for probe continuity,
    /// reusable by inserts.
    pub const TOMBSTONE: u32 = 3;
    /// Block overlaps an uncorrectable media error: permanently withdrawn
    /// from the buddy lists, never re-allocated, released only by
    /// `pfsck --repair` after the poison is cleared.
    pub const QUARANTINED: u32 = 4;
}

/// Flag bit in [`HashEntry::flags`]: the block is managed by the
/// transient DRAM cache layer. On media it stays `FREE` (so a crash
/// reclaims it with no new replay logic) but it is *unlinked* from its
/// buddy free list — the slow path, defragmentation, and shrink must all
/// skip it, and load-time recovery relinks it (clearing the flag).
pub const FLAG_CACHED: u32 = 1;

pod_struct! {
    /// A memory-block record: one hash-table entry, one cache line (§4.4).
    ///
    /// Records both allocated and free blocks so that every `free` can be
    /// validated (double-free / invalid-free rejection) and free blocks can
    /// be linked into their buddy list via `next_free`/`prev_free` (device
    /// offsets of other records; 0 = end of list).
    pub struct HashEntry {
        /// Block offset within the sub-heap user region (the key).
        pub offset: u64,
        /// Block size in bytes (a power of two ≥ 32).
        pub size: u64,
        /// One of the [`state`] constants.
        pub state: u32,
        /// Flag bits ([`FLAG_CACHED`]); reserved bits read 0, so images
        /// written before the field existed parse as "no flags".
        pub flags: u32,
        /// Next record in this block's buddy free list.
        pub next_free: u64,
        /// Previous record in this block's buddy free list.
        pub prev_free: u64,
        /// Reserved (pads the record to exactly one cache line).
        pub _reserved: [u64; 3],
    }
}

const _: () = assert!(std::mem::size_of::<HashEntry>() as u64 == ENTRY_SIZE);

pod_struct! {
    /// The huge-region metadata header (first page of the huge metadata
    /// region).
    pub struct HugeHeader {
        /// [`HUGE_MAGIC`]; written last during formatting.
        pub magic: u64,
        /// [`FORMAT_VERSION`].
        pub version: u32,
        /// Reserved.
        pub _pad: u32,
        /// Huge-region undo-log generation (entries of older generations
        /// are dead).
        pub undo_gen: u64,
        /// Size of the huge data region at format time (validated on load).
        pub data_size: u64,
    }
}

pod_struct! {
    /// One slot of the huge-region extent table.
    ///
    /// Non-empty slots, sorted by offset, tile the whole huge data region:
    /// every byte belongs to exactly one `FREE`, `ALLOC`, or `QUARANTINED`
    /// extent, so the table doubles as the block record used for
    /// `free`/`block_size` validation (double-free and invalid-free
    /// rejection, mirroring the sub-heap hash table). Physical slot order
    /// is arbitrary; the sorted view is reconstructed by scanning.
    pub struct ExtentRecord {
        /// Extent offset within the huge data region.
        pub offset: u64,
        /// Extent length in bytes (page-granular, never zero for live
        /// slots).
        pub len: u64,
        /// One of the [`state`] constants (`EMPTY` marks an unused slot).
        pub state: u32,
        /// Reserved.
        pub _pad: u32,
        /// Reserved (pads the record to [`EXTENT_RECORD_SIZE`]).
        pub _reserved: u64,
    }
}

const _: () = assert!(std::mem::size_of::<ExtentRecord>() as u64 == EXTENT_RECORD_SIZE);

/// Borrowed context for operating on the huge-object region, the analogue
/// of [`SubCtx`] for the extent allocator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HugeCtx<'a> {
    pub dev: &'a PmemDevice,
    pub layout: &'a HeapLayout,
}

impl<'a> HugeCtx<'a> {
    /// Device offset of the huge-region metadata.
    #[inline]
    pub fn meta_base(&self) -> u64 {
        self.layout.huge_meta_base()
    }

    /// Maps the logical huge range `[logical, logical + len)` to its
    /// device offset; `None` when out of bounds or straddling a band wall
    /// (a corrupt extent).
    #[inline]
    pub fn data_phys(&self, logical: u64, len: u64) -> Option<u64> {
        self.layout.huge_phys_of(logical, len)
    }

    /// Device offset of the header's undo-log generation field.
    #[inline]
    pub fn undo_gen_off(&self) -> u64 {
        self.meta_base() + std::mem::offset_of!(HugeHeader, undo_gen) as u64
    }

    /// The huge region's undo-log area.
    #[inline]
    pub fn undo_area(&self) -> UndoArea {
        UndoArea {
            base: self.meta_base() + HUGE_UNDO_OFF,
            size: HUGE_UNDO_SIZE,
            gen_field: self.undo_gen_off(),
        }
    }

    /// Device offset of extent-table slot `slot`.
    #[inline]
    pub fn slot_off(&self, slot: usize) -> u64 {
        debug_assert!(slot < HUGE_EXTENT_SLOTS);
        self.meta_base() + HUGE_TABLE_OFF + slot as u64 * EXTENT_RECORD_SIZE
    }

    /// Reads the huge-region header.
    pub fn header(&self) -> Result<HugeHeader> {
        Ok(self.dev.read_pod(self.meta_base())?)
    }
}

/// Borrowed context for operating on one sub-heap: the device, the heap
/// geometry, and the sub-heap index. All sub-heap modules (hash table,
/// buddy lists, defragmentation, logs) work through this.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubCtx<'a> {
    pub dev: &'a PmemDevice,
    pub layout: &'a HeapLayout,
    pub sub: u16,
}

impl<'a> SubCtx<'a> {
    /// Device offset of this sub-heap's metadata region.
    #[inline]
    pub fn meta_base(&self) -> u64 {
        self.layout.meta_base(self.sub)
    }

    /// Device offset of this sub-heap's user region.
    #[inline]
    pub fn user_base(&self) -> u64 {
        self.layout.user_base(self.sub)
    }

    /// Device offset of the header's undo-log generation field.
    #[inline]
    pub fn undo_gen_off(&self) -> u64 {
        self.meta_base() + std::mem::offset_of!(SubheapHeader, undo_gen) as u64
    }

    /// Device offset of the header's `active_levels` field.
    #[inline]
    pub fn active_levels_off(&self) -> u64 {
        self.meta_base() + std::mem::offset_of!(SubheapHeader, active_levels) as u64
    }

    /// This sub-heap's undo-log area.
    #[inline]
    pub fn undo_area(&self) -> UndoArea {
        UndoArea { base: self.meta_base() + SH_UNDO_OFF, size: SH_UNDO_SIZE, gen_field: self.undo_gen_off() }
    }

    /// Device offset of buddy-list head slot `class`.
    #[inline]
    pub fn buddy_head_off(&self, class: usize) -> u64 {
        self.meta_base() + SH_BUDDY_HEADS_OFF + class as u64 * 8
    }

    /// Device offset of buddy-list tail slot `class`.
    #[inline]
    pub fn buddy_tail_off(&self, class: usize) -> u64 {
        self.meta_base() + SH_BUDDY_TAILS_OFF + class as u64 * 8
    }

    /// Device offset of the live-entry counter of hash level `level`.
    #[inline]
    pub fn level_count_off(&self, level: usize) -> u64 {
        self.meta_base() + SH_LEVEL_COUNTS_OFF + level as u64 * 8
    }

    /// Device offset of the live-entry checksum of hash level `level`.
    #[inline]
    pub fn level_sum_off(&self, level: usize) -> u64 {
        self.meta_base() + SH_LEVEL_SUMS_OFF + level as u64 * 8
    }

    /// Device offset of micro-log slot `slot`'s count field.
    #[inline]
    pub fn micro_count_off(&self, slot: usize) -> u64 {
        debug_assert!(slot < crate::layout::MICRO_SLOTS);
        self.meta_base() + SH_MICRO_OFF + slot as u64 * crate::layout::MICRO_SLOT_BYTES
    }

    /// Device offset of entry `index` in micro-log slot `slot`.
    #[inline]
    pub fn micro_entry_off(&self, slot: usize, index: u64) -> u64 {
        self.micro_count_off(slot) + 16 + index * 16
    }

    /// Reads this sub-heap's header.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn header(&self) -> Result<SubheapHeader> {
        Ok(self.dev.read_pod(self.meta_base())?)
    }

    /// Reads the number of active hash-table levels.
    pub fn active_levels(&self) -> Result<u64> {
        Ok(self.dev.read_pod(self.active_levels_off())?)
    }

    /// Reads the record at device offset `entry_off`.
    pub fn entry(&self, entry_off: u64) -> Result<HashEntry> {
        Ok(self.dev.read_pod(entry_off)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::Pod;

    #[test]
    fn struct_sizes() {
        assert_eq!(std::mem::size_of::<HashEntry>(), 64);
        assert_eq!(std::mem::size_of::<DirEntry>(), 8);
        assert_eq!(std::mem::size_of::<SubheapHeader>(), 40);
        assert!(std::mem::size_of::<SuperblockHeader>() <= 4096);
    }

    #[test]
    fn headers_roundtrip_through_bytes() {
        let header = SuperblockHeader {
            magic: SUPERBLOCK_MAGIC,
            version: FORMAT_VERSION,
            heap_id: 0x1234,
            capacity: 1 << 30,
            num_subheaps: 8,
            meta_size: 1 << 20,
            user_size: 8 << 20,
            c0: 64,
            huge_data_size: 16 << 20,
            undo_gen: 0,
            root: NvmPtr::new(0x1234, 3, 64),
            epoch_count: 1,
            _pad0: 0,
            _pad1: 0,
            _pad2: 0,
        };
        assert_eq!(SuperblockHeader::from_bytes(header.as_bytes()), header);
    }

    #[test]
    fn ctx_offsets_are_disjoint_per_subheap() {
        let layout = HeapLayout::compute(256 << 20, 4).unwrap();
        let dev = PmemDevice::new(pmem::DeviceConfig::small_test());
        let a = SubCtx { dev: &dev, layout: &layout, sub: 0 };
        let b = SubCtx { dev: &dev, layout: &layout, sub: 1 };
        assert_ne!(a.undo_gen_off(), b.undo_gen_off());
        assert_eq!(b.meta_base() - a.meta_base(), layout.meta_size);
        assert!(a.buddy_head_off(0) > a.meta_base());
        assert!(a.micro_count_off(0) > a.buddy_tail_off(47));
        assert!(a.micro_entry_off(0, 0) == a.micro_count_off(0) + 16);
    }
}
