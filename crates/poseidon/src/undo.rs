//! Undo logging (§4.5, §5.2).
//!
//! Every allocator operation mutates metadata inside an *undo session*:
//! before a range is overwritten, its original bytes are appended to the
//! undo-log area and persisted, and only then is the new value written.
//! Committing persists all modified ranges and invalidates the log; a
//! crash at any point leaves either a committed operation or a log whose
//! replay restores the exact pre-op state. Replay is idempotent —
//! replaying twice (e.g. after a crash *during* recovery, §5.8) writes
//! the same old bytes again.
//!
//! The log is invalidated in O(1) by bumping a persistent **generation
//! counter** rather than rewinding a tail: each entry is stamped with the
//! generation it belongs to and carries a checksum, so recovery scans
//! entries from the start of the area and stops at the first entry that
//! fails validation (stale generation, bad checksum, or torn write).
//! Entries are persisted *before* their target is modified and are
//! written in order with a fence between, so a torn or missing entry
//! implies its target — and every later entry's target — was never
//! touched.
//!
//! Entry layout (all fields little-endian, entries 8-byte aligned):
//!
//! ```text
//! ┌──────────┬─────────────┬──────────┬───────────────┬───────────────┐
//! │ gen: u64 │ target: u64 │ len: u64 │ checksum: u64 │ old bytes…pad │
//! └──────────┴─────────────┴──────────┴───────────────┴───────────────┘
//! ```

use pmem::PmemDevice;

use crate::error::{PoseidonError, Result};

/// Location of one undo-log area and its persistent generation field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoArea {
    /// Device offset of the log area.
    pub base: u64,
    /// Size of the log area in bytes.
    pub size: u64,
    /// Device offset of the `u64` generation field. Entries stamped with
    /// the current generation are live; a bump invalidates them all.
    pub gen_field: u64,
}

/// Size of the fixed entry header (gen, target, len, checksum).
pub(crate) const ENTRY_HEADER: u64 = 32;

/// Entry checksum over the *padded* old-bytes image (see the layout
/// diagram above). Shared with the session-layer [`crate::session::UndoScope`],
/// which writes byte-compatible entries through a `MetaView`.
pub(crate) fn checksum(gen: u64, target: u64, len: u64, old: &[u8]) -> u64 {
    let mut hash = 0x9E37_79B9_7F4A_7C15u64 ^ gen;
    hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ target;
    hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ len;
    for chunk in old.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ u64::from_le_bytes(word);
    }
    // Never 0, so an all-zero (never-written) slot always fails.
    hash | 1
}

/// An open undo session. Obtain with [`UndoSession::begin`]; every
/// metadata mutation goes through [`log_and_write`](Self::log_and_write);
/// finish with [`commit`](Self::commit) or [`abort`](Self::abort).
///
/// Exactly one session may be open per area at a time — the caller's
/// sub-heap (or superblock) lock guarantees this. Dropping a session
/// without committing rolls back immediately (an early `?` return leaves
/// the heap untouched); a crash instead leaves live entries for
/// [`replay`] to roll back on recovery.
#[derive(Debug)]
pub struct UndoSession<'a> {
    dev: &'a PmemDevice,
    area: UndoArea,
    gen: u64,
    /// Bytes of the log area used so far this session.
    tail: u64,
    /// Target ranges written this session, persisted on commit.
    dirty: Vec<(u64, u64)>,
    finished: bool,
    /// Reusable entry buffer (header + old bytes).
    buffer: Vec<u8>,
}

impl<'a> UndoSession<'a> {
    /// Opens a session on `area`.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if live entries from a crashed
    /// operation are present (recovery must run first), or a device
    /// error.
    pub fn begin(dev: &'a PmemDevice, area: UndoArea) -> Result<UndoSession<'a>> {
        let gen: u64 = dev.read_pod(area.gen_field)?;
        if read_entry(dev, area, gen, 0)?.is_some() {
            return Err(PoseidonError::Corrupted("undo log non-empty at operation start"));
        }
        Ok(UndoSession { dev, area, gen, tail: 0, dirty: Vec::new(), finished: false, buffer: Vec::new() })
    }

    /// Logs the current content of `[target, target + new.len())`, then
    /// writes `new` there. The new bytes become durable at
    /// [`commit`](Self::commit).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if the log area overflows (operations
    /// are designed to fit comfortably; overflow means a bug), or a
    /// device error.
    pub fn log_and_write(&mut self, target: u64, new: &[u8]) -> Result<()> {
        let len = new.len() as u64;
        let entry_len = ENTRY_HEADER + len.next_multiple_of(8);
        if self.tail + entry_len > self.area.size {
            return Err(PoseidonError::Corrupted("undo log overflow"));
        }
        // Build the whole entry (header + old image) in one buffer so it
        // costs a single device write and a single persist.
        self.buffer.clear();
        self.buffer.resize(entry_len as usize, 0);
        self.dev.read(target, &mut self.buffer[ENTRY_HEADER as usize..ENTRY_HEADER as usize + new.len()])?;
        let sum = checksum(self.gen, target, len, &self.buffer[ENTRY_HEADER as usize..]);
        self.buffer[0..8].copy_from_slice(&self.gen.to_le_bytes());
        self.buffer[8..16].copy_from_slice(&target.to_le_bytes());
        self.buffer[16..24].copy_from_slice(&len.to_le_bytes());
        self.buffer[24..32].copy_from_slice(&sum.to_le_bytes());
        let entry_off = self.area.base + self.tail;
        self.dev.write(entry_off, &self.buffer)?;
        self.dev.persist(entry_off, entry_len)?;
        self.tail += entry_len;
        // Now the mutation itself (persisted at commit).
        self.dev.write(target, new)?;
        self.dirty.push((target, len));
        Ok(())
    }

    /// Convenience: [`log_and_write`](Self::log_and_write) of a
    /// [`Pod`](pmem::Pod) value.
    ///
    /// # Errors
    ///
    /// As for [`log_and_write`](Self::log_and_write).
    pub fn log_and_write_pod<T: pmem::Pod>(&mut self, target: u64, value: &T) -> Result<()> {
        self.log_and_write(target, value.as_bytes())
    }

    /// Persists every range written this session, then invalidates the
    /// log by bumping the generation — the operation's commit point (one
    /// 8-byte persisted store).
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn commit(mut self) -> Result<()> {
        for &(off, len) in &self.dirty {
            self.dev.clwb(off, len)?;
        }
        self.dev.sfence()?;
        if self.tail > 0 {
            bump_generation(self.dev, self.area, self.gen)?;
        }
        self.finished = true;
        Ok(())
    }

    /// Rolls the session back: restores every logged range to its
    /// original bytes (newest first) and invalidates the log. The heap is
    /// exactly as it was before [`begin`](Self::begin).
    ///
    /// # Errors
    ///
    /// Device errors only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn abort(mut self) -> Result<()> {
        self.finished = true;
        if self.tail > 0 {
            apply_undo(self.dev, self.area, self.gen)?;
        }
        Ok(())
    }
}

impl Drop for UndoSession<'_> {
    fn drop(&mut self) {
        // A dropped-without-commit session (e.g. an early `?` return) must
        // not leave half-applied metadata behind: roll back best-effort.
        // If the device has crashed, rollback fails harmlessly here and
        // recovery replays the log instead.
        if !self.finished && self.tail != 0 {
            let _ = apply_undo(self.dev, self.area, self.gen);
        }
    }
}

/// A decoded log entry: `(target, len, old_bytes, entry_len)`.
pub(crate) type DecodedEntry = (u64, u64, Vec<u8>, u64);

/// Reads and validates the entry at byte position `pos` for generation
/// `gen`. Returns the decoded entry or `None` when the slot does not
/// hold a live entry (end of log).
fn read_entry(dev: &PmemDevice, area: UndoArea, gen: u64, pos: u64) -> Result<Option<DecodedEntry>> {
    if pos + ENTRY_HEADER > area.size {
        return Ok(None);
    }
    let entry_gen: u64 = dev.read_pod(area.base + pos)?;
    if entry_gen != gen {
        return Ok(None);
    }
    let target: u64 = dev.read_pod(area.base + pos + 8)?;
    let len: u64 = dev.read_pod(area.base + pos + 16)?;
    let stored_sum: u64 = dev.read_pod(area.base + pos + 24)?;
    if len > area.size || pos + ENTRY_HEADER + len.next_multiple_of(8) > area.size {
        return Ok(None); // torn header
    }
    let mut old = vec![0u8; len.next_multiple_of(8) as usize];
    dev.read(area.base + pos + ENTRY_HEADER, &mut old)?;
    if checksum(gen, target, len, &old) != stored_sum {
        return Ok(None); // torn entry
    }
    old.truncate(len as usize);
    Ok(Some((target, len, old, ENTRY_HEADER + len.next_multiple_of(8))))
}

/// Restores all live entries of generation `gen` (newest first), persists
/// the restorations, and invalidates the log.
fn apply_undo(dev: &PmemDevice, area: UndoArea, gen: u64) -> Result<()> {
    let mut entries = Vec::new();
    let mut pos = 0u64;
    while let Some((target, len, old, entry_len)) = read_entry(dev, area, gen, pos)? {
        entries.push((target, len, old));
        pos += entry_len;
    }
    for (target, len, old) in entries.iter().rev() {
        dev.write(*target, old)?;
        dev.clwb(*target, *len)?;
    }
    dev.sfence()?;
    bump_generation(dev, area, gen)?;
    Ok(())
}

fn bump_generation(dev: &PmemDevice, area: UndoArea, gen: u64) -> Result<()> {
    dev.write_pod(area.gen_field, &(gen + 1))?;
    dev.persist(area.gen_field, 8)?;
    Ok(())
}

/// Recovery entry point: if the area holds live entries, rolls the
/// interrupted operation back. Returns whether anything was replayed.
///
/// Idempotent: crashing during replay and replaying again is safe (§5.8).
///
/// # Errors
///
/// Device errors.
pub fn replay(dev: &PmemDevice, area: UndoArea) -> Result<bool> {
    let gen: u64 = dev.read_pod(area.gen_field)?;
    if read_entry(dev, area, gen, 0)?.is_none() {
        return Ok(false);
    }
    apply_undo(dev, area, gen)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn setup() -> (PmemDevice, UndoArea) {
        let dev = PmemDevice::new(DeviceConfig::small_test());
        // Generation field at 0, log area at 4096.
        let area = UndoArea { base: 4096, size: 8192, gen_field: 0 };
        (dev, area)
    }

    #[test]
    fn commit_makes_writes_durable() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(64 * 1024, &0xAAu64).unwrap();
        s.log_and_write_pod(64 * 1024 + 8, &0xBBu64).unwrap();
        s.commit().unwrap();
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(64 * 1024).unwrap(), 0xAA);
        assert_eq!(dev.read_pod::<u64>(64 * 1024 + 8).unwrap(), 0xBB);
        // Log is invalid after commit.
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn crash_before_commit_replays_to_old_state() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();

        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        std::mem::forget(s); // simulate losing the session in a crash
        dev.simulate_crash(CrashMode::Strict, 7);

        assert!(replay(&dev, area).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        // Idempotent: nothing left to replay.
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn replay_restores_in_reverse_order() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target, &3u64).unwrap(); // same target twice
        std::mem::forget(s);
        dev.simulate_crash(CrashMode::Strict, 0);
        replay(&dev, area).unwrap();
        // Reverse application ends on the *first* entry's old value.
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn abort_rolls_back_immediately() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &7u64).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &8u64).unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 8);
        s.abort().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 7);
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &7u64).unwrap();
        {
            let mut s = UndoSession::begin(&dev, area).unwrap();
            s.log_and_write_pod(target, &8u64).unwrap();
            // dropped here without commit
        }
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 7);
        // A fresh session can begin.
        UndoSession::begin(&dev, area).unwrap().commit().unwrap();
    }

    #[test]
    fn begin_rejects_unrecovered_log() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(64 * 1024, &1u64).unwrap();
        std::mem::forget(s);
        assert!(matches!(UndoSession::begin(&dev, area), Err(PoseidonError::Corrupted(_))));
        replay(&dev, area).unwrap();
        UndoSession::begin(&dev, area).unwrap().commit().unwrap();
    }

    #[test]
    fn overflow_is_detected() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        let big = vec![0u8; 4096];
        s.log_and_write(64 * 1024, &big).unwrap();
        let r = s.log_and_write(80 * 1024, &big);
        assert!(matches!(r, Err(PoseidonError::Corrupted("undo log overflow"))));
        s.abort().unwrap();
    }

    #[test]
    fn replay_survives_crash_during_replay() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target + 8, &9u64).unwrap();
        std::mem::forget(s);
        dev.simulate_crash(CrashMode::Strict, 0);

        // Crash partway through the replay itself.
        dev.arm_crash_after(1);
        assert!(replay(&dev, area).is_err());
        dev.simulate_crash(CrashMode::Strict, 1);

        // Second replay completes.
        assert!(replay(&dev, area).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        assert_eq!(dev.read_pod::<u64>(target + 8).unwrap(), 0);
    }

    #[test]
    fn adversarial_crash_still_recovers() {
        // Whatever subset of unflushed lines survives, replay must restore
        // the pre-op state for targets whose entries were persisted.
        for seed in 0..32u64 {
            let (dev, area) = setup();
            let target = 64 * 1024;
            dev.write_pod(target, &1u64).unwrap();
            dev.persist(target, 8).unwrap();
            let mut s = UndoSession::begin(&dev, area).unwrap();
            s.log_and_write_pod(target, &2u64).unwrap();
            std::mem::forget(s);
            dev.simulate_crash(CrashMode::Adversarial, seed);
            let gen: u64 = dev.read_pod(area.gen_field).unwrap();
            let had_entry = read_entry(&dev, area, gen, 0).unwrap().is_some();
            replay(&dev, area).unwrap();
            let value = dev.read_pod::<u64>(target).unwrap();
            if had_entry {
                assert_eq!(value, 1, "seed {seed}: logged op must roll back");
            } else {
                // The entry did not survive, so (by the fence protocol)
                // the target write had not begun when the crash hit —
                // unless the adversary persisted the target line itself.
                assert!(value == 1 || value == 2);
            }
        }
    }

    #[test]
    fn generation_bump_invalidates_stale_entries() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &5u64).unwrap();
        s.commit().unwrap();
        // The old entry bytes still sit in the log area but belong to a
        // dead generation: a new session starts clean and replay is a
        // no-op.
        assert!(!replay(&dev, area).unwrap());
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &6u64).unwrap();
        s.commit().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 6);
    }
}
