//! Undo logging (§4.5, §5.2) with batched persistence.
//!
//! Every allocator operation mutates metadata inside an *undo session*:
//! before a range is overwritten, its original bytes are appended to the
//! undo-log area; the new bytes are **staged in DRAM** and only reach
//! the device at commit, after a single fence has made every log entry
//! of the operation durable. A crash at any point leaves either a
//! committed operation or a log whose replay restores the exact pre-op
//! state. Replay is idempotent — replaying twice (e.g. after a crash
//! *during* recovery, §5.8) writes the same old bytes again.
//!
//! # The two-fence commit protocol
//!
//! The old implementation persisted each log entry eagerly — one
//! `clwb`+`sfence` pair per [`log_and_write`](UndoSession::log_and_write)
//! plus two more at commit, i.e. *N* + 2 serialising fences for an
//! *N*-entry operation. The batched protocol pays a constant number:
//!
//! 1. While the operation runs, entries are written (they land in the
//!    modelled CPU cache) and their lines collected in a deduplicating
//!    [`FlushBatch`]; the target mutations are staged in DRAM and **not
//!    issued** to the device at all. Reads made by the operation are
//!    patched through the staged-write overlay so it observes its own
//!    stores.
//! 2. At commit, the entry batch is flushed and **fence #1** issued:
//!    every entry is durable before the first target store is issued.
//! 3. The staged mutations are applied in order, their lines collected
//!    in a second deduplicating batch, flushed, and **fence #2** issued.
//! 4. The generation bump (one 8-byte persisted store, fence #3) is the
//!    commit point, exactly as before.
//!
//! Deferring the target stores — rather than merely deferring their
//! flushes — is what makes the protocol sound under
//! [`CrashMode::Adversarial`](pmem::CrashMode): the cache model may
//! spontaneously evict (persist) *any* dirty line, so a target store
//! issued before its entry was fenced could become durable while the
//! entry tears. With staging, a missing or torn log entry implies the
//! crash preceded fence #1, hence **no** target of the operation was
//! ever issued, let alone persisted. Conversely, an operation that
//! stages nothing commits with **zero** fences — read-only operations
//! are barrier-free.
//!
//! The log is invalidated in O(1) by bumping a persistent **generation
//! counter** rather than rewinding a tail: each entry is stamped with the
//! generation it belongs to and carries a checksum, so recovery scans
//! entries from the start of the area and stops at the first entry that
//! fails validation (stale generation, bad checksum, or torn write).
//!
//! Entry layout (all fields little-endian, entries 8-byte aligned):
//!
//! ```text
//! ┌──────────┬─────────────┬──────────┬───────────────┬───────────────┐
//! │ gen: u64 │ target: u64 │ len: u64 │ checksum: u64 │ old bytes…pad │
//! └──────────┴─────────────┴──────────┴───────────────┴───────────────┘
//! ```
//!
//! Both log writers — the device-backed [`UndoSession`] here and the
//! view-routed [`UndoScope`](crate::session::UndoScope) — share one
//! implementation, [`LogCore`], parameterised over the [`LogAccess`]
//! word-access trait, so the on-device format cannot silently fork.

use pmem::{FlushBatch, MetaView, PmemDevice, PmemError};

use crate::error::{PoseidonError, Result};

/// Location of one undo-log area and its persistent generation field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoArea {
    /// Device offset of the log area.
    pub base: u64,
    /// Size of the log area in bytes.
    pub size: u64,
    /// Device offset of the `u64` generation field. Entries stamped with
    /// the current generation are live; a bump invalidates them all.
    pub gen_field: u64,
}

/// Size of the fixed entry header (gen, target, len, checksum).
pub(crate) const ENTRY_HEADER: u64 = 32;

/// Entry checksum over the *padded* old-bytes image (see the layout
/// diagram above).
pub(crate) fn checksum(gen: u64, target: u64, len: u64, old: &[u8]) -> u64 {
    let mut hash = 0x9E37_79B9_7F4A_7C15u64 ^ gen;
    hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ target;
    hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ len;
    for chunk in old.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        hash = hash.wrapping_mul(0x100_0000_01B3).rotate_left(17) ^ u64::from_le_bytes(word);
    }
    // Never 0, so an all-zero (never-written) slot always fails.
    hash | 1
}

/// Target mutations staged in DRAM until commit: `(target, new bytes)`
/// in issue order.
pub(crate) type StagedWrites = Vec<(u64, Vec<u8>)>;

/// The word-access surface a log writer needs from its backing store —
/// implemented by the raw [`PmemDevice`] and by [`MetaView`] (which
/// routes through the session's single up-front validation). Everything
/// format-bearing lives in [`LogCore`] and the free functions below, so
/// both writers produce and parse byte-identical logs.
pub(crate) trait LogAccess {
    fn read(&self, offset: u64, buf: &mut [u8]) -> std::result::Result<(), PmemError>;
    fn write(&self, offset: u64, buf: &[u8]) -> std::result::Result<(), PmemError>;
    fn flush_batch(&self, batch: &FlushBatch) -> std::result::Result<(), PmemError>;
    fn clwb(&self, offset: u64, len: u64) -> std::result::Result<(), PmemError>;
    fn sfence(&self) -> std::result::Result<(), PmemError>;
    fn record_undo_append(&self, words: u64);

    fn read_pod<T: pmem::Pod>(&self, offset: u64) -> std::result::Result<T, PmemError> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    fn write_pod<T: pmem::Pod>(&self, offset: u64, value: &T) -> std::result::Result<(), PmemError> {
        self.write(offset, value.as_bytes())
    }
}

impl LogAccess for PmemDevice {
    fn read(&self, offset: u64, buf: &mut [u8]) -> std::result::Result<(), PmemError> {
        PmemDevice::read(self, offset, buf)
    }
    fn write(&self, offset: u64, buf: &[u8]) -> std::result::Result<(), PmemError> {
        PmemDevice::write(self, offset, buf)
    }
    fn flush_batch(&self, batch: &FlushBatch) -> std::result::Result<(), PmemError> {
        PmemDevice::flush_batch(self, batch)
    }
    fn clwb(&self, offset: u64, len: u64) -> std::result::Result<(), PmemError> {
        PmemDevice::clwb(self, offset, len)
    }
    fn sfence(&self) -> std::result::Result<(), PmemError> {
        PmemDevice::sfence(self)
    }
    fn record_undo_append(&self, words: u64) {
        PmemDevice::record_undo_append(self, words);
    }
}

impl LogAccess for MetaView<'_> {
    fn read(&self, offset: u64, buf: &mut [u8]) -> std::result::Result<(), PmemError> {
        MetaView::read(self, offset, buf)
    }
    fn write(&self, offset: u64, buf: &[u8]) -> std::result::Result<(), PmemError> {
        MetaView::write(self, offset, buf)
    }
    fn flush_batch(&self, batch: &FlushBatch) -> std::result::Result<(), PmemError> {
        MetaView::flush_batch(self, batch)
    }
    fn clwb(&self, offset: u64, len: u64) -> std::result::Result<(), PmemError> {
        MetaView::clwb(self, offset, len)
    }
    fn sfence(&self) -> std::result::Result<(), PmemError> {
        MetaView::sfence(self)
    }
    fn record_undo_append(&self, words: u64) {
        self.device().record_undo_append(words);
    }
}

/// Patches `buf` (covering `[offset, offset + buf.len())`) with every
/// staged write that intersects it, in staging order — so readers see
/// the operation's own not-yet-issued stores.
pub(crate) fn overlay_patch(staged: &[(u64, Vec<u8>)], offset: u64, buf: &mut [u8]) {
    let len = buf.len() as u64;
    for (target, bytes) in staged {
        let start = (*target).max(offset);
        let end = (target + bytes.len() as u64).min(offset + len);
        if start < end {
            buf[(start - offset) as usize..(end - offset) as usize]
                .copy_from_slice(&bytes[(start - target) as usize..(end - target) as usize]);
        }
    }
}

/// The shared log-writer state machine: entry construction, staging,
/// the two-fence commit, and rollback. [`UndoSession`] (device-backed)
/// and [`UndoScope`](crate::session::UndoScope) (view-routed) are thin
/// wrappers pairing a `LogCore` with their backing [`LogAccess`] and
/// staged-write vector.
#[derive(Debug)]
pub(crate) struct LogCore {
    area: UndoArea,
    gen: u64,
    /// Bytes of the log area used so far this operation.
    tail: u64,
    /// Lines of the entries written so far, pending fence #1.
    entry_batch: FlushBatch,
    finished: bool,
    /// Reusable entry buffer (header + old bytes).
    buffer: Vec<u8>,
}

impl LogCore {
    /// Opens a log writer on `area`. A log still holding live entries is
    /// rejected outright: without knowing who owns the area, the entries
    /// may belong to a *concurrently open* scope (a locking bug), and
    /// rolling them back underneath it would corrupt that operation.
    pub fn begin<A: LogAccess>(acc: &A, area: UndoArea) -> Result<LogCore> {
        Self::begin_inner(acc, area, false)
    }

    /// As [`begin`](Self::begin), but a log still holding live entries is
    /// first **re-driven**: the caller holds the area's lock, which rules
    /// out a concurrent scope, so live entries can only be an earlier
    /// rollback that died mid-flight (e.g. interrupted by a transient
    /// media fault) — load-time replay run early. Only if that rollback
    /// cannot complete does the area stay wedged.
    pub fn begin_recovering<A: LogAccess>(acc: &A, area: UndoArea) -> Result<LogCore> {
        Self::begin_inner(acc, area, true)
    }

    fn begin_inner<A: LogAccess>(acc: &A, area: UndoArea, recover: bool) -> Result<LogCore> {
        let mut gen: u64 = acc.read_pod(area.gen_field)?;
        if read_entry(acc, area, gen, 0)?.is_some() {
            if !recover {
                return Err(PoseidonError::Corrupted("undo log non-empty at operation start"));
            }
            apply_undo(acc, area, gen)?;
            gen = acc.read_pod(area.gen_field)?;
            if read_entry(acc, area, gen, 0)?.is_some() {
                return Err(PoseidonError::Corrupted("undo log non-empty at operation start"));
            }
        }
        Ok(LogCore {
            area,
            gen,
            tail: 0,
            entry_batch: FlushBatch::new(),
            finished: false,
            buffer: Vec::new(),
        })
    }

    /// Whether one more entry logging `len` target bytes still fits in
    /// the log area — batch operations consult this to stop cleanly
    /// before [`log_and_write`](Self::log_and_write) would overflow.
    pub fn has_room_for(&self, len: u64) -> bool {
        self.tail + ENTRY_HEADER + len.next_multiple_of(8) <= self.area.size
    }

    /// Appends an entry logging the current (overlay-visible) content of
    /// `[target, target + new.len())` and stages `new` for application
    /// at commit. The entry write lands in cache now; nothing touches
    /// the target until [`commit`](Self::commit).
    pub fn log_and_write<A: LogAccess>(
        &mut self,
        acc: &A,
        staged: &mut StagedWrites,
        target: u64,
        new: &[u8],
    ) -> Result<()> {
        let len = new.len() as u64;
        let entry_len = ENTRY_HEADER + len.next_multiple_of(8);
        if self.tail + entry_len > self.area.size {
            return Err(PoseidonError::Corrupted("undo log overflow"));
        }
        let header = ENTRY_HEADER as usize;
        self.buffer.clear();
        self.buffer.resize(entry_len as usize, 0);
        // The old image is read through the staged-write overlay: entry
        // i's pre-image reflects staged writes 0..i, so reverse replay
        // still lands every byte on the value of the *first* entry that
        // covers it — the true pre-op state.
        acc.read(target, &mut self.buffer[header..header + new.len()])?;
        overlay_patch(staged, target, &mut self.buffer[header..header + new.len()]);
        let sum = checksum(self.gen, target, len, &self.buffer[header..]);
        self.buffer[0..8].copy_from_slice(&self.gen.to_le_bytes());
        self.buffer[8..16].copy_from_slice(&target.to_le_bytes());
        self.buffer[16..24].copy_from_slice(&len.to_le_bytes());
        self.buffer[24..32].copy_from_slice(&sum.to_le_bytes());
        let entry_off = self.area.base + self.tail;
        acc.write(entry_off, &self.buffer)?;
        self.entry_batch.note(entry_off, entry_len);
        acc.record_undo_append(len.div_ceil(8));
        self.tail += entry_len;
        staged.push((target, new.to_vec()));
        Ok(())
    }

    /// The two-fence commit described in the [module docs](self). An
    /// operation that staged nothing returns without touching the
    /// device — zero flushes, zero fences.
    pub fn commit<A: LogAccess>(&mut self, acc: &A, staged: &mut StagedWrites) -> Result<()> {
        if self.tail == 0 && staged.is_empty() {
            self.finished = true;
            return Ok(());
        }
        // Fence #1: every log entry durable before any target store is
        // *issued* (required under adversarial eviction, see module docs).
        acc.flush_batch(&self.entry_batch)?;
        acc.sfence()?;
        // Apply the staged mutations in order, deduplicating their lines.
        let mut targets = FlushBatch::new();
        for (target, bytes) in staged.iter() {
            acc.write(*target, bytes)?;
            targets.note(*target, bytes.len() as u64);
        }
        staged.clear();
        // Fence #2: targets durable.
        acc.flush_batch(&targets)?;
        acc.sfence()?;
        // Fence #3: invalidate the log — the commit point.
        if self.tail > 0 {
            bump_generation(acc, self.area, self.gen)?;
        }
        self.entry_batch.clear();
        self.finished = true;
        Ok(())
    }

    /// Rolls the operation back and invalidates the log. Staged target
    /// writes are simply discarded; [`apply_undo`] additionally restores
    /// any target the device did receive (it is a harmless no-op for
    /// targets never issued), which covers aborts racing a partially
    /// failed commit.
    pub fn abort<A: LogAccess>(&mut self, acc: &A, staged: &mut StagedWrites) -> Result<()> {
        self.finished = true;
        staged.clear();
        self.entry_batch.clear();
        if self.tail > 0 {
            apply_undo(acc, self.area, self.gen)?;
        }
        Ok(())
    }

    /// Best-effort [`abort`](Self::abort) for `Drop` impls: a session
    /// dropped without commit (an early `?` return) must not leave
    /// half-applied metadata. If the device has crashed, rollback fails
    /// harmlessly here and recovery replays the log instead.
    pub fn drop_rollback<A: LogAccess>(&mut self, acc: &A, staged: &mut StagedWrites) {
        if !self.finished {
            staged.clear();
            if self.tail != 0 {
                let _ = apply_undo(acc, self.area, self.gen);
            }
        }
    }
}

/// An open device-backed undo session. Obtain with
/// [`UndoSession::begin`]; every metadata mutation goes through
/// [`log_and_write`](Self::log_and_write); reads that must observe the
/// session's own staged writes go through [`read`](Self::read); finish
/// with [`commit`](Self::commit) or [`abort`](Self::abort).
///
/// Exactly one session may be open per area at a time — the caller's
/// sub-heap (or superblock) lock guarantees this. Dropping a session
/// without committing rolls back immediately; a crash instead leaves
/// durable entries (if fence #1 ran) for [`replay`] to roll back on
/// recovery — and if it did not run, no target was ever touched.
#[derive(Debug)]
pub struct UndoSession<'a> {
    dev: &'a PmemDevice,
    core: LogCore,
    staged: StagedWrites,
}

impl<'a> UndoSession<'a> {
    /// Opens a session on `area`.
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if live entries from a crashed
    /// operation are present (recovery must run first), or a device
    /// error.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn begin(dev: &'a PmemDevice, area: UndoArea) -> Result<UndoSession<'a>> {
        Ok(UndoSession { dev, core: LogCore::begin(dev, area)?, staged: Vec::new() })
    }

    /// As [`begin`](Self::begin), but re-drives a rollback that died
    /// mid-flight (see [`LogCore::begin_recovering`]). The caller must
    /// hold the area's lock.
    ///
    /// # Errors
    ///
    /// As for [`begin`](Self::begin), plus any error from re-driving the
    /// stale rollback.
    pub fn begin_recovering(dev: &'a PmemDevice, area: UndoArea) -> Result<UndoSession<'a>> {
        Ok(UndoSession { dev, core: LogCore::begin_recovering(dev, area)?, staged: Vec::new() })
    }

    /// Logs the current content of `[target, target + new.len())`, then
    /// stages `new` for that range. The store is issued and becomes
    /// durable at [`commit`](Self::commit).
    ///
    /// # Errors
    ///
    /// [`PoseidonError::Corrupted`] if the log area overflows (operations
    /// are designed to fit comfortably; overflow means a bug), or a
    /// device error.
    pub fn log_and_write(&mut self, target: u64, new: &[u8]) -> Result<()> {
        self.core.log_and_write(self.dev, &mut self.staged, target, new)
    }

    /// Convenience: [`log_and_write`](Self::log_and_write) of a
    /// [`Pod`](pmem::Pod) value.
    ///
    /// # Errors
    ///
    /// As for [`log_and_write`](Self::log_and_write).
    pub fn log_and_write_pod<T: pmem::Pod>(&mut self, target: u64, value: &T) -> Result<()> {
        self.log_and_write(target, value.as_bytes())
    }

    /// Reads `buf.len()` bytes at `offset` through the staged-write
    /// overlay, so the session observes its own not-yet-issued stores.
    ///
    /// # Errors
    ///
    /// Device errors.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.dev.read(offset, buf)?;
        overlay_patch(&self.staged, offset, buf);
        Ok(())
    }

    /// Reads a [`Pod`](pmem::Pod) value through the staged-write overlay.
    ///
    /// # Errors
    ///
    /// As for [`read`](Self::read).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn read_pod<T: pmem::Pod>(&self, offset: u64) -> Result<T> {
        let mut value = T::zeroed();
        self.read(offset, value.as_bytes_mut())?;
        Ok(value)
    }

    /// Commits: one fence makes the log durable, the staged stores are
    /// issued and fenced, and the generation bump invalidates the log —
    /// three fences total, zero for an empty session (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// Device errors only.
    pub fn commit(mut self) -> Result<()> {
        self.core.commit(self.dev, &mut self.staged)
    }

    /// Rolls the session back: discards staged stores, restores every
    /// logged range (newest first) and invalidates the log. The heap is
    /// exactly as it was before [`begin`](Self::begin).
    ///
    /// # Errors
    ///
    /// Device errors only.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn abort(mut self) -> Result<()> {
        self.core.abort(self.dev, &mut self.staged)
    }
}

impl Drop for UndoSession<'_> {
    fn drop(&mut self) {
        self.core.drop_rollback(self.dev, &mut self.staged);
    }
}

/// A decoded log entry: `(target, len, old_bytes, entry_len)`.
pub(crate) type DecodedEntry = (u64, u64, Vec<u8>, u64);

/// Reads and validates the entry at byte position `pos` for generation
/// `gen`. Returns the decoded entry or `None` when the slot does not
/// hold a live entry (end of log).
pub(crate) fn read_entry<A: LogAccess>(
    acc: &A,
    area: UndoArea,
    gen: u64,
    pos: u64,
) -> Result<Option<DecodedEntry>> {
    if pos + ENTRY_HEADER > area.size {
        return Ok(None);
    }
    let entry_gen: u64 = acc.read_pod(area.base + pos)?;
    if entry_gen != gen {
        return Ok(None);
    }
    let target: u64 = acc.read_pod(area.base + pos + 8)?;
    let len: u64 = acc.read_pod(area.base + pos + 16)?;
    let stored_sum: u64 = acc.read_pod(area.base + pos + 24)?;
    if len > area.size || pos + ENTRY_HEADER + len.next_multiple_of(8) > area.size {
        return Ok(None); // torn header
    }
    let mut old = vec![0u8; len.next_multiple_of(8) as usize];
    acc.read(area.base + pos + ENTRY_HEADER, &mut old)?;
    if checksum(gen, target, len, &old) != stored_sum {
        return Ok(None); // torn entry
    }
    old.truncate(len as usize);
    Ok(Some((target, len, old, ENTRY_HEADER + len.next_multiple_of(8))))
}

/// Restores all live entries of generation `gen` (newest first), persists
/// the restorations with one deduplicated flush batch + fence, and
/// invalidates the log.
///
/// The log is fenced durable *before* the first restoration store is
/// issued — the same discipline as [`LogCore::commit`]'s fence #1, for
/// the same reason: restores rewind through overlay-patched intermediate
/// pre-images that never existed on media, so a crash that interrupts
/// them is only recoverable if the complete chain survives for recovery
/// to replay. (On an abort racing a crash the entries may exist only in
/// cache; a rollback begun without this fence could persist a bogus
/// intermediate value while the chain tears.)
fn apply_undo<A: LogAccess>(acc: &A, area: UndoArea, gen: u64) -> Result<()> {
    let mut entries = Vec::new();
    let mut pos = 0u64;
    while let Some((target, len, old, entry_len)) = read_entry(acc, area, gen, pos)? {
        entries.push((target, len, old));
        pos += entry_len;
    }
    if pos > 0 {
        let mut log_batch = FlushBatch::new();
        log_batch.note(area.base, pos);
        acc.flush_batch(&log_batch)?;
        acc.sfence()?;
    }
    let mut batch = FlushBatch::new();
    for (target, len, old) in entries.iter().rev() {
        acc.write(*target, old)?;
        batch.note(*target, *len);
    }
    acc.flush_batch(&batch)?;
    acc.sfence()?;
    bump_generation(acc, area, gen)?;
    Ok(())
}

fn bump_generation<A: LogAccess>(acc: &A, area: UndoArea, gen: u64) -> Result<()> {
    acc.write_pod(area.gen_field, &(gen + 1))?;
    acc.clwb(area.gen_field, 8)?;
    acc.sfence()?;
    Ok(())
}

/// Recovery entry point: if the area holds live entries, rolls the
/// interrupted operation back. Returns whether anything was replayed.
///
/// Idempotent: crashing during replay and replaying again is safe (§5.8).
///
/// # Errors
///
/// Device errors.
pub fn replay(dev: &PmemDevice, area: UndoArea) -> Result<bool> {
    let gen: u64 = dev.read_pod(area.gen_field)?;
    if read_entry(dev, area, gen, 0)?.is_none() {
        return Ok(false);
    }
    apply_undo(dev, area, gen)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{CrashMode, DeviceConfig};

    fn setup() -> (PmemDevice, UndoArea) {
        let dev = PmemDevice::new(DeviceConfig::small_test());
        // Generation field at 0, log area at 4096.
        let area = UndoArea { base: 4096, size: 8192, gen_field: 0 };
        (dev, area)
    }

    #[test]
    fn commit_makes_writes_durable() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(64 * 1024, &0xAAu64).unwrap();
        s.log_and_write_pod(64 * 1024 + 8, &0xBBu64).unwrap();
        s.commit().unwrap();
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(64 * 1024).unwrap(), 0xAA);
        assert_eq!(dev.read_pod::<u64>(64 * 1024 + 8).unwrap(), 0xBB);
        // Log is invalid after commit.
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn session_reads_see_staged_writes() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        // The store is staged: invisible on the raw device, visible
        // through the session overlay.
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        assert_eq!(s.read_pod::<u64>(target).unwrap(), 2);
        s.commit().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 2);
    }

    #[test]
    fn crash_before_commit_leaves_media_untouched() {
        // Without commit, neither the entries nor the targets were ever
        // fenced (targets were never even issued): a strict crash is a
        // complete no-op for the operation.
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();

        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        std::mem::forget(s); // simulate losing the session in a crash
        dev.simulate_crash(CrashMode::Strict, 7);

        assert!(!replay(&dev, area).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn crash_during_commit_replays_to_old_state() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();

        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        // Commit events: entry write, entry-line clwb, fence #1, target
        // write, … Crash on the target flush: the entry is durable, the
        // target store issued but not persisted.
        dev.arm_crash_after(4);
        assert!(s.commit().is_err());
        dev.simulate_crash(CrashMode::Strict, 7);

        assert!(replay(&dev, area).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        // Idempotent: nothing left to replay.
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn replay_restores_in_reverse_order() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target, &3u64).unwrap(); // same target twice
        s.commit().unwrap();
        dev.simulate_crash(CrashMode::Strict, 0);
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 3);
        // Now interrupt a fresh double-update during target application.
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &4u64).unwrap();
        s.log_and_write_pod(target, &5u64).unwrap();
        dev.arm_crash_after(6); // entry writes ×2, clwb ×2, fence, write
        assert!(s.commit().is_err());
        dev.simulate_crash(CrashMode::Strict, 0);
        replay(&dev, area).unwrap();
        // Reverse application ends on the *first* entry's old value.
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 3);
    }

    #[test]
    fn second_log_of_same_target_records_first_staged_value() {
        // The overlay feeds entry pre-images: logging target→2 then
        // target→3 must record old values 1 and 2 (not 1 and 1), or
        // reverse replay would be wrong if only the *second* entry's
        // target application crashed. Verified through abort, which
        // replays both entries.
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        assert_eq!(s.read_pod::<u64>(target).unwrap(), 2);
        s.log_and_write_pod(target, &3u64).unwrap();
        assert_eq!(s.read_pod::<u64>(target).unwrap(), 3);
        s.abort().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
    }

    #[test]
    fn abort_rolls_back_immediately() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &7u64).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &8u64).unwrap();
        assert_eq!(s.read_pod::<u64>(target).unwrap(), 8);
        s.abort().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 7);
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &7u64).unwrap();
        {
            let mut s = UndoSession::begin(&dev, area).unwrap();
            s.log_and_write_pod(target, &8u64).unwrap();
            // dropped here without commit
        }
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 7);
        // A fresh session can begin.
        UndoSession::begin(&dev, area).unwrap().commit().unwrap();
    }

    #[test]
    fn begin_rejects_unrecovered_log() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(64 * 1024, &1u64).unwrap();
        std::mem::forget(s);
        assert!(matches!(UndoSession::begin(&dev, area), Err(PoseidonError::Corrupted(_))));
        replay(&dev, area).unwrap();
        UndoSession::begin(&dev, area).unwrap().commit().unwrap();
    }

    #[test]
    fn empty_commit_is_barrier_free() {
        // Satellite regression: a session that logs nothing must not
        // pay a single flush or fence, and must not bump the generation.
        let (dev, area) = setup();
        let gen_before: u64 = dev.read_pod(area.gen_field).unwrap();
        let before = dev.stats();
        UndoSession::begin(&dev, area).unwrap().commit().unwrap();
        let after = dev.stats();
        assert_eq!(after.sfence_count, before.sfence_count, "empty commit fenced");
        assert_eq!(after.clwb_count, before.clwb_count, "empty commit flushed");
        assert_eq!(dev.read_pod::<u64>(area.gen_field).unwrap(), gen_before);
    }

    #[test]
    fn commit_dedupes_same_line_flushes() {
        // Satellite regression: two staged writes to one cache line must
        // cost one target clwb, not two (and the two 40-byte entries
        // share a line boundary: lines 0 and 1 of the log area).
        let (dev, area) = setup();
        let target = 64 * 1024; // line-aligned
        let before = dev.stats();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target + 8, &3u64).unwrap(); // same line
        s.commit().unwrap();
        let after = dev.stats();
        // entries: 2 lines (80 bytes from a line-aligned base);
        // targets: 1 line (deduped); generation bump: 1 line.
        assert_eq!(after.clwb_count - before.clwb_count, 4, "same-line clwbs not deduped");
        assert_eq!(after.sfence_count - before.sfence_count, 3);
    }

    #[test]
    fn overflow_is_detected() {
        let (dev, area) = setup();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        let big = vec![0u8; 4096];
        s.log_and_write(64 * 1024, &big).unwrap();
        let r = s.log_and_write(80 * 1024, &big);
        assert!(matches!(r, Err(PoseidonError::Corrupted("undo log overflow"))));
        s.abort().unwrap();
    }

    #[test]
    fn replay_survives_crash_during_replay() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target + 8, &9u64).unwrap();
        // Crash right after fence #1 (2 entry writes + 2 entry-line
        // clwbs + the fence): entries durable, no target issued.
        dev.arm_crash_after(5);
        assert!(s.commit().is_err());
        dev.simulate_crash(CrashMode::Strict, 0);

        // Crash partway through the replay itself.
        dev.arm_crash_after(1);
        assert!(replay(&dev, area).is_err());
        dev.simulate_crash(CrashMode::Strict, 1);

        // Second replay completes.
        assert!(replay(&dev, area).unwrap());
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        assert_eq!(dev.read_pod::<u64>(target + 8).unwrap(), 0);
    }

    #[test]
    fn begin_redrives_a_rollback_interrupted_mid_flight() {
        // A rollback that dies partway (here: device failure during the
        // abort) leaves the log live. A lock-holding caller must be able
        // to finish the rollback instead of wedging until a power cycle;
        // plain begin (which cannot assume the lock) still rejects.
        let (dev, area) = setup();
        let target = 64 * 1024;
        dev.write_pod(target, &1u64).unwrap();
        dev.persist(target, 8).unwrap();
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &2u64).unwrap();
        s.log_and_write_pod(target + 8, &9u64).unwrap();
        dev.arm_crash_after(5);
        assert!(s.commit().is_err()); // consumes s; drop_rollback fails too
        dev.clear_crash();

        // Plain begin stays strict about the live log...
        assert!(matches!(UndoSession::begin(&dev, area), Err(PoseidonError::Corrupted(_))));

        // ...but begin_recovering re-drives the rollback and opens
        // cleanly on the bumped generation.
        let s = UndoSession::begin_recovering(&dev, area).unwrap();
        drop(s);
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 1);
        assert!(!replay(&dev, area).unwrap());
    }

    #[test]
    fn adversarial_crash_still_recovers() {
        // Sweep a crash point over the entire operation (logging and
        // every commit event), then let the adversarial cache model
        // persist an arbitrary subset of dirty lines. Invariants:
        //
        // 1. A missing/torn log entry with an unbumped generation
        //    implies the crash preceded fence #1, so *no* target (that
        //    entry's or any later one's) was ever mutated.
        // 2. After replay the heap is atomic: all targets old or all
        //    targets new.
        let targets = |i: u64| 64 * 1024 + i * 128; // distinct lines
        for arm in 1..=18u64 {
            for seed in 0..8u64 {
                let (dev, area) = setup();
                for i in 0..3 {
                    dev.write_pod(targets(i), &1u64).unwrap();
                    dev.persist(targets(i), 8).unwrap();
                }
                let start_gen: u64 = dev.read_pod(area.gen_field).unwrap();
                dev.arm_crash_after(arm);
                let committed = (|| -> Result<()> {
                    let mut s = UndoSession::begin(&dev, area)?;
                    for i in 0..3 {
                        s.log_and_write_pod(targets(i), &2u64)?;
                    }
                    s.commit()
                })()
                .is_ok();
                dev.simulate_crash(CrashMode::Adversarial, seed);

                let media_gen: u64 = dev.read_pod(area.gen_field).unwrap();
                let mut live = 0u64;
                let mut pos = 0u64;
                while let Some((_, _, _, entry_len)) = read_entry(&dev, area, media_gen, pos).unwrap() {
                    live += 1;
                    pos += entry_len;
                }
                if committed {
                    for i in 0..3 {
                        assert_eq!(dev.read_pod::<u64>(targets(i)).unwrap(), 2);
                    }
                }
                if media_gen == start_gen && live < 3 {
                    // Invariant 1: fence #1 cannot have run (it makes all
                    // three entries durable), so no target was issued.
                    for i in 0..3 {
                        assert_eq!(
                            dev.read_pod::<u64>(targets(i)).unwrap(),
                            1,
                            "arm {arm} seed {seed}: torn log but target {i} mutated"
                        );
                    }
                }
                replay(&dev, area).unwrap();
                let after: Vec<u64> = (0..3).map(|i| dev.read_pod::<u64>(targets(i)).unwrap()).collect();
                assert!(
                    after == [1, 1, 1] || after == [2, 2, 2],
                    "arm {arm} seed {seed}: non-atomic outcome {after:?}"
                );
            }
        }
    }

    #[test]
    fn generation_bump_invalidates_stale_entries() {
        let (dev, area) = setup();
        let target = 64 * 1024;
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &5u64).unwrap();
        s.commit().unwrap();
        // The old entry bytes still sit in the log area but belong to a
        // dead generation: a new session starts clean and replay is a
        // no-op.
        assert!(!replay(&dev, area).unwrap());
        let mut s = UndoSession::begin(&dev, area).unwrap();
        s.log_and_write_pod(target, &6u64).unwrap();
        s.commit().unwrap();
        assert_eq!(dev.read_pod::<u64>(target).unwrap(), 6);
    }
}
